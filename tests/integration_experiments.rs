//! Experiment-shape regression tests: small-budget versions of the
//! paper's Fig. 6 / Fig. 7 / Fig. 8 claims, asserted as invariants so the
//! reproduction cannot silently drift.

use sega_cells::Technology;
use sega_dcim::distill::{distill, DistillStrategy};
use sega_dcim::report::{summarize_design_space, PAPER_DESIGN_A, SOTA_TSMC_INT8};
use sega_dcim::{explore_pareto, UserSpec};
use sega_estimator::{estimate, DcimDesign, OperatingConditions, Precision};
use sega_moga::Nsga2Config;

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 32,
        generations: 20,
        seed,
        ..Default::default()
    }
}

fn tech() -> Technology {
    Technology::tsmc28()
}

fn cond() -> OperatingConditions {
    OperatingConditions::paper_default()
}

#[test]
fn fig6_areas_and_dimensions() {
    // Fig. 6(a): INT8 8K at 0.079 mm², 343×229 µm.
    let int8 = DcimDesign::for_precision(Precision::Int8, 32, 128, 16, 4).unwrap();
    let e = estimate(&int8, &tech(), &cond());
    assert!(
        (e.area_mm2 - 0.079).abs() < 0.012,
        "INT8 area {}",
        e.area_mm2
    );

    // Fig. 6(b): BF16 8K at 0.085 mm², pre-align ≈ 0.006 mm².
    let bf16 = DcimDesign::for_precision(Precision::Bf16, 32, 128, 16, 4).unwrap();
    let e = estimate(&bf16, &tech(), &cond());
    assert!(
        (e.area_mm2 - 0.085).abs() < 0.015,
        "BF16 area {}",
        e.area_mm2
    );
    let prealign_mm2 = e.breakdown.pre_alignment.area * tech().gate_area_um2 * 1e-6;
    assert!(
        prealign_mm2 > 0.002 && prealign_mm2 < 0.010,
        "pre-align {prealign_mm2} mm² (paper 0.006)"
    );
}

#[test]
fn fig7_average_metrics_grow_with_precision() {
    // Fig. 7: at fixed Wstore, area/energy/delay all grow from INT2 to
    // INT16 and from FP8 to FP32, and throughput falls.
    const WSTORE: u64 = 16384; // scaled down for test runtime; trends are size-independent
    let summarize = |precision: Precision, seed: u64| {
        let spec = UserSpec::new(WSTORE, precision).unwrap();
        let r = explore_pareto(&spec, &tech(), &cond(), &cfg(seed));
        assert!(!r.solutions.is_empty(), "{precision}: empty front");
        summarize_design_space(precision, &r.solutions)
    };
    let ints = [
        summarize(Precision::Int2, 1),
        summarize(Precision::Int4, 2),
        summarize(Precision::Int8, 3),
        summarize(Precision::Int16, 4),
    ];
    for pair in ints.windows(2) {
        assert!(
            pair[1].avg_area_mm2 > pair[0].avg_area_mm2,
            "{} -> {}: area must grow",
            pair[0].precision,
            pair[1].precision
        );
        assert!(pair[1].avg_energy_nj > pair[0].avg_energy_nj);
        assert!(pair[1].avg_tops < pair[0].avg_tops);
    }
    let fps = [
        summarize(Precision::Fp8, 5),
        summarize(Precision::Bf16, 6),
        summarize(Precision::Fp16, 7),
        summarize(Precision::Fp32, 8),
    ];
    for pair in fps.windows(2) {
        assert!(pair[1].avg_area_mm2 > pair[0].avg_area_mm2);
    }
}

#[test]
fn fig7_bf16_tracks_int8() {
    // The paper's headline: "the overhead of BF16 is almost the same
    // compared to INT8". Averages over the two frontiers stay within 35%.
    const WSTORE: u64 = 16384;
    let run = |precision: Precision, seed: u64| {
        let spec = UserSpec::new(WSTORE, precision).unwrap();
        let r = explore_pareto(&spec, &tech(), &cond(), &cfg(seed));
        summarize_design_space(precision, &r.solutions)
    };
    let int8 = run(Precision::Int8, 11);
    let bf16 = run(Precision::Bf16, 12);
    let rel = (bf16.avg_area_mm2 - int8.avg_area_mm2).abs() / int8.avg_area_mm2;
    assert!(rel < 0.35, "BF16 vs INT8 area gap {rel:.2} too large");
}

#[test]
fn fig8_design_a_replica_matches_paper_point() {
    // The fixed-geometry replica of the paper's design A (64K, INT8, k=1)
    // must land near (22 TOPS/W, 1.9 TOPS/mm²).
    let d = DcimDesign::for_precision(Precision::Int8, 64, 1024, 8, 1).unwrap();
    assert_eq!(d.wstore(), 65536);
    let e = estimate(&d, &tech(), &cond());
    let tw = e.tops_per_w();
    let ta = e.tops_per_mm2();
    assert!(
        (tw - PAPER_DESIGN_A.tops_per_w).abs() / PAPER_DESIGN_A.tops_per_w < 0.25,
        "TOPS/W {tw} vs paper {}",
        PAPER_DESIGN_A.tops_per_w
    );
    assert!(
        (ta - PAPER_DESIGN_A.tops_per_mm2).abs() / PAPER_DESIGN_A.tops_per_mm2 < 0.25,
        "TOPS/mm² {ta} vs paper {}",
        PAPER_DESIGN_A.tops_per_mm2
    );
}

#[test]
fn fig8_shape_beats_sota_on_energy_efficiency() {
    // The paper: "Our design achieves a higher energy efficiency but with a
    // lower area efficiency than TSMC's work." The best-efficiency corner
    // of our 64K INT8 front must beat the TSMC anchor on TOPS/W.
    let spec = UserSpec::new(65536, Precision::Int8).unwrap();
    let r = explore_pareto(&spec, &tech(), &cond(), &cfg(21));
    let best = distill(&r.solutions, &DistillStrategy::MaxEfficiency).unwrap();
    assert!(
        best.estimate.tops_per_w() > SOTA_TSMC_INT8.tops_per_w,
        "best {} TOPS/W must beat TSMC {}",
        best.estimate.tops_per_w(),
        SOTA_TSMC_INT8.tops_per_w
    );
    // And the paper-like k=1 replica trails TSMC on area efficiency.
    let replica = DcimDesign::for_precision(Precision::Int8, 64, 1024, 8, 1).unwrap();
    let e = estimate(&replica, &tech(), &cond());
    assert!(
        e.tops_per_mm2() < SOTA_TSMC_INT8.tops_per_mm2,
        "replica {} TOPS/mm² should trail TSMC {}",
        e.tops_per_mm2(),
        SOTA_TSMC_INT8.tops_per_mm2
    );
}

#[test]
fn dse_runtime_is_far_under_paper_budget() {
    // Paper: DSE per (size, precision) finishes in 30 minutes. Ours must
    // finish the same logical job in seconds; assert a generous 60 s cap
    // so CI flags pathological regressions.
    let start = std::time::Instant::now();
    let spec = UserSpec::new(65536, Precision::Bf16).unwrap();
    let r = explore_pareto(&spec, &tech(), &cond(), &cfg(33));
    assert!(!r.solutions.is_empty());
    assert!(
        start.elapsed().as_secs() < 60,
        "DSE took {:?}",
        start.elapsed()
    );
}
