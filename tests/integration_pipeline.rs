//! End-to-end integration tests: specification → exploration →
//! distillation → generation → physical design → functional simulation,
//! across both architectures.

use sega_dcim::{Compiler, DistillStrategy, UserSpec};
use sega_estimator::{DcimDesign, Precision};
use sega_layout::drc::check_floorplan;
use sega_sim::{fp::FpFormat, reference_int_mvm, FpMacroSim, IntMacroSim};

fn fast_compiler() -> Compiler {
    Compiler::new().with_exploration_budget(24, 12)
}

#[test]
fn int8_spec_to_simulated_macro() {
    // The full journey for an INT8 macro: compile, then run the compiled
    // geometry through the bit-accurate simulator against the reference.
    let spec = UserSpec::new(4096, Precision::Int8).unwrap();
    let compiled = fast_compiler()
        .compile(&spec, DistillStrategy::Knee)
        .unwrap();

    // The artifacts exist and agree.
    assert!(compiled.verilog.contains("module dcim_int"));
    assert!(compiled.audit.is_consistent(1e-9));
    assert!(check_floorplan(&compiled.layout).is_empty());
    assert_eq!(compiled.design.wstore(), 4096);

    // The compiled geometry computes exactly.
    let params = match compiled.design {
        DcimDesign::Int(p) => p,
        DcimDesign::Fp(_) => panic!("INT8 must compile to the integer architecture"),
    };
    let weights: Vec<i64> = (0..params.wstore())
        .map(|i| ((i as i64 * 37 + 11) % 255) - 127)
        .collect();
    let inputs: Vec<i64> = (0..params.h as i64)
        .map(|i| ((i * 31) % 255) - 127)
        .collect();
    let sim = IntMacroSim::new(params, &weights).unwrap();
    let out = sim.mvm(&inputs, 0).unwrap();
    assert_eq!(
        out.outputs,
        reference_int_mvm(&params, &weights, &inputs, 0)
    );
}

#[test]
fn bf16_spec_to_simulated_macro() {
    let spec = UserSpec::new(4096, Precision::Bf16).unwrap();
    let compiled = fast_compiler()
        .compile(&spec, DistillStrategy::MaxEfficiency)
        .unwrap();
    assert!(compiled.verilog.contains("module dcim_fp"));
    assert!(compiled.audit.is_consistent(1e-9));

    let params = match compiled.design {
        DcimDesign::Fp(p) => p,
        DcimDesign::Int(_) => panic!("BF16 must compile to the FP architecture"),
    };
    let weights: Vec<f64> = (0..params.wstore())
        .map(|i| ((i % 17) as f64 - 8.0) * 0.125)
        .collect();
    let inputs: Vec<f64> = (0..params.h)
        .map(|i| (i % 13) as f64 * 0.25 - 1.5)
        .collect();
    let sim = FpMacroSim::new(params, FpFormat::BF16, &weights).unwrap();
    let out = sim.mvm(&inputs, 0).unwrap();
    // Error within the analytic alignment bound.
    let inputs_q: Vec<f64> = inputs.iter().map(|&x| FpFormat::BF16.quantize(x)).collect();
    let golden = sega_sim::reference_fp_mvm(&params, sim.quantized_weights(), &inputs_q, 0);
    let bound = sim.alignment_error_bound(&inputs_q, 0);
    for (got, want) in out.values.iter().zip(&golden) {
        assert!((got - want).abs() <= bound, "|{got} - {want}| > {bound}");
    }
}

#[test]
fn every_precision_compiles() {
    // The paper's whole precision matrix must go end to end.
    let compiler = Compiler::new().with_exploration_budget(16, 6);
    for precision in [
        Precision::Int2,
        Precision::Int4,
        Precision::Int8,
        Precision::Int16,
        Precision::Fp8,
        Precision::Fp16,
        Precision::Bf16,
        Precision::Fp32,
    ] {
        let spec = UserSpec::new(8192, precision).unwrap();
        let compiled = compiler
            .compile(&spec, DistillStrategy::Knee)
            .unwrap_or_else(|e| panic!("{precision}: {e}"));
        assert!(
            compiled.audit.is_consistent(1e-9),
            "{precision}: audit failed"
        );
        assert!(
            check_floorplan(&compiled.layout).is_empty(),
            "{precision}: DRC failed"
        );
    }
}

#[test]
fn wstore_sweep_compiles() {
    // The paper's Fig. 8 size range (generation stage only, fixed design).
    for wstore in [4096u64, 16384, 65536, 131072] {
        let h = (wstore / 64) as u32;
        let d = DcimDesign::for_precision(Precision::Int8, 64, h, 8, 2).unwrap();
        assert_eq!(d.wstore(), wstore);
        let compiled = Compiler::new().compile_design(&d).unwrap();
        assert!(compiled.audit.is_consistent(1e-9), "wstore={wstore}");
        // Area scales roughly linearly with capacity.
        assert!(compiled.layout.area_mm2() > 0.0);
    }
}

#[test]
fn deterministic_compilation() {
    let spec = UserSpec::new(4096, Precision::Int4).unwrap();
    let a = fast_compiler()
        .compile(&spec, DistillStrategy::Knee)
        .unwrap();
    let b = fast_compiler()
        .compile(&spec, DistillStrategy::Knee)
        .unwrap();
    assert_eq!(a.design, b.design);
    assert_eq!(a.verilog, b.verilog);
    assert_eq!(a.def, b.def);
}

#[test]
fn distillation_strategies_cover_the_front() {
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let compiler = Compiler::new().with_exploration_budget(48, 30);
    let exploration = compiler.explore(&spec);
    assert!(exploration.solutions.len() >= 3);

    use sega_dcim::distill::distill;
    let min_area = distill(&exploration.solutions, &DistillStrategy::MinArea).unwrap();
    let max_tput = distill(&exploration.solutions, &DistillStrategy::MaxThroughput).unwrap();
    // The corners differ and order correctly.
    assert!(min_area.estimate.area_mm2 <= max_tput.estimate.area_mm2);
    assert!(max_tput.estimate.tops >= min_area.estimate.tops);
}

#[test]
fn asymmetric_precision_goes_end_to_end() {
    // The integer architecture supports Bx != Bw (e.g. INT8 weights with
    // INT4 activations, a common quantized-inference deployment). The
    // estimator, generator, audit and simulator must all handle it.
    use sega_estimator::{estimate, IntParams, OperatingConditions};

    let p = IntParams::new(16, 16, 4, 2, 8, 4).unwrap(); // Bw=8, Bx=4
    assert_eq!(p.cycles_per_pass(), 2);
    let d = DcimDesign::Int(p);

    // Generation + audit.
    let compiled = Compiler::new().compile_design(&d).unwrap();
    assert!(compiled.audit.is_consistent(1e-9));

    // The narrower input stream shrinks the accumulator and buffer versus
    // the symmetric design.
    let sym = estimate(
        &DcimDesign::Int(IntParams::new(16, 16, 4, 2, 8, 8).unwrap()),
        &sega_cells::Technology::tsmc28(),
        &OperatingConditions::paper_default(),
    );
    assert!(compiled.estimate.area_mm2 < sym.area_mm2);

    // Bit-exact simulation with INT4 inputs against INT8 weights.
    let weights: Vec<i64> = (0..p.wstore())
        .map(|i| ((i as i64 * 11) % 255) - 127)
        .collect();
    let inputs: Vec<i64> = (0..p.h as i64).map(|i| ((i * 3) % 15) - 7).collect();
    let sim = IntMacroSim::new(p, &weights).unwrap();
    let out = sim.mvm(&inputs, 2).unwrap();
    assert_eq!(out.outputs, reference_int_mvm(&p, &weights, &inputs, 2));
}
