//! Cross-model consistency: property-based tests proving that the three
//! independent views of a DCIM design — the closed-form estimator, the
//! template-generated netlist, and the floorplanned layout — agree, and
//! that the simulated hardware is arithmetically correct, over randomized
//! design points.

use proptest::prelude::*;

use sega_cells::Technology;
use sega_estimator::{estimate, DcimDesign, IntParams, OperatingConditions, Precision};
use sega_layout::floorplan::floorplan_macro;
use sega_layout::LayoutOptions;
use sega_netlist::generators::generate_macro;
use sega_netlist::stats::audit;
use sega_sim::{reference_int_mvm, IntMacroSim};

/// Strategy: a random valid integer design point (kept small so netlist
/// generation stays fast under proptest's case count).
fn int_design() -> impl Strategy<Value = IntParams> {
    (
        1u32..=3,                                  // log2 of groups -> n = groups * bw
        1u32..=5,                                  // log2 h
        0u32..=3,                                  // log2 l
        prop_oneof![Just(2u32), Just(4), Just(8)], // bw
    )
        .prop_flat_map(|(log_g, log_h, log_l, bw)| {
            let k = 1u32..=bw;
            (Just((log_g, log_h, log_l, bw)), k)
        })
        .prop_map(|((log_g, log_h, log_l, bw), k)| {
            IntParams::new((1 << log_g) * bw, 1 << log_h, 1 << log_l, k, bw, bw)
                .expect("constructed parameters are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The netlist generator and the estimator agree *exactly* on area and
    /// energy for any valid design point.
    #[test]
    fn netlist_always_matches_estimator(params in int_design()) {
        let design = DcimDesign::Int(params);
        let netlist = generate_macro(&design).unwrap();
        let est = estimate(
            &design,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        );
        let a = audit(&netlist, &est).unwrap();
        prop_assert!(a.is_consistent(1e-9), "area err {:.3e}, energy err {:.3e}",
            a.area_error(), a.energy_error());
    }

    /// The floorplan realizes exactly the estimator's area at utilization 1.
    #[test]
    fn layout_area_matches_estimator(params in int_design()) {
        let design = DcimDesign::Int(params);
        let tech = Technology::tsmc28();
        let est = estimate(&design, &tech, &OperatingConditions::paper_default());
        let layout = floorplan_macro(&design, &tech, &LayoutOptions::default()).unwrap();
        let rel = (layout.area_mm2() - est.area_mm2).abs() / est.area_mm2;
        prop_assert!(rel < 1e-9, "layout {} vs estimate {}", layout.area_mm2(), est.area_mm2);
    }

    /// The bit-serial integer datapath is exact for random weights/inputs
    /// on random geometries.
    #[test]
    fn int_simulation_always_exact(
        params in int_design(),
        seed in 0u64..1000,
    ) {
        let lo = -(1i64 << (params.bw - 1));
        let hi = (1i64 << (params.bw - 1)) - 1;
        let span = (hi - lo + 1) as u64;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lo + (state % span) as i64
        };
        let weights: Vec<i64> = (0..params.wstore()).map(|_| next()).collect();
        let inputs: Vec<i64> = (0..params.h).map(|_| next()).collect();
        let sim = IntMacroSim::new(params, &weights).unwrap();
        for slot in 0..params.l.min(2) {
            let got = sim.mvm(&inputs, slot).unwrap();
            let want = reference_int_mvm(&params, &weights, &inputs, slot);
            prop_assert_eq!(&got.outputs, &want, "slot {}", slot);
        }
    }

    /// Estimator monotonicity: throughput never decreases and area never
    /// decreases when k grows at fixed geometry.
    #[test]
    fn estimator_monotone_in_k(
        log_h in 2u32..=6,
        log_l in 0u32..=3,
    ) {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let mut prev_area = 0.0f64;
        let mut prev_tops = 0.0f64;
        for k in 1..=8u32 {
            let d = DcimDesign::for_precision(
                Precision::Int8, 32, 1 << log_h, 1 << log_l, k).unwrap();
            let e = estimate(&d, &tech, &cond);
            prop_assert!(e.area_mm2 >= prev_area);
            prop_assert!(e.tops >= prev_tops);
            prev_area = e.area_mm2;
            prev_tops = e.tops;
        }
    }
}

#[test]
fn fig6_designs_cross_check_all_three_models() {
    // The headline designs, checked across estimator / netlist / layout.
    let tech = Technology::tsmc28();
    let cond = OperatingConditions::paper_default();
    for precision in [Precision::Int8, Precision::Bf16] {
        let design = DcimDesign::for_precision(precision, 32, 128, 16, 4).unwrap();
        let est = estimate(&design, &tech, &cond);
        let netlist = generate_macro(&design).unwrap();
        let a = audit(&netlist, &est).unwrap();
        assert!(a.is_consistent(1e-9), "{precision}");
        let layout = floorplan_macro(&design, &tech, &LayoutOptions::default()).unwrap();
        assert!(
            (layout.area_mm2() - est.area_mm2).abs() < 1e-9,
            "{precision}"
        );
    }
}

#[test]
fn verilog_line_count_tracks_gate_count() {
    // A structural sanity link between emission and statistics: bigger
    // macros emit more Verilog.
    let small = DcimDesign::for_precision(Precision::Int4, 8, 8, 2, 2).unwrap();
    let large = DcimDesign::for_precision(Precision::Int4, 16, 32, 4, 4).unwrap();
    let v_small = sega_netlist::verilog::emit(&generate_macro(&small).unwrap()).unwrap();
    let v_large = sega_netlist::verilog::emit(&generate_macro(&large).unwrap()).unwrap();
    assert!(v_large.lines().count() > v_small.lines().count());
}
