//! Quickstart: compile an 8K-weight INT8 DCIM macro end to end.
//!
//! ```sh
//! cargo run --release -p sega-dcim --example quickstart
//! ```
//!
//! This walks the whole paper flow on the Fig. 6(a) scenario: design space
//! exploration, automatic knee-point distillation, template-based netlist
//! generation, floorplanning, and the generator-vs-estimator audit.

use sega_dcim::{Compiler, DistillStrategy, UserSpec};
use sega_estimator::Precision;
use sega_layout::export::to_ascii;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. What we want: an 8K-weight INT8 macro.
    let spec = UserSpec::new(8192, Precision::Int8)?;
    println!("specification: {spec}\n");

    // 2. Explore + distill + generate in one call.
    let compiler = Compiler::new().with_exploration_budget(60, 40);
    let compiled = compiler.compile(&spec, DistillStrategy::Knee)?;

    // 3. What we got.
    println!("Pareto frontier: {} designs", compiled.frontier.len());
    for s in compiled.frontier.iter().take(5) {
        println!("  {s}");
    }
    if compiled.frontier.len() > 5 {
        println!("  … and {} more", compiled.frontier.len() - 5);
    }
    println!("\nselected (knee): {}", compiled.design);
    println!("estimate       : {}", compiled.estimate);
    println!(
        "audit          : netlist matches estimator within {:.1e} relative error",
        compiled
            .audit
            .area_error()
            .max(compiled.audit.energy_error())
    );
    println!(
        "verilog        : {} lines of structural Verilog",
        compiled.verilog.lines().count()
    );
    println!();
    println!("{}", to_ascii(&compiled.layout, 56));
    Ok(())
}
