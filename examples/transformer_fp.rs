//! Transformer scenario: BF16 attention projections on the pre-aligned
//! floating-point architecture — the high-precision workload (training,
//! attention) that motivates the paper's multi-precision support.
//!
//! ```sh
//! cargo run --release -p sega-dcim --example transformer_fp
//! ```
//!
//! Compiles a 64K-weight BF16 macro, checks the paper's headline claim
//! that BF16 costs barely more than INT8, and validates the FP datapath's
//! accuracy against an f64 reference on a synthetic Q-projection.

use sega_dcim::{Compiler, DistillStrategy, UserSpec};
use sega_estimator::{DcimDesign, Precision};
use sega_sim::{fp::FpFormat, reference_fp_mvm, FpMacroSim};

fn workload(count: usize, scale: f64, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let unit = (state >> 11) as f64 / (1u64 << 53) as f64;
            (unit * 2.0 - 1.0) * scale
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Transformer attention: 64K-weight BF16 DCIM ==\n");
    let compiler = Compiler::new().with_exploration_budget(60, 40);

    // The paper's claim: "the overhead of BF16 is almost the same compared
    // to INT8". Compile the knee design of both and compare.
    let bf16 = compiler.compile(
        &UserSpec::new(65536, Precision::Bf16)?,
        DistillStrategy::Knee,
    )?;
    let int8 = compiler.compile(
        &UserSpec::new(65536, Precision::Int8)?,
        DistillStrategy::Knee,
    )?;
    println!("INT8 knee : {}", int8.estimate);
    println!("BF16 knee : {}", bf16.estimate);
    println!(
        "BF16 area overhead over INT8: {:+.1}% (paper: 'almost the same')\n",
        100.0 * (bf16.estimate.area_mm2 - int8.estimate.area_mm2) / int8.estimate.area_mm2
    );

    // Simulate a Q-projection tile: y = W_q · x for one attention head.
    let params = match bf16.design {
        DcimDesign::Fp(p) => p,
        DcimDesign::Int(_) => unreachable!("BF16 compiles to the FP architecture"),
    };
    let weights = workload(params.wstore() as usize, 0.25, 7); // trained-ish scale
    let sim = FpMacroSim::new(params, FpFormat::BF16, &weights)?;
    let hidden = workload(params.h as usize, 1.0, 8);
    let out = sim.mvm(&hidden, 0)?;

    // Accuracy against the f64 reference on the quantized operands.
    let hidden_q: Vec<f64> = hidden.iter().map(|&x| FpFormat::BF16.quantize(x)).collect();
    let golden = reference_fp_mvm(&params, sim.quantized_weights(), &hidden_q, 0);
    let bound = sim.alignment_error_bound(&hidden_q, 0);
    let mut worst = 0.0f64;
    for (got, want) in out.values.iter().zip(&golden) {
        worst = worst.max((got - want).abs());
    }
    println!("Q-projection tile: {} outputs", out.values.len());
    println!("  worst alignment error : {worst:.3e}");
    println!("  analytic bound        : {bound:.3e}");
    assert!(worst <= bound, "datapath must respect its error bound");
    println!("  bound respected       : yes");
    println!(
        "  pipeline latency      : {} cycles ({:.1} ns)",
        out.cycles,
        out.cycles as f64 * bf16.estimate.delay_ns
    );

    // Why pre-alignment instead of per-element FP MACs: the front end is a
    // small fraction of the die. The share depends on the selected
    // geometry (it scales with the column height H), so report both the
    // knee design and the paper's Fig. 6(b) geometry.
    let prealign_share = bf16.estimate.breakdown.pre_alignment.area / bf16.estimate.unit.area;
    let fig6b = sega_estimator::estimate(
        &DcimDesign::for_precision(Precision::Bf16, 32, 128, 16, 4)?,
        &sega_cells::Technology::tsmc28(),
        &sega_estimator::OperatingConditions::paper_default(),
    );
    let fig6b_share = fig6b.breakdown.pre_alignment.area / fig6b.unit.area;
    println!(
        "\npre-alignment area share: {:.2}% on the knee design, {:.1}% at the Fig. 6(b) geometry (paper: ~7%)",
        prealign_share * 100.0,
        fig6b_share * 100.0
    );
    Ok(())
}
