//! CNN accelerator scenario: a 64K-weight INT8 macro serving 3×3
//! convolution layers (one of the "versatile applications" the paper's
//! introduction motivates).
//!
//! ```sh
//! cargo run --release -p sega-dcim --example cnn_accelerator
//! ```
//!
//! A 3×3×C convolution over C output channels is an MVM with
//! `9·C`-element columns; here we map a 64-channel layer onto the macro,
//! compile the best-efficiency design, and prove the generated
//! architecture computes the convolution **exactly** with the bit-accurate
//! simulator.

use sega_dcim::{Compiler, DistillStrategy, UserSpec};
use sega_estimator::{DcimDesign, Precision};
use sega_sim::{reference_int_mvm, IntMacroSim};

/// Deterministic pseudo-random signed values for the synthetic layer.
fn workload(count: usize, bits: u32, seed: u64) -> Vec<i64> {
    let lo = -(1i64 << (bits - 1));
    let span = (1i64 << bits) as u64;
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lo + (state % span) as i64
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== CNN accelerator: 64K-weight INT8 DCIM ==\n");
    let spec = UserSpec::new(65536, Precision::Int8)?;
    let compiler = Compiler::new().with_exploration_budget(60, 40);

    // The CNN serves high-throughput inference: pick the most
    // energy-efficient Pareto design.
    let compiled = compiler.compile(&spec, DistillStrategy::MaxEfficiency)?;
    println!("selected design : {}", compiled.design);
    println!("estimate        : {}", compiled.estimate);

    let params = match compiled.design {
        DcimDesign::Int(p) => p,
        DcimDesign::Fp(_) => unreachable!("INT8 compiles to the integer architecture"),
    };

    // Map a 3x3 conv layer: each output channel's 9·C_in kernel values
    // stream as one MVM column; the macro's H rows process H kernel taps in
    // parallel.
    let kernel_taps = 9 * 64; // 3x3, 64 input channels
    println!("\nconv mapping    : 3×3×64 kernel = {kernel_taps} taps per output channel");
    println!(
        "                  macro processes H = {} taps/column-pass, {} groups in parallel",
        params.h,
        params.n / params.bw
    );
    let passes_per_channel = (kernel_taps as u32).div_ceil(params.h);
    println!("                  {passes_per_channel} array passes per output channel tile");

    // Prove bit-exactness of one pass against the i64 reference.
    let weights = workload(params.wstore() as usize, params.bw, 11);
    let sim = IntMacroSim::new(params, &weights)?;
    let activations = workload(params.h as usize, params.bx, 22);
    let out = sim.mvm(&activations, 0)?;
    let golden = reference_int_mvm(&params, &weights, &activations, 0);
    assert_eq!(out.outputs, golden, "DCIM must be bit-exact");
    println!(
        "\nbit-exactness   : {} partial sums match the i64 reference exactly",
        out.outputs.len()
    );
    println!(
        "latency         : {} cycles/pass at {:.2} GHz = {:.1} ns",
        out.cycles,
        compiled.estimate.freq_ghz(),
        out.cycles as f64 * compiled.estimate.delay_ns
    );

    // Tile the whole conv weight matrix (64 output channels × 576 taps)
    // across macro images and project physical runtime/energy.
    let out_ch = 64usize;
    let wmat = workload(out_ch * kernel_taps, params.bw, 33);
    let layer = sega_dcim::sim::nn::IntLayer::new(params, out_ch, kernel_taps, &wmat)?;
    let patch = workload(kernel_taps, params.bx, 44);
    let y = layer.forward(&patch)?;
    // Cross-check one pixel against the plain reference.
    let golden_pixel: Vec<i64> = (0..out_ch)
        .map(|o| {
            (0..kernel_taps)
                .map(|t| wmat[o * kernel_taps + t] * patch[t])
                .sum()
        })
        .collect();
    assert_eq!(y, golden_pixel, "tiled conv pixel must be exact");

    let rt = sega_dcim::runtime::project_layer(&layer.stats(), &compiled.estimate);
    println!("conv layer      : {rt}");
    // Whole 224×224 output map.
    let pixels = 224u64 * 224;
    println!(
        "layer runtime   : {:.2} ms serial / {:.2} ms tile-parallel for a 224×224×64 map, {:.1} µJ",
        rt.serial_latency_us * pixels as f64 / 1e3,
        rt.parallel_latency_us * pixels as f64 / 1e3,
        rt.energy_nj * pixels as f64 / 1e3,
    );
    Ok(())
}
