//! GNN scenario: graph-convolution neighbor aggregation on an INT8 DCIM
//! macro — the third of the paper's Fig. 1 application domains
//! (Transformer / CNN / GNN).
//!
//! ```sh
//! cargo run --release -p sega-dcim --example gnn_aggregation
//! ```
//!
//! A GCN layer computes `H' = Â · H · W`: a feature transform (dense MVM,
//! same as the CNN/transformer cases) followed by neighborhood aggregation
//! with the normalized adjacency `Â`. The aggregation is also an MVM —
//! just a sparse, graph-shaped one — so it maps onto the same macro by
//! storing each node's quantized adjacency row as weights. This example
//! runs both halves bit-exactly on the tiled simulator and projects the
//! physical runtime.

use sega_dcim::runtime::project_layer;
use sega_dcim::{Compiler, DistillStrategy, UserSpec};
use sega_estimator::{DcimDesign, Precision};
use sega_sim::nn::IntLayer;

/// Deterministic pseudo-random generator for the synthetic graph.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn signed(&mut self, bits: u32) -> i64 {
        let lo = -(1i64 << (bits - 1));
        lo + (self.next() % (1u64 << bits)) as i64
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== GNN layer: GCN aggregation on an INT8 DCIM macro ==\n");

    // A small citation-style graph: 64 nodes, ~8 neighbors each.
    const NODES: usize = 64;
    const FEATURES: usize = 32;
    let mut rng = Rng(0xD1A6);
    let mut adjacency = vec![0i64; NODES * NODES];
    for u in 0..NODES {
        adjacency[u * NODES + u] = 16; // self loop (fixed-point 16 = 1.0 in Q4)
        for _ in 0..8 {
            let v = (rng.next() as usize) % NODES;
            // Quantized normalized edge weight in Q4 fixed point (1..7).
            adjacency[u * NODES + v] = 1 + (rng.next() % 7) as i64;
        }
    }
    let edges = adjacency.iter().filter(|&&w| w != 0).count();
    println!("graph           : {NODES} nodes, {edges} weighted edges (Q4 fixed point)");

    // Compile one INT8 macro and reuse it for both layer halves.
    let spec = UserSpec::new(4096, Precision::Int8)?;
    let compiled = Compiler::new()
        .with_exploration_budget(40, 25)
        .compile(&spec, DistillStrategy::Knee)?;
    let params = match compiled.design {
        DcimDesign::Int(p) => p,
        DcimDesign::Fp(_) => unreachable!("INT8 compiles to the integer architecture"),
    };
    println!("macro           : {}", compiled.design);
    println!("estimate        : {}\n", compiled.estimate);

    // Half 1: feature transform X·Wᵀ (dense), one node's feature vector.
    let weight_matrix: Vec<i64> = (0..FEATURES * FEATURES).map(|_| rng.signed(8)).collect();
    let transform = IntLayer::new(params, FEATURES, FEATURES, &weight_matrix)?;
    let features: Vec<i64> = (0..FEATURES).map(|_| rng.signed(8)).collect();
    let transformed = transform.forward(&features)?;
    let golden: Vec<i64> = (0..FEATURES)
        .map(|r| {
            (0..FEATURES)
                .map(|c| weight_matrix[r * FEATURES + c] * features[c])
                .sum()
        })
        .collect();
    assert_eq!(transformed, golden, "feature transform must be bit-exact");
    println!(
        "transform       : {FEATURES}×{FEATURES} dense MVM bit-exact ({})",
        project_layer(&transform.stats(), &compiled.estimate)
    );

    // Half 2: neighborhood aggregation Â·Z — the adjacency rows become the
    // stored weights (graph-shaped MVM on the same hardware).
    let aggregate = IntLayer::new(params, NODES, NODES, &adjacency)?;
    // Aggregate one transformed feature channel across all nodes.
    let channel: Vec<i64> = (0..NODES).map(|_| rng.signed(8)).collect();
    let aggregated = aggregate.forward(&channel)?;
    let golden_agg: Vec<i64> = (0..NODES)
        .map(|u| {
            (0..NODES)
                .map(|v| adjacency[u * NODES + v] * channel[v])
                .sum()
        })
        .collect();
    assert_eq!(aggregated, golden_agg, "aggregation must be bit-exact");
    let agg_rt = project_layer(&aggregate.stats(), &compiled.estimate);
    println!("aggregation     : {NODES}-node GCN gather bit-exact ({agg_rt})");

    // Sparsity observation: most adjacency weights are zero, which is
    // exactly the input-sparsity regime the paper's Fig. 8 measures at.
    let zero_frac = 1.0 - edges as f64 / (NODES * NODES) as f64;
    println!(
        "\nsparsity        : {:.0}% of adjacency entries are zero — DCIM power scales with",
        zero_frac * 100.0
    );
    println!("                  switching activity, so sparse graphs run well below the dense");
    println!("                  power envelope (the paper reports efficiency at 10% sparsity).");
    Ok(())
}
