//! A tour of the SEGA-DCIM design space: what the MOGA-based explorer
//! trades off, across precisions and distillation strategies.
//!
//! ```sh
//! cargo run --release -p sega-dcim --example design_space_tour
//! ```
//!
//! For a 16K-weight budget this prints (1) the Pareto frontier corners of
//! each precision, (2) how the four distillation strategies pick different
//! designs from the same frontier, and (3) the paper-bounds sanity of every
//! frontier member.

use sega_dcim::distill::{distill, DistillStrategy};
use sega_dcim::{explore_pareto, UserSpec};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = sega_cells::Technology::tsmc28();
    let cond = OperatingConditions::paper_default();
    let cfg = Nsga2Config {
        population: 48,
        generations: 30,
        seed: 7,
        ..Default::default()
    };
    const WSTORE: u64 = 16384;

    println!("== Design space tour, Wstore = 16K ==\n");
    for precision in [
        Precision::Int4,
        Precision::Int8,
        Precision::Fp8,
        Precision::Bf16,
    ] {
        let spec = UserSpec::new(WSTORE, precision)?;
        let result = explore_pareto(&spec, &tech, &cond, &cfg);
        println!(
            "{precision}: {} Pareto designs from {} evaluations",
            result.solutions.len(),
            result.evaluations
        );

        // Frontier corners.
        let corner = |label: &str, strategy: DistillStrategy| {
            if let Some(s) = distill(&result.solutions, &strategy) {
                println!("  {label:<16} {} -> {}", s.design, s.estimate);
            }
        };
        corner("min area:", DistillStrategy::MinArea);
        corner("knee (auto):", DistillStrategy::Knee);
        corner("max efficiency:", DistillStrategy::MaxEfficiency);
        corner("max throughput:", DistillStrategy::MaxThroughput);

        // Every frontier member honors the paper's exploration bounds.
        for s in &result.solutions {
            let (n, h, l, k) = s.design.geometry();
            assert!(l <= 64 && h <= 2048, "paper bounds violated");
            assert!(n >= 4 * precision.weight_bits(), "N >= 4·Bw violated");
            assert!(k >= 1 && k <= precision.input_bits());
            assert_eq!(s.design.wstore(), WSTORE, "capacity constraint violated");
        }
        println!(
            "  all {} designs satisfy the Eq. 2/3 constraints\n",
            result.solutions.len()
        );
    }

    // Part 2: the paper's mixed-architecture frontier — "a high-quality
    // Pareto-frontier set containing both integer and floating-point
    // solutions" (§III-B.2).
    println!("== Mixed INT8 + BF16 frontier (cross-architecture merge) ==\n");
    let mixed = sega_dcim::explore_mixed(
        WSTORE,
        &[Precision::Int8, Precision::Bf16],
        &tech,
        &cond,
        &cfg,
    )?;
    for (precision, count) in &mixed.per_precision {
        println!("  {precision}: {count} designs on its own frontier");
    }
    let int_survivors = mixed.survivors_of(Precision::Int8);
    let fp_survivors = mixed.survivors_of(Precision::Bf16);
    println!(
        "  merged frontier: {} designs ({int_survivors} INT8 + {fp_survivors} BF16 survive the cross-architecture merge)\n",
        mixed.front.len()
    );

    println!("Take-away: one exploration, many answers — the distillation strategy,");
    println!("not a hand-tuned objective weighting, decides which corner you get;");
    println!("and when the application tolerates either number format, the merged");
    println!("frontier offers both architectures' best designs side by side.");
    Ok(())
}
