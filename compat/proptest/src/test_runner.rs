//! The miniature test runner: configuration and the per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of a [`crate::proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, overridable via the `PROPTEST_CASES` environment
    /// variable.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of a string — the per-test base seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic RNG driving one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for case number `case` of the test with base seed `base`.
    pub fn for_case(base: u64, case: u32) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case(fnv1a("t"), 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(fnv1a("t"), 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case(fnv1a("t"), 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
