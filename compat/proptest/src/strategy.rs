//! Value-generation strategies: the sampling core of the shim.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike crates.io proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a seeded [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform values over a type's entire domain (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        rng.next_u64() as u32 as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, spread over a wide dynamic range.
        f64::from_bits(rng.next_u64() & 0x7FEF_FFFF_FFFF_FFFF)
            * if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice among strategies of one type — built by
/// [`crate::prop_oneof!`]. Mixed strategy types must be unified with
/// [`Strategy::boxed`] first.
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union from its options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(0xABCD, 0)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u32..9).sample(&mut r);
            assert!((3..9).contains(&v));
            let w = (-4i64..=4).sample(&mut r);
            assert!((-4..=4).contains(&w));
            let f = (0.0f64..1.0).sample(&mut r);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (1u32..=4).prop_flat_map(|n| (Just(n), 0..n).prop_map(|(n, k)| (n, k)));
        for _ in 0..100 {
            let (n, k) = s.sample(&mut r);
            assert!(k < n);
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut r = rng();
        let u = crate::prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(u.sample(&mut r) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut r = rng();
        let (a, b, c) = (0u32..10, 10u32..20, 20u32..30).sample(&mut r);
        assert!(a < 10 && (10..20).contains(&b) && (20..30).contains(&c));
    }
}
