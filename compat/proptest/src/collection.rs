//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi }
    }
}

/// A strategy producing `Vec`s of `element` values with a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_length_and_elements_in_bounds() {
        let mut rng = TestRng::for_case(1, 0);
        let s = vec(0.0f64..10.0, 2..=5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| (0.0..10.0).contains(&x)));
        }
    }

    #[test]
    fn nested_vec_strategies() {
        let mut rng = TestRng::for_case(2, 0);
        let s = vec(vec(0u32..4, 3..=3), 1..=4);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty() && v.iter().all(|row| row.len() == 3));
    }
}
