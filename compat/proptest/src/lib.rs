//! Offline stand-in for the parts of the `proptest` crate this workspace
//! uses: the [`proptest!`] macro, [`Strategy`] combinators
//! (`prop_map`/`prop_flat_map`), range/tuple/`Just`/`any` strategies,
//! [`prop::collection::vec`], [`prop_oneof!`], and the
//! `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from crates.io `proptest`, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via the
//!   ordinary panic message (all workspace properties format their inputs
//!   into their assertion messages already).
//! * **Deterministic seeding.** Cases are derived from a fixed per-test
//!   seed (FNV-1a of the test name) plus the case index, so failures
//!   always reproduce. Set `PROPTEST_CASES` to override the case count
//!   globally.
//! * `prop_assume!` skips the remaining body of the current case instead
//!   of resampling a replacement case.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the property tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property body (panics with the formatted
/// message on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the remainder of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`] — one test function per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let base = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                let mut rng = $crate::test_runner::TestRng::for_case(base, case);
                $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                // A closure so `prop_assume!` can skip the rest of the case.
                (|| $body)();
            }
        }
        $crate::__proptest_each!{ ($cfg) $($rest)* }
    };
}
