//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The repository builds without network access, so instead of the
//! crates.io `rand` we vendor a small, API-compatible subset:
//!
//! * [`RngCore`] — the object-safe generator core (`next_u32`/`next_u64`),
//! * [`Rng`] — the extension trait with `gen_range`/`gen_bool`,
//! * [`SeedableRng`] + [`rngs::StdRng`] — a deterministic xoshiro256++
//!   generator seeded through SplitMix64.
//!
//! Determinism is the only hard requirement of the workspace (every
//! NSGA-II run is reproducible given its seed); xoshiro256++ also has
//! excellent statistical quality for the uniform draws the explorer makes.
//! The stream differs from crates.io `rand`'s `StdRng` (ChaCha12), which
//! is fine: nothing in this repository depends on a particular stream,
//! only on a stable one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw uniform words.
///
/// Object safe, so genetic operators can take `&mut dyn RngCore`.
pub trait RngCore {
    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-friendly draws on top of [`RngCore`]. Blanket-implemented, so it
/// works through `&mut dyn RngCore` too.
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard unit-interval construction.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        ((self.start as f64)..(self.end as f64)).sample_single(rng) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion (Vigna's recommended init).
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words — everything a checkpoint
        /// needs to resume the stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from exported [`state`](Self::state)
        /// words; the rebuilt stream continues bit-identically.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = dynamic.gen_range(1..=16u32);
        assert!((1..=16).contains(&v));
        assert!(dynamic.gen_bool(1.0));
        assert!(!dynamic.gen_bool(0.0));
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(21);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
