//! Offline stand-in for the parts of the `criterion` crate the benches
//! use: [`Criterion`], benchmark groups, [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — median of wall-clock samples after
//! a short warm-up — and prints one line per benchmark:
//!
//! ```text
//! group/name              time: [12.3 µs]  (21 samples)
//! ```
//!
//! Good enough to compare serial vs parallel vs cached pipelines on the
//! same machine; not a statistics suite. Set `CRITERION_QUICK=1` to cap
//! sampling at one round for smoke runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), 20, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timing samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let quick = std::env::var_os("CRITERION_QUICK").is_some();
    let samples = if quick { 1 } else { sample_size };
    let budget = if quick {
        Duration::from_millis(100)
    } else {
        Duration::from_millis(1500)
    };
    let mut times: Vec<f64> = Vec::with_capacity(samples);
    let started = Instant::now();
    for _ in 0..samples {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            times.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
        if started.elapsed() > budget {
            break;
        }
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = times.get(times.len() / 2).copied().unwrap_or(0.0);
    println!(
        "{id:<40} time: [{}]  ({} samples)",
        format_seconds(median),
        times.len()
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.2} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times closures for one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine`, running it enough times to observe a stable
    /// per-iteration cost.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up + calibration: find an iteration count that takes ≥ 1 ms.
        let mut n = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || n >= 1 << 20 {
                self.elapsed += elapsed;
                self.iterations += n;
                return;
            }
            n *= 4;
        }
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_accumulates_iterations() {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        // Calibration rounds also run the routine, so the total call count
        // is at least the number of measured iterations.
        assert!(b.iterations > 0);
        assert!(count >= b.iterations);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" µs"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
