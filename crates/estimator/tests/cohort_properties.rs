//! Property tests for the cohort-batched estimator: bit-identity with
//! the per-design path across all 8 precisions, random geometries and
//! cohort compositions, on both the scalar and vector finish paths, and
//! the zero-allocation steady state.

use proptest::prelude::*;
use sega_cells::Technology;
use sega_estimator::{
    CohortScratch, DcimDesign, EstimationContext, OperatingConditions, ALL_PRECISIONS,
};

/// Every valid design across the 8 precisions over a small geometry
/// grid — the sample space the random cohorts draw from.
fn design_pool() -> Vec<DcimDesign> {
    let mut pool = Vec::new();
    for &prec in &ALL_PRECISIONS {
        let wb = prec.weight_bits();
        for n_mult in [1u32, 2, 4] {
            for h in [16u32, 64, 128] {
                for l in [4u32, 16] {
                    for k in [1u32, 2, 4] {
                        if let Ok(d) = DcimDesign::for_precision(prec, n_mult * wb, h, l, k) {
                            pool.push(d);
                        }
                    }
                }
            }
        }
    }
    assert!(
        pool.iter().any(DcimDesign::is_float) && pool.iter().any(|d| !d.is_float()),
        "pool must cover both architectures"
    );
    pool
}

fn conditions(idx: usize) -> OperatingConditions {
    [
        OperatingConditions::paper_default(),
        OperatingConditions::dense(),
        OperatingConditions {
            voltage: 0.65,
            ..OperatingConditions::paper_default()
        },
    ][idx]
}

fn row_bits(row: [f64; 4]) -> [u64; 4] {
    row.map(f64::to_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `estimate_cohort` reproduces the per-design estimator bit for
    /// bit, for arbitrary cohort sizes and Int/Fp mixes (including the
    /// empty and single-design cohorts the 0..48 range generates).
    #[test]
    fn cohort_is_bit_identical_to_per_design_estimates(
        picks in prop::collection::vec(any::<usize>(), 0..48),
        cond_idx in 0usize..3,
    ) {
        let pool = design_pool();
        let cohort: Vec<DcimDesign> =
            picks.iter().map(|&ix| pool[ix % pool.len()]).collect();
        let ctx = EstimationContext::new(&Technology::tsmc28(), &conditions(cond_idx));
        let mut scratch = CohortScratch::default();
        let mut rows = Vec::new();
        ctx.estimate_cohort(&cohort, &mut rows, &mut scratch);
        prop_assert_eq!(rows.len(), cohort.len());
        for (design, &row) in cohort.iter().zip(&rows) {
            prop_assert_eq!(
                row_bits(row),
                row_bits(ctx.estimate(design).objectives()),
                "cohort row diverged for {}", design
            );
        }
        let stats = scratch.stats();
        prop_assert_eq!(stats.designs, cohort.len() as u64);
        prop_assert_eq!(stats.batched + stats.scalar_fallbacks, cohort.len() as u64);
    }

    /// The forced-scalar block loop and the default (vector where
    /// detected) path produce bit-identical rows.
    #[test]
    fn forced_scalar_matches_vector_path(
        picks in prop::collection::vec(any::<usize>(), 1..64),
        cond_idx in 0usize..3,
    ) {
        let pool = design_pool();
        let cohort: Vec<DcimDesign> =
            picks.iter().map(|&ix| pool[ix % pool.len()]).collect();
        let ctx = EstimationContext::new(&Technology::tsmc28(), &conditions(cond_idx));
        let mut scratch = CohortScratch::default();
        let (mut vector_rows, mut scalar_rows) = (Vec::new(), Vec::new());
        scratch.set_force_scalar(false);
        ctx.estimate_cohort(&cohort, &mut vector_rows, &mut scratch);
        scratch.set_force_scalar(true);
        ctx.estimate_cohort(&cohort, &mut scalar_rows, &mut scratch);
        prop_assert_eq!(scratch.stats().scalar_fallbacks >= cohort.len() as u64, true);
        let vector_bits: Vec<[u64; 4]> = vector_rows.iter().map(|&r| row_bits(r)).collect();
        let scalar_bits: Vec<[u64; 4]> = scalar_rows.iter().map(|&r| row_bits(r)).collect();
        prop_assert_eq!(vector_bits, scalar_bits);
    }
}

#[test]
fn empty_cohort_yields_empty_rows() {
    let ctx = EstimationContext::new(&Technology::tsmc28(), &OperatingConditions::paper_default());
    let mut scratch = CohortScratch::default();
    let mut rows = vec![[1.0; 4]; 3];
    ctx.estimate_cohort(&[], &mut rows, &mut scratch);
    assert!(rows.is_empty());
    assert_eq!(scratch.stats().designs, 0);
}

#[test]
fn mixed_interleaved_cohort_matches_per_design() {
    let ctx = EstimationContext::new(&Technology::tsmc28(), &OperatingConditions::paper_default());
    // Alternate Int and Fp designs so both lane-build loops scatter
    // into interleaved slots.
    let pool = design_pool();
    let ints: Vec<_> = pool.iter().filter(|d| !d.is_float()).take(5).collect();
    let fps: Vec<_> = pool.iter().filter(|d| d.is_float()).take(5).collect();
    let cohort: Vec<DcimDesign> = ints
        .iter()
        .zip(&fps)
        .flat_map(|(&&i, &&f)| [i, f])
        .collect();
    let mut scratch = CohortScratch::default();
    let mut rows = Vec::new();
    ctx.estimate_cohort(&cohort, &mut rows, &mut scratch);
    for (design, &row) in cohort.iter().zip(&rows) {
        assert_eq!(
            row_bits(row),
            row_bits(ctx.estimate(design).objectives()),
            "{design}"
        );
    }
}

#[test]
fn steady_state_cohorts_allocate_nothing() {
    let ctx = EstimationContext::new(&Technology::tsmc28(), &OperatingConditions::paper_default());
    let pool = design_pool();
    let cohort: Vec<DcimDesign> = pool.iter().cycle().take(257).copied().collect();
    let mut scratch = CohortScratch::default();
    let mut rows = Vec::new();
    ctx.estimate_cohort(&cohort, &mut rows, &mut scratch);
    scratch.reset_stats();
    for _ in 0..3 {
        ctx.estimate_cohort(&cohort, &mut rows, &mut scratch);
    }
    let stats = scratch.stats();
    assert_eq!(
        stats.allocations, 0,
        "warm cohorts must not allocate: {stats:?}"
    );
    assert_eq!(stats.designs, 3 * 257);
    // Smaller warm cohorts (the common shrinking tail of a dedup'd
    // batch) must not allocate either.
    ctx.estimate_cohort(&cohort[..63], &mut rows, &mut scratch);
    assert_eq!(scratch.stats().allocations, 0);
}

#[cfg(target_arch = "x86_64")]
#[test]
fn vector_path_engages_on_avx2_hosts() {
    if !std::is_x86_feature_detected!("avx2") {
        return;
    }
    let ctx = EstimationContext::new(&Technology::tsmc28(), &OperatingConditions::paper_default());
    let pool = design_pool();
    let cohort: Vec<DcimDesign> = pool.iter().take(10).copied().collect();
    let mut scratch = CohortScratch::default();
    scratch.set_force_scalar(false);
    let mut rows = Vec::new();
    ctx.estimate_cohort(&cohort, &mut rows, &mut scratch);
    assert_eq!(scratch.stats().batched, 8, "two full AVX2 blocks");
    assert_eq!(scratch.stats().scalar_fallbacks, 2, "remainder lanes");
}
