//! Property-based tests of the estimation model: physical sanity
//! (monotonicity, positivity, conservation) over randomized geometries.

use proptest::prelude::*;
use sega_cells::Technology;
use sega_estimator::{components, estimate, DcimDesign, FpParams, IntParams, OperatingConditions};

fn int_geometry() -> impl Strategy<Value = IntParams> {
    (1u32..=4, 1u32..=8, 0u32..=5, 1u32..=2).prop_flat_map(|(log_g, log_h, log_l, log_bw)| {
        let bw = 1u32 << (log_bw + 1); // 4 or 8
        let _ = log_bw;
        (1u32..=bw).prop_map(move |k| {
            IntParams::new((1 << log_g) * bw, 1 << log_h, 1 << log_l, k, bw, bw)
                .expect("valid by construction")
        })
    })
}

fn setup() -> (Technology, OperatingConditions) {
    (Technology::tsmc28(), OperatingConditions::paper_default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every estimate is physically sane: positive area/delay/energy,
    /// finite throughput, consistent derived metrics.
    #[test]
    fn estimates_are_physical(p in int_geometry()) {
        let (tech, cond) = setup();
        let e = estimate(&DcimDesign::Int(p), &tech, &cond);
        prop_assert!(e.area_mm2 > 0.0 && e.area_mm2.is_finite());
        prop_assert!(e.delay_ns > 0.0 && e.delay_ns.is_finite());
        prop_assert!(e.energy_per_cycle_nj > 0.0);
        prop_assert!(e.tops > 0.0);
        prop_assert!(e.tops_per_w() > 0.0);
        prop_assert!(e.tops_per_mm2() > 0.0);
        // Derived-metric consistency.
        let p_w = e.energy_per_cycle_nj * e.freq_ghz();
        prop_assert!((e.power_w() - p_w).abs() < 1e-12);
        prop_assert!(
            (e.energy_per_pass_nj - e.energy_per_cycle_nj * e.cycles_per_pass as f64).abs()
                < 1e-12
        );
    }

    /// Doubling H at fixed everything-else increases area, energy and
    /// capacity.
    #[test]
    fn taller_columns_cost_more(
        log_h in 1u32..=7,
        log_l in 0u32..=4,
        k in 1u32..=4,
    ) {
        let (tech, cond) = setup();
        let mk = |h: u32| {
            estimate(
                &DcimDesign::Int(IntParams::new(16, h, 1 << log_l, k, 4, 4).unwrap()),
                &tech,
                &cond,
            )
        };
        let small = mk(1 << log_h);
        let tall = mk(1 << (log_h + 1));
        prop_assert!(tall.area_mm2 > small.area_mm2);
        prop_assert!(tall.unit.energy > small.unit.energy);
        prop_assert!(tall.macs_per_pass == 2 * small.macs_per_pass);
    }

    /// More slots per compute unit (L) buys capacity almost for free in
    /// area (SRAM + selector only) but never increases throughput.
    #[test]
    fn deeper_slots_trade_capacity_for_throughput(
        log_l in 0u32..=5,
    ) {
        let (tech, cond) = setup();
        let mk = |l: u32| {
            let p = IntParams::new(16, 32, l, 2, 4, 4).unwrap();
            (p.wstore(), estimate(&DcimDesign::Int(p), &tech, &cond))
        };
        let (w1, e1) = mk(1 << log_l);
        let (w2, e2) = mk(1 << (log_l + 1));
        prop_assert_eq!(w2, 2 * w1, "capacity doubles with L");
        prop_assert!(e2.area_mm2 > e1.area_mm2);
        prop_assert!((e2.tops - e1.tops).abs() / e1.tops < 0.35,
            "throughput nearly unchanged by L: {} vs {}", e1.tops, e2.tops);
    }

    /// The FP macro always costs more than the integer macro of the same
    /// array geometry (it adds pre-alignment and converters), but the
    /// overhead stays modest — the paper's efficiency claim.
    #[test]
    fn fp_overhead_is_positive_and_modest(
        log_h in 3u32..=8,
        log_l in 0u32..=3,
        k in 1u32..=4,
    ) {
        let (tech, cond) = setup();
        let h = 1 << log_h;
        let l = 1 << log_l;
        let int8 = estimate(
            &DcimDesign::Int(IntParams::new(32, h, l, k, 8, 8).unwrap()),
            &tech,
            &cond,
        );
        let bf16 = estimate(
            &DcimDesign::Fp(FpParams::new(32, h, l, k, 8, 8).unwrap()),
            &tech,
            &cond,
        );
        let overhead = (bf16.area_mm2 - int8.area_mm2) / int8.area_mm2;
        prop_assert!(overhead > 0.0, "FP must cost more");
        prop_assert!(overhead < 0.6, "FP overhead {overhead:.2} too large");
    }

    /// The accumulator width formula covers the adder-tree output for any
    /// k <= bx (no silent truncation in the architecture).
    #[test]
    fn accumulator_always_fits_tree_output(
        log_h in 1u32..=11,
        bx in 1u32..=16,
    ) {
        let h = 1u32 << log_h;
        for k in 1..=bx {
            let tree_out = k + sega_cells::ceil_log2(h as u64);
            let acc = components::accumulator_width(bx, h);
            prop_assert!(acc >= tree_out, "h={h} bx={bx} k={k}");
        }
    }

    /// Voltage scaling: lower V always lowers power and throughput, and
    /// (to first order) raises TOPS/W.
    #[test]
    fn voltage_derating_direction(p in int_geometry()) {
        let tech = Technology::tsmc28();
        let base = estimate(
            &DcimDesign::Int(p),
            &tech,
            &OperatingConditions { voltage: 0.9, ..OperatingConditions::paper_default() },
        );
        let low = estimate(
            &DcimDesign::Int(p),
            &tech,
            &OperatingConditions { voltage: 0.7, ..OperatingConditions::paper_default() },
        );
        prop_assert!(low.power_w() < base.power_w());
        prop_assert!(low.tops < base.tops);
        prop_assert!(low.tops_per_w() > base.tops_per_w());
        prop_assert!((low.area_mm2 - base.area_mm2).abs() < 1e-12, "area is voltage-independent");
    }
}

#[test]
fn throughput_formula_closed_form() {
    // T = 2 · (N/Bw) · H · f / ⌈Bx/k⌉, checked against the estimate.
    let (tech, cond) = setup();
    let p = IntParams::new(32, 128, 16, 4, 8, 8).unwrap();
    let e = estimate(&DcimDesign::Int(p), &tech, &cond);
    let f_ghz = 1.0 / e.delay_ns;
    let expected_tops = 2.0 * (32.0 / 8.0) * 128.0 * f_ghz / 2.0 / 1e3;
    assert!((e.tops - expected_tops).abs() < 1e-12);
}
