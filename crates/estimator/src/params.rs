use crate::Precision;

/// Error returned when a parameter set does not describe a buildable DCIM
/// macro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// A dimension (`N`, `H`, `L`, `k`, bit-width) was zero.
    ZeroDimension(&'static str),
    /// `k` exceeds the bit-serial input width (`k ≤ Bx` / `k ≤ BM`,
    /// Equations 2 and 3 of the paper).
    InputChunkTooWide {
        /// Requested bits per cycle.
        k: u32,
        /// Total serial input width.
        bits: u32,
    },
    /// The SRAM capacity `N·H·L` is not a whole multiple of the weight
    /// width, so `Wstore` would be fractional.
    CapacityNotDivisible {
        /// `N·H·L` in bits.
        capacity_bits: u64,
        /// Weight width in bits.
        weight_bits: u32,
    },
    /// The number of bit-columns `N` is not a multiple of the weight width,
    /// so full-precision weights cannot be fused from whole column groups.
    ColumnsNotDivisible {
        /// Number of array columns.
        n: u32,
        /// Weight width in bits.
        weight_bits: u32,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::ZeroDimension(name) => {
                write!(f, "dimension `{name}` must be nonzero")
            }
            ParamError::InputChunkTooWide { k, bits } => {
                write!(f, "bits-per-cycle k={k} exceeds serial input width {bits}")
            }
            ParamError::CapacityNotDivisible {
                capacity_bits,
                weight_bits,
            } => write!(
                f,
                "array capacity {capacity_bits} bits is not divisible by weight width {weight_bits}"
            ),
            ParamError::ColumnsNotDivisible { n, weight_bits } => write!(
                f,
                "column count {n} is not divisible by weight width {weight_bits}"
            ),
        }
    }
}

impl std::error::Error for ParamError {}

/// Design parameters of the multiplier-based integer DCIM (paper Eq. 2).
///
/// * `n` — number of SRAM bit-columns (each with its own adder tree),
/// * `h` — column height: compute units (and adder-tree inputs) per column,
/// * `l` — weights bits sharing one compute unit through an `L:1` selector,
/// * `k` — input bits processed per cycle (`1 ≤ k ≤ bx`),
/// * `bw` — weight bit-width,
/// * `bx` — input bit-width (streamed over `⌈bx/k⌉` cycles).
///
/// Derived: `wstore() = n·h·l / bw` weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntParams {
    /// Number of SRAM bit-columns.
    pub n: u32,
    /// Column height (compute units per column).
    pub h: u32,
    /// Weight bits sharing one compute unit.
    pub l: u32,
    /// Input bits per cycle.
    pub k: u32,
    /// Weight bit-width `Bw`.
    pub bw: u32,
    /// Input bit-width `Bx`.
    pub bx: u32,
}

impl IntParams {
    /// Validates and constructs integer-macro parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if any dimension is zero, `k > bx`,
    /// `n·h·l` is not divisible by `bw`, or `n` is not divisible by `bw`.
    pub fn new(n: u32, h: u32, l: u32, k: u32, bw: u32, bx: u32) -> Result<Self, ParamError> {
        let p = IntParams { n, h, l, k, bw, bx };
        p.validate()?;
        Ok(p)
    }

    /// Re-checks the structural invariants (used after genetic mutation).
    pub fn validate(&self) -> Result<(), ParamError> {
        for (v, name) in [
            (self.n, "n"),
            (self.h, "h"),
            (self.l, "l"),
            (self.k, "k"),
            (self.bw, "bw"),
            (self.bx, "bx"),
        ] {
            if v == 0 {
                return Err(ParamError::ZeroDimension(name));
            }
        }
        if self.k > self.bx {
            return Err(ParamError::InputChunkTooWide {
                k: self.k,
                bits: self.bx,
            });
        }
        let capacity = self.capacity_bits();
        if !capacity.is_multiple_of(self.bw as u64) {
            return Err(ParamError::CapacityNotDivisible {
                capacity_bits: capacity,
                weight_bits: self.bw,
            });
        }
        if !self.n.is_multiple_of(self.bw) {
            return Err(ParamError::ColumnsNotDivisible {
                n: self.n,
                weight_bits: self.bw,
            });
        }
        Ok(())
    }

    /// SRAM capacity `N·H·L` in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.n as u64 * self.h as u64 * self.l as u64
    }

    /// Number of stored weights `Wstore = N·H·L / Bw`.
    pub fn wstore(&self) -> u64 {
        self.capacity_bits() / self.bw as u64
    }

    /// Cycles needed to stream one full input vector: `⌈Bx/k⌉`.
    pub fn cycles_per_pass(&self) -> u32 {
        self.bx.div_ceil(self.k)
    }

    /// Full-precision MACs completed per pass: `(N/Bw)·H` (one weight of the
    /// `L` stored per compute unit is active).
    pub fn macs_per_pass(&self) -> u64 {
        (self.n / self.bw) as u64 * self.h as u64
    }
}

/// Design parameters of the pre-aligned floating-point DCIM (paper Eq. 3).
///
/// The array stores and MACs aligned mantissas, so the roles of `Bw`/`Bx`
/// are both played by the mantissa width `bm`; `be` sizes the exponent
/// periphery (pre-alignment and INT-to-FP conversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpParams {
    /// Number of SRAM bit-columns.
    pub n: u32,
    /// Column height (compute units per column).
    pub h: u32,
    /// Weight bits sharing one compute unit.
    pub l: u32,
    /// Mantissa bits per cycle.
    pub k: u32,
    /// Exponent width `BE`.
    pub be: u32,
    /// Mantissa width `BM` (including the hidden bit).
    pub bm: u32,
}

impl FpParams {
    /// Validates and constructs floating-point-macro parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] under the same conditions as
    /// [`IntParams::new`], with `BM` playing the role of the weight width.
    pub fn new(n: u32, h: u32, l: u32, k: u32, be: u32, bm: u32) -> Result<Self, ParamError> {
        let p = FpParams { n, h, l, k, be, bm };
        p.validate()?;
        Ok(p)
    }

    /// Re-checks the structural invariants.
    pub fn validate(&self) -> Result<(), ParamError> {
        for (v, name) in [
            (self.n, "n"),
            (self.h, "h"),
            (self.l, "l"),
            (self.k, "k"),
            (self.be, "be"),
            (self.bm, "bm"),
        ] {
            if v == 0 {
                return Err(ParamError::ZeroDimension(name));
            }
        }
        if self.k > self.bm {
            return Err(ParamError::InputChunkTooWide {
                k: self.k,
                bits: self.bm,
            });
        }
        let capacity = self.capacity_bits();
        if !capacity.is_multiple_of(self.bm as u64) {
            return Err(ParamError::CapacityNotDivisible {
                capacity_bits: capacity,
                weight_bits: self.bm,
            });
        }
        if !self.n.is_multiple_of(self.bm) {
            return Err(ParamError::ColumnsNotDivisible {
                n: self.n,
                weight_bits: self.bm,
            });
        }
        Ok(())
    }

    /// SRAM capacity `N·H·L` in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.n as u64 * self.h as u64 * self.l as u64
    }

    /// Number of stored weights `Wstore = N·H·L / BM`.
    pub fn wstore(&self) -> u64 {
        self.capacity_bits() / self.bm as u64
    }

    /// Cycles needed to stream one input mantissa: `⌈BM/k⌉`.
    pub fn cycles_per_pass(&self) -> u32 {
        self.bm.div_ceil(self.k)
    }

    /// Full-precision MACs completed per pass: `(N/BM)·H`.
    pub fn macs_per_pass(&self) -> u64 {
        (self.n / self.bm) as u64 * self.h as u64
    }

    /// Width of the raw integer array result before FP conversion:
    /// `Br = Bw + BM + log2(H)` with `Bw = BM` for symmetric mantissas.
    pub fn result_bits(&self) -> u32 {
        2 * self.bm + sega_cells::ceil_log2(self.h as u64)
    }
}

/// A complete DCIM design point: architecture choice plus its parameters.
///
/// This is what the design space explorer evolves and what the generator
/// consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DcimDesign {
    /// Multiplier-based integer architecture.
    Int(IntParams),
    /// Pre-aligned floating-point architecture.
    Fp(FpParams),
}

impl DcimDesign {
    /// Builds the design point matching a [`Precision`] with explicit array
    /// geometry, picking the architecture automatically.
    ///
    /// # Errors
    ///
    /// Propagates the parameter validation errors of the chosen
    /// architecture.
    pub fn for_precision(
        precision: Precision,
        n: u32,
        h: u32,
        l: u32,
        k: u32,
    ) -> Result<Self, ParamError> {
        match (precision.exponent_bits(), precision.mantissa_bits()) {
            (Some(be), Some(bm)) => Ok(DcimDesign::Fp(FpParams::new(n, h, l, k, be, bm)?)),
            _ => {
                let bw = precision.weight_bits();
                Ok(DcimDesign::Int(IntParams::new(n, h, l, k, bw, bw)?))
            }
        }
    }

    /// Number of stored weights.
    pub fn wstore(&self) -> u64 {
        match self {
            DcimDesign::Int(p) => p.wstore(),
            DcimDesign::Fp(p) => p.wstore(),
        }
    }

    /// SRAM capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        match self {
            DcimDesign::Int(p) => p.capacity_bits(),
            DcimDesign::Fp(p) => p.capacity_bits(),
        }
    }

    /// Array geometry `(N, H, L, k)`.
    pub fn geometry(&self) -> (u32, u32, u32, u32) {
        match self {
            DcimDesign::Int(p) => (p.n, p.h, p.l, p.k),
            DcimDesign::Fp(p) => (p.n, p.h, p.l, p.k),
        }
    }

    /// True for the floating-point architecture.
    pub fn is_float(&self) -> bool {
        matches!(self, DcimDesign::Fp(_))
    }

    /// Re-checks structural invariants.
    pub fn validate(&self) -> Result<(), ParamError> {
        match self {
            DcimDesign::Int(p) => p.validate(),
            DcimDesign::Fp(p) => p.validate(),
        }
    }
}

impl std::fmt::Display for DcimDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcimDesign::Int(p) => write!(
                f,
                "INT[N={} H={} L={} k={} Bw={} Bx={}]",
                p.n, p.h, p.l, p.k, p.bw, p.bx
            ),
            DcimDesign::Fp(p) => write!(
                f,
                "FP[N={} H={} L={} k={} BE={} BM={}]",
                p.n, p.h, p.l, p.k, p.be, p.bm
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_int8_parameters() {
        // Fig. 6(a): N=32, L=16, H=128, Wstore=8K, SRAM=64Kbit, INT8.
        let p = IntParams::new(32, 128, 16, 4, 8, 8).unwrap();
        assert_eq!(p.capacity_bits(), 65536);
        assert_eq!(p.wstore(), 8192);
        assert_eq!(p.cycles_per_pass(), 2);
        assert_eq!(p.macs_per_pass(), 4 * 128);
    }

    #[test]
    fn fig6_bf16_parameters() {
        // Fig. 6(b): same geometry, BF16 (BE=8, BM=8).
        let p = FpParams::new(32, 128, 16, 4, 8, 8).unwrap();
        assert_eq!(p.wstore(), 8192);
        assert_eq!(p.result_bits(), 2 * 8 + 7);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert_eq!(
            IntParams::new(0, 128, 16, 4, 8, 8),
            Err(ParamError::ZeroDimension("n"))
        );
        assert_eq!(
            FpParams::new(32, 128, 16, 0, 8, 8),
            Err(ParamError::ZeroDimension("k"))
        );
    }

    #[test]
    fn k_bounded_by_serial_width() {
        assert!(matches!(
            IntParams::new(32, 128, 16, 9, 8, 8),
            Err(ParamError::InputChunkTooWide { k: 9, bits: 8 })
        ));
        assert!(IntParams::new(32, 128, 16, 8, 8, 8).is_ok());
        assert!(matches!(
            FpParams::new(32, 128, 16, 12, 5, 11),
            Err(ParamError::InputChunkTooWide { k: 12, bits: 11 })
        ));
    }

    #[test]
    fn divisibility_constraints() {
        // N=30 not divisible by Bw=8.
        assert!(matches!(
            IntParams::new(30, 128, 16, 4, 8, 8),
            Err(ParamError::ColumnsNotDivisible { .. })
        ));
        // Capacity 3*5*7=105 not divisible by Bw=2 -> capacity error first.
        assert!(matches!(
            IntParams::new(3, 5, 7, 1, 2, 2),
            Err(ParamError::CapacityNotDivisible { .. })
        ));
    }

    #[test]
    fn cycles_round_up() {
        let p = IntParams::new(16, 64, 8, 3, 8, 8).unwrap();
        assert_eq!(p.cycles_per_pass(), 3); // ceil(8/3)
    }

    #[test]
    fn design_for_precision_picks_architecture() {
        let d = DcimDesign::for_precision(Precision::Int8, 32, 128, 16, 4).unwrap();
        assert!(!d.is_float());
        let d = DcimDesign::for_precision(Precision::Bf16, 32, 128, 16, 4).unwrap();
        assert!(d.is_float());
        assert_eq!(d.wstore(), 8192);
        let d = DcimDesign::for_precision(Precision::Fp16, 44, 128, 16, 4).unwrap();
        match d {
            DcimDesign::Fp(p) => {
                assert_eq!(p.be, 5);
                assert_eq!(p.bm, 11);
            }
            DcimDesign::Int(_) => panic!("expected FP"),
        }
    }

    #[test]
    fn display_is_informative() {
        let d = DcimDesign::for_precision(Precision::Int8, 32, 128, 16, 4).unwrap();
        let s = d.to_string();
        assert!(s.contains("N=32") && s.contains("Bw=8"));
    }

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<ParamError> = vec![
            ParamError::ZeroDimension("n"),
            ParamError::InputChunkTooWide { k: 9, bits: 8 },
            ParamError::CapacityNotDivisible {
                capacity_bits: 105,
                weight_bits: 2,
            },
            ParamError::ColumnsNotDivisible {
                n: 30,
                weight_bits: 8,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
