//! # sega-estimator — DCIM macro performance estimation
//!
//! Closed-form area / delay / power / throughput models for the two
//! synthesizable DCIM architectures of the SEGA-DCIM paper:
//!
//! * the **multiplier-based integer** macro ([`IntParams`], paper Table V),
//! * the **pre-aligned floating-point** macro ([`FpParams`], paper Table VI),
//!
//! built from the per-component models of paper Table IV
//! (see [`components`]) on top of the [`sega_cells`] cost library.
//!
//! The estimator is the objective function of the design space explorer: a
//! single [`estimate`] call is cheap (microseconds), which is what makes
//! MOGA-based exploration over millions of candidate designs feasible.
//!
//! # Example
//!
//! ```
//! use sega_estimator::{estimate, DcimDesign, IntParams, OperatingConditions};
//! use sega_cells::Technology;
//!
//! // The INT8 macro of the paper's Fig. 6: N=32, L=16, H=128, 8K weights.
//! let params = IntParams::new(32, 128, 16, 4, 8, 8)?;
//! assert_eq!(params.wstore(), 8192);
//!
//! let est = estimate(
//!     &DcimDesign::Int(params),
//!     &Technology::tsmc28(),
//!     &OperatingConditions::paper_default(),
//! );
//! // Paper: 0.079 mm². The calibrated model lands within a few percent.
//! assert!((est.area_mm2 - 0.079).abs() < 0.01);
//! # Ok::<(), sega_estimator::ParamError>(())
//! ```

// `deny` rather than `forbid`: the cohort kernel's AVX2 module opts in
// to `std::arch` intrinsics behind runtime feature detection; everything
// else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cohort;
pub mod components;
mod macro_model;
mod metrics;
mod params;
mod precision;

pub use cohort::{CohortScratch, EstimatorStats};
pub use macro_model::{estimate, ComponentBreakdown, EstimationContext};
pub use metrics::{MacroEstimate, OperatingConditions};
pub use params::{DcimDesign, FpParams, IntParams, ParamError};
pub use precision::{Precision, ALL_PRECISIONS};
