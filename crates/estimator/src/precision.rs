/// The computing precisions evaluated in the paper (§IV: "INT2, INT4, INT8,
/// INT16, FP8, FP16, FP32, and BF16").
///
/// For floating-point formats, `mantissa_bits()` counts the bits that
/// actually enter the in-array integer MAC: the stored fraction bits **plus
/// the implicit hidden bit**. This is the `BM` of the paper's FP cost model
/// and of the FP capacity constraint `N·H·L/BM = Wstore` (for BF16 this gives
/// `BM = 8`, consistent with the Fig. 6 BF16 macro storing 8K weights in a
/// 64 Kbit array).
///
/// ```
/// use sega_estimator::Precision;
///
/// assert_eq!(Precision::Bf16.mantissa_bits(), Some(8));
/// assert_eq!(Precision::Bf16.exponent_bits(), Some(8));
/// assert_eq!(Precision::Int8.weight_bits(), 8);
/// assert!(Precision::Fp32.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Precision {
    /// 2-bit integer.
    Int2,
    /// 4-bit integer.
    Int4,
    /// 8-bit integer.
    Int8,
    /// 16-bit integer.
    Int16,
    /// FP8 in E4M3 layout (1 sign, 4 exponent, 3 fraction).
    Fp8,
    /// IEEE-754 half precision, E5M10.
    Fp16,
    /// bfloat16, E8M7.
    Bf16,
    /// IEEE-754 single precision, E8M23.
    Fp32,
}

/// All precisions in the order the paper sweeps them (Fig. 7 x-axis:
/// integer widths ascending, then FP formats by mantissa width).
pub const ALL_PRECISIONS: [Precision; 8] = [
    Precision::Int2,
    Precision::Int4,
    Precision::Int8,
    Precision::Int16,
    Precision::Fp8,
    Precision::Bf16,
    Precision::Fp16,
    Precision::Fp32,
];

impl Precision {
    /// True for floating-point formats.
    pub const fn is_float(self) -> bool {
        matches!(
            self,
            Precision::Fp8 | Precision::Fp16 | Precision::Bf16 | Precision::Fp32
        )
    }

    /// Total encoded width in bits (storage format).
    pub const fn total_bits(self) -> u32 {
        match self {
            Precision::Int2 => 2,
            Precision::Int4 => 4,
            Precision::Int8 => 8,
            Precision::Int16 => 16,
            Precision::Fp8 => 8,
            Precision::Fp16 => 16,
            Precision::Bf16 => 16,
            Precision::Fp32 => 32,
        }
    }

    /// Exponent field width `BE`, or `None` for integer formats.
    pub const fn exponent_bits(self) -> Option<u32> {
        match self {
            Precision::Fp8 => Some(4),
            Precision::Fp16 => Some(5),
            Precision::Bf16 => Some(8),
            Precision::Fp32 => Some(8),
            _ => None,
        }
    }

    /// Stored fraction width (without the hidden bit), or `None` for integer
    /// formats.
    pub const fn fraction_bits(self) -> Option<u32> {
        match self {
            Precision::Fp8 => Some(3),
            Precision::Fp16 => Some(10),
            Precision::Bf16 => Some(7),
            Precision::Fp32 => Some(23),
            _ => None,
        }
    }

    /// The MAC mantissa width `BM` = fraction bits + hidden bit, or `None`
    /// for integer formats.
    pub const fn mantissa_bits(self) -> Option<u32> {
        match self.fraction_bits() {
            Some(f) => Some(f + 1),
            None => None,
        }
    }

    /// The weight bit-width that occupies SRAM columns: `Bw` for integers,
    /// `BM` for floating point (only the aligned mantissa is stored in the
    /// array; sign and shared exponent live in the periphery).
    pub const fn weight_bits(self) -> u32 {
        match self.mantissa_bits() {
            Some(m) => m,
            None => self.total_bits(),
        }
    }

    /// The input bit-width that is streamed bit-serially: `Bx` for integers
    /// (taken equal to the weight width, as in the paper's symmetric-precision
    /// experiments), `BM` for floating point.
    pub const fn input_bits(self) -> u32 {
        self.weight_bits()
    }

    /// Short display name matching the paper's labels.
    pub const fn name(self) -> &'static str {
        match self {
            Precision::Int2 => "INT2",
            Precision::Int4 => "INT4",
            Precision::Int8 => "INT8",
            Precision::Int16 => "INT16",
            Precision::Fp8 => "FP8",
            Precision::Fp16 => "FP16",
            Precision::Bf16 => "BF16",
            Precision::Fp32 => "FP32",
        }
    }

    /// Parses a paper-style label (case-insensitive), e.g. `"bf16"`.
    pub fn from_name(s: &str) -> Option<Precision> {
        let up = s.to_ascii_uppercase();
        ALL_PRECISIONS.iter().copied().find(|p| p.name() == up)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_widths() {
        assert_eq!(Precision::Int2.weight_bits(), 2);
        assert_eq!(Precision::Int4.weight_bits(), 4);
        assert_eq!(Precision::Int8.weight_bits(), 8);
        assert_eq!(Precision::Int16.weight_bits(), 16);
        for p in [
            Precision::Int2,
            Precision::Int4,
            Precision::Int8,
            Precision::Int16,
        ] {
            assert!(!p.is_float());
            assert_eq!(p.exponent_bits(), None);
            assert_eq!(p.mantissa_bits(), None);
        }
    }

    #[test]
    fn fp_field_layouts() {
        // (format, BE, fraction, BM with hidden bit, total)
        let expect = [
            (Precision::Fp8, 4, 3, 4, 8),
            (Precision::Fp16, 5, 10, 11, 16),
            (Precision::Bf16, 8, 7, 8, 16),
            (Precision::Fp32, 8, 23, 24, 32),
        ];
        for (p, be, fr, bm, total) in expect {
            assert_eq!(p.exponent_bits(), Some(be), "{p} BE");
            assert_eq!(p.fraction_bits(), Some(fr), "{p} fraction");
            assert_eq!(p.mantissa_bits(), Some(bm), "{p} BM");
            assert_eq!(p.total_bits(), total, "{p} total");
            // sign + exponent + fraction == total
            assert_eq!(1 + be + fr, total, "{p} field sum");
        }
    }

    #[test]
    fn bf16_stores_like_int8() {
        // The key architectural claim behind Fig. 6: a BF16 weight occupies
        // the same 8 array bits as an INT8 weight.
        assert_eq!(Precision::Bf16.weight_bits(), Precision::Int8.weight_bits());
    }

    #[test]
    fn name_round_trip() {
        for p in ALL_PRECISIONS {
            assert_eq!(Precision::from_name(p.name()), Some(p));
            assert_eq!(Precision::from_name(&p.name().to_lowercase()), Some(p));
        }
        assert_eq!(Precision::from_name("INT3"), None);
    }
}
