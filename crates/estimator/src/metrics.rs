use crate::ComponentBreakdown;
use sega_cells::Cost;

/// Operating conditions under which a macro estimate is evaluated.
///
/// The paper reports efficiency "at 0.9 V supply voltage and 10% sparsity"
/// (§IV, Fig. 8). `activity` is the baseline switching-activity factor of
/// the datapath — the fraction of gate capacitance that toggles in a typical
/// cycle — which the paper folds into its (unpublished) energy normalization
/// and we expose explicitly; see `DESIGN.md` §3 for its calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingConditions {
    /// Supply voltage in volts.
    pub voltage: f64,
    /// Fraction of input operands that are zero (skipped switching).
    pub input_sparsity: f64,
    /// Baseline datapath switching-activity factor.
    pub activity: f64,
}

impl OperatingConditions {
    /// The paper's reporting point: 0.9 V, 10% input sparsity, and the
    /// switching activity calibrated so the Fig. 8 design A/B anchors land
    /// on the paper's (TOPS/W, TOPS/mm²) values (see `DESIGN.md` §3).
    pub fn paper_default() -> Self {
        OperatingConditions {
            voltage: 0.9,
            input_sparsity: 0.10,
            activity: 0.10,
        }
    }

    /// Dense worst-case switching (no sparsity savings).
    pub fn dense() -> Self {
        OperatingConditions {
            input_sparsity: 0.0,
            ..Self::paper_default()
        }
    }

    /// Effective dynamic-energy multiplier applied to the unit energy model.
    pub fn energy_factor(&self) -> f64 {
        self.activity * (1.0 - self.input_sparsity)
    }
}

impl Default for OperatingConditions {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The complete performance estimate of one DCIM macro design point.
///
/// Produced by [`estimate`](crate::estimate); consumed by the design space
/// explorer (as objectives) and by the reports (as figures of merit).
#[derive(Debug, Clone, PartialEq)]
pub struct MacroEstimate {
    /// Aggregate cost in NOR-gate units (area / critical-path delay /
    /// energy-per-cycle before the activity factor).
    pub unit: Cost,
    /// Macro area in mm².
    pub area_mm2: f64,
    /// Critical pipeline-stage delay in ns (the clock period).
    pub delay_ns: f64,
    /// Dynamic energy per clock cycle in nJ (activity-scaled).
    pub energy_per_cycle_nj: f64,
    /// Dynamic energy per full bit-serial pass in nJ.
    pub energy_per_pass_nj: f64,
    /// Cycles per pass (`⌈Bx/k⌉` or `⌈BM/k⌉`).
    pub cycles_per_pass: u32,
    /// Full-precision MACs completed per pass.
    pub macs_per_pass: u64,
    /// Peak throughput in TOPS (1 MAC = 2 ops).
    pub tops: f64,
    /// Per-component cost breakdown (NOR-gate units).
    pub breakdown: ComponentBreakdown,
}

impl MacroEstimate {
    /// Peak clock frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        1.0 / self.delay_ns
    }

    /// Average power in W at peak frequency.
    pub fn power_w(&self) -> f64 {
        // nJ per cycle × GHz cycles/s = W.
        self.energy_per_cycle_nj * self.freq_ghz()
    }

    /// Energy efficiency in TOPS/W — the paper's Fig. 8 y-axis.
    pub fn tops_per_w(&self) -> f64 {
        self.tops / self.power_w()
    }

    /// Area efficiency in TOPS/mm² — the paper's Fig. 8 x-axis.
    pub fn tops_per_mm2(&self) -> f64 {
        self.tops / self.area_mm2
    }

    /// The four optimization objectives of Equations 2/3, all minimized:
    /// `[area, delay, energy, −throughput]`.
    pub fn objectives(&self) -> [f64; 4] {
        [
            self.area_mm2,
            self.delay_ns,
            self.energy_per_pass_nj,
            -self.tops,
        ]
    }
}

impl std::fmt::Display for MacroEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} mm², {:.3} ns, {:.4} nJ/pass, {:.3} TOPS, {:.1} TOPS/W, {:.2} TOPS/mm²",
            self.area_mm2,
            self.delay_ns,
            self.energy_per_pass_nj,
            self.tops,
            self.tops_per_w(),
            self.tops_per_mm2()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_factor_combines_sparsity_and_activity() {
        let c = OperatingConditions {
            voltage: 0.9,
            input_sparsity: 0.10,
            activity: 0.15,
        };
        assert!((c.energy_factor() - 0.135).abs() < 1e-12);
        // Removing sparsity at fixed activity raises the energy factor.
        assert!(
            OperatingConditions::dense().energy_factor()
                > OperatingConditions::paper_default().energy_factor()
        );
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let est = MacroEstimate {
            unit: Cost::ZERO,
            area_mm2: 0.5,
            delay_ns: 2.0,
            energy_per_cycle_nj: 0.2,
            energy_per_pass_nj: 0.8,
            cycles_per_pass: 4,
            macs_per_pass: 8192,
            tops: 2.0,
            breakdown: ComponentBreakdown::default(),
        };
        assert!((est.freq_ghz() - 0.5).abs() < 1e-12);
        assert!((est.power_w() - 0.1).abs() < 1e-12);
        assert!((est.tops_per_w() - 20.0).abs() < 1e-9);
        assert!((est.tops_per_mm2() - 4.0).abs() < 1e-9);
        let obj = est.objectives();
        assert_eq!(obj[0], 0.5);
        assert_eq!(obj[3], -2.0);
    }
}
