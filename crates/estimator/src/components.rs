//! Per-component DCIM cost models — the paper's Table IV.
//!
//! Table IV renders as an image in the paper source, so each formula here is
//! reconstructed from the prose of §III-B.1, which fully specifies every
//! component's inventory (how many registers, shifters, adders, comparators)
//! and every bit-width. Each function documents its reconstruction.
//!
//! All costs are in NOR-gate units ([`Cost`]); widths follow the paper's
//! symbol names (`H`, `k`, `Bx`, `Bw`, `BE`, `BM`).

use sega_cells::{ceil_log2, modules, Cost};

/// Adder tree summing `h` inputs of `k` bits each (paper: "The Adder Tree,
/// consisting of tree-structured adders, is used to sum the outputs of a
/// column of compute cells").
///
/// The tree is reduced pairwise: level `i` (1-based) contains `⌈h/2^i⌉`
/// ripple adders of width `k + i − 1` (operand widths grow by one bit per
/// level). Area and energy sum over all adders; delay sums the per-level
/// ripple delays along the critical path. Non-power-of-two `h` is handled by
/// carrying the odd element up a level unchanged.
///
/// ```
/// use sega_estimator::components::adder_tree;
///
/// // 2 inputs of 4 bits: exactly one 4-bit adder.
/// let t = adder_tree(2, 4);
/// let a = sega_cells::modules::adder(4);
/// assert_eq!(t, a);
/// ```
pub fn adder_tree(h: u32, k: u32) -> Cost {
    if h <= 1 || k == 0 {
        return Cost::ZERO;
    }
    let mut cost = Cost::ZERO;
    let mut remaining = h;
    let mut width = k;
    while remaining > 1 {
        let pairs = remaining / 2;
        let level = modules::adder(width);
        // `pairs` adders operate in parallel; the level as a whole sits in
        // series with the previous level.
        cost = cost.then(Cost::new(
            pairs as f64 * level.area,
            level.delay,
            pairs as f64 * level.energy,
        ));
        remaining = pairs + (remaining % 2);
        width += 1;
    }
    cost
}

/// Shift accumulator collecting partial sums across the `⌈Bx/k⌉` bit-serial
/// cycles (paper: "it requires `(Bx + log2 H)` registers, one
/// `(Bx + log2 H)`-bit shifter, and one `(Bx + log2 H)`-bit adder").
///
/// The register bank contributes area/energy only; the combinational path is
/// shifter → adder.
pub fn shift_accumulator(bx: u32, h: u32) -> Cost {
    let w = accumulator_width(bx, h);
    modules::register(w)
        .then(modules::shifter(w))
        .then(modules::adder(w))
}

/// Output width of the shift accumulator: `Bx + log2(H)`.
pub fn accumulator_width(bx: u32, h: u32) -> u32 {
    bx + ceil_log2(h as u64)
}

/// Result fusion unit combining the `Bw` single-bit weight columns into a
/// full-precision result (paper: "perform a weighted summation of the
/// results from `Bw` columns, and the bit-width of each result is
/// `(Bx + log2 H)` bits").
///
/// Reconstruction: the weighted summation is a `Bw`-input adder tree whose
/// operands are the accumulator outputs pre-shifted by their (fixed,
/// hard-wired) bit positions, so the adders operate at the full fused width
/// `Bx + log2(H) + Bw`; `Bw − 1` adders in a `log2(Bw)`-deep tree.
pub fn result_fusion(bw: u32, bx: u32, h: u32) -> Cost {
    if bw <= 1 {
        return Cost::ZERO;
    }
    let w = fused_width(bw, bx, h);
    let add = modules::adder(w);
    Cost::new(
        (bw - 1) as f64 * add.area,
        ceil_log2(bw as u64) as f64 * add.delay,
        (bw - 1) as f64 * add.energy,
    )
}

/// Width of the fused full-precision result: `Bx + log2(H) + Bw`.
pub fn fused_width(bw: u32, bx: u32, h: u32) -> u32 {
    accumulator_width(bx, h) + bw
}

/// FP pre-alignment front end for `h` inputs with `be`-bit exponents and
/// `bm`-bit mantissas (paper: "(1) A set of comparators is used to find the
/// maximum exponent XEmax. (2) The subtractor is used to calculate the
/// offset between each exponent and XEmax, and the shifter is used to shift
/// the input's mantissa based on the offset").
///
/// Inventory: `h − 1` comparators of `be` bits in a `log2(h)`-deep max tree,
/// then `h` parallel `be`-bit subtractors (modeled as adders, as the paper
/// models comparators), then `h` parallel `bm`-bit barrel shifters.
pub fn pre_alignment(h: u32, be: u32, bm: u32) -> Cost {
    if h == 0 {
        return Cost::ZERO;
    }
    let comp = modules::comparator(be);
    let max_tree = Cost::new(
        (h.saturating_sub(1)) as f64 * comp.area,
        ceil_log2(h as u64) as f64 * comp.delay,
        (h.saturating_sub(1)) as f64 * comp.energy,
    );
    let subtractors = modules::adder(be) * h as f64;
    let shifters = modules::shifter(bm) * h as f64;
    max_tree.then(subtractors).then(shifters)
}

/// INT-to-FP converter normalizing the `br`-bit integer array result into a
/// floating-point output with a `be`-bit exponent (paper: "It shifts the
/// long bit-width final result and calculates the exponent and sign bits").
///
/// Reconstruction: a leading-one detector over `br` bits (an OR-gate
/// reduction tree, `br` gates / `log2(br)` levels), a `br`-bit normalizing
/// barrel shifter, and a `(be + 1)`-bit exponent adder.
pub fn int_to_fp_converter(br: u32, be: u32) -> Cost {
    if br == 0 {
        return Cost::ZERO;
    }
    let or = sega_cells::StandardCell::Or.cost();
    let lzd = Cost::new(
        br as f64 * or.area,
        ceil_log2(br as u64) as f64 * or.delay,
        br as f64 * or.energy,
    );
    lzd.then(modules::shifter(br)).then(modules::adder(be + 1))
}

/// Input buffer holding `h` serial inputs of `bx` bits and emitting
/// `h·k` bits per cycle (paper Fig. 3: "The Input Buffer is used to buffer
/// the aligned mantissa and send `(H·k)`-bits per cycle").
///
/// Inventory: an `h·bx`-bit register file plus, per emitted bit, a
/// `⌈bx/k⌉`:1 selector that walks the stored chunks cycle by cycle.
pub fn input_buffer(h: u32, bx: u32, k: u32) -> Cost {
    if h == 0 || bx == 0 || k == 0 {
        return Cost::ZERO;
    }
    let chunks = bx.div_ceil(k);
    let storage = modules::register(h * bx);
    let selects = modules::selector(chunks) * (h as f64 * k as f64);
    storage.then(selects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_cells::modules::{adder, comparator, register, shifter};

    const EPS: f64 = 1e-9;

    #[test]
    fn adder_tree_two_inputs_is_one_adder() {
        assert_eq!(adder_tree(2, 4), adder(4));
    }

    #[test]
    fn adder_tree_power_of_two_structure() {
        // H=8, k=2: levels of 4x add(2), 2x add(3), 1x add(4).
        let t = adder_tree(8, 2);
        let expect_area = 4.0 * adder(2).area + 2.0 * adder(3).area + adder(4).area;
        let expect_delay = adder(2).delay + adder(3).delay + adder(4).delay;
        let expect_energy = 4.0 * adder(2).energy + 2.0 * adder(3).energy + adder(4).energy;
        assert!((t.area - expect_area).abs() < EPS);
        assert!((t.delay - expect_delay).abs() < EPS);
        assert!((t.energy - expect_energy).abs() < EPS);
    }

    #[test]
    fn adder_tree_uses_h_minus_one_adders() {
        // Count adders implicitly: for fixed width the area would be
        // (h-1)*adder(w). With growing widths we just check the count via
        // a width-1... instead verify for several h that area is between
        // (h-1)*adder(k) and (h-1)*adder(k+log2 h).
        for h in [2u32, 3, 5, 8, 17, 64, 100] {
            let k = 4;
            let t = adder_tree(h, k);
            let lo = (h - 1) as f64 * adder(k).area;
            let hi = (h - 1) as f64 * adder(k + ceil_log2(h as u64)).area;
            assert!(t.area >= lo - EPS && t.area <= hi + EPS, "h={h}");
        }
    }

    #[test]
    fn adder_tree_degenerate() {
        assert_eq!(adder_tree(1, 8), Cost::ZERO);
        assert_eq!(adder_tree(0, 8), Cost::ZERO);
        assert_eq!(adder_tree(8, 0), Cost::ZERO);
    }

    #[test]
    fn adder_tree_odd_h() {
        // H=3: one add(k) for the first pair, then one add(k+1) folding in
        // the carried element.
        let t = adder_tree(3, 4);
        let expect = adder(4).then(adder(5));
        assert!((t.area - expect.area).abs() < EPS);
        assert!((t.delay - expect.delay).abs() < EPS);
    }

    #[test]
    fn shift_accumulator_matches_prose() {
        // Bx=8, H=128 -> width 15: 15 registers + 15-bit shifter + adder.
        let c = shift_accumulator(8, 128);
        let w = 15;
        assert_eq!(accumulator_width(8, 128), w);
        let expect = register(w).then(shifter(w)).then(adder(w));
        assert_eq!(c, expect);
        // Registers must not contribute combinational delay.
        assert!((c.delay - (shifter(w).delay + adder(w).delay)).abs() < EPS);
    }

    #[test]
    fn result_fusion_adder_count() {
        let bw = 8;
        let (bx, h) = (8, 128);
        let f = result_fusion(bw, bx, h);
        let w = fused_width(bw, bx, h);
        assert_eq!(w, 8 + 7 + 8);
        assert!((f.area - 7.0 * adder(w).area).abs() < EPS);
        assert!((f.delay - 3.0 * adder(w).delay).abs() < EPS);
    }

    #[test]
    fn result_fusion_single_bit_weights_need_no_fusion() {
        assert_eq!(result_fusion(1, 8, 128), Cost::ZERO);
    }

    #[test]
    fn pre_alignment_matches_prose() {
        let (h, be, bm) = (128, 8, 8);
        let c = pre_alignment(h, be, bm);
        let expect_area =
            127.0 * comparator(be).area + 128.0 * adder(be).area + 128.0 * shifter(bm).area;
        assert!((c.area - expect_area).abs() < EPS);
        let expect_delay = 7.0 * comparator(be).delay + adder(be).delay + shifter(bm).delay;
        assert!((c.delay - expect_delay).abs() < EPS);
    }

    #[test]
    fn fig6_pre_alignment_area_is_small() {
        // Paper: the pre-aligned circuits of the BF16 macro occupy only
        // ~0.006 mm². In gate units with the calibrated 0.18 µm²/gate this
        // is ~33k gates; the model should land in that range.
        let c = pre_alignment(128, 8, 8);
        assert!(c.area > 15_000.0 && c.area < 45_000.0, "area={}", c.area);
    }

    #[test]
    fn int_to_fp_converter_scales_with_result_width() {
        let small = int_to_fp_converter(16, 8);
        let large = int_to_fp_converter(32, 8);
        assert!(large.area > small.area);
        assert!(large.delay > small.delay);
        assert_eq!(int_to_fp_converter(0, 8), Cost::ZERO);
    }

    #[test]
    fn input_buffer_holds_all_bits() {
        let c = input_buffer(128, 8, 4);
        // At least the register file for 1024 bits.
        assert!(c.area >= register(1024).area);
        // k == bx needs no chunk selection: pure registers.
        let c2 = input_buffer(128, 8, 8);
        assert_eq!(c2, register(1024));
    }

    #[test]
    fn all_components_valid_over_sweep() {
        for h in [1u32, 2, 16, 128, 2048] {
            for b in [1u32, 2, 8, 16, 24] {
                assert!(adder_tree(h, b).is_valid());
                assert!(shift_accumulator(b, h).is_valid());
                assert!(result_fusion(b, b, h).is_valid());
                assert!(pre_alignment(h, 8, b).is_valid());
                assert!(int_to_fp_converter(2 * b + 11, 8).is_valid());
                assert!(input_buffer(h, b, 1).is_valid());
            }
        }
    }

    use sega_cells::ceil_log2;
}
