//! Cohort-batched estimation: the design space explorer's estimator hot
//! loop in structure-of-arrays form.
//!
//! [`EstimationContext::estimate_cohort`] evaluates a whole cohort of
//! [`DcimDesign`]s in two phases:
//!
//! 1. **Lane build** — the cohort is transposed into SoA parameter
//!    lanes (`unit_area`, `unit_delay`, `unit_energy`, `cycles`,
//!    `macs`), integer and floating-point designs in separate
//!    monomorphic loops. This phase runs the exact per-design component
//!    models (`breakdown_int` / `breakdown_fp` / `stage_delay`) the
//!    scalar estimator uses.
//! 2. **Vector finish** — the physical-realization tail
//!    ([`crate::macro_model::finish_lane`]) is applied across the
//!    lanes in blocked loops: an `std::arch` AVX2 kernel (4 lanes per
//!    iteration) behind runtime feature detection, with a scalar block
//!    loop as the always-available fallback. Per-technology constants
//!    (gate area/delay/energy, the conditions' energy factor) are
//!    hoisted into broadcast registers once per cohort.
//!
//! **Bit-identity guarantee**: every lane undergoes the same IEEE-754
//! binary operations in the same order as one
//! [`EstimationContext::estimate`] call, so the produced objective rows
//! are bit-identical to the per-design path — on the scalar block loop,
//! on the AVX2 kernel, and regardless of cohort size or composition
//! (property-tested in `tests/cohort_properties.rs`).
//!
//! Set `SEGA_FORCE_SCALAR=1` (or [`CohortScratch::set_force_scalar`])
//! to pin the scalar block loop; [`EstimatorStats`] reports which path
//! ran and whether the scratch had to grow.

use crate::macro_model::{
    breakdown_fp, breakdown_int, finish_lane, stage_delay, EstimationContext,
};
use crate::params::DcimDesign;

/// Counters of the cohort estimator: how many designs were estimated
/// and through which finish path.
///
/// All counters are **deterministic** for a given build, host and
/// input, which makes the vector-path win and the zero-allocation
/// steady state CI-guardable on a 1-CPU container where wall-clock is
/// too noisy to assert on.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorStats {
    /// Designs estimated (cohort sizes summed).
    pub designs: u64,
    /// Lanes finished by the AVX2 vector kernel.
    pub batched: u64,
    /// Lanes finished by the scalar block loop (non-x86_64 hosts,
    /// forced-scalar mode, or the `cohort % 4` vector remainder).
    pub scalar_fallbacks: u64,
    /// Scratch buffers that had to grow (0 once the scratch is warm).
    pub allocations: u64,
}

impl EstimatorStats {
    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: EstimatorStats) {
        self.designs += other.designs;
        self.batched += other.batched;
        self.scalar_fallbacks += other.scalar_fallbacks;
        self.allocations += other.allocations;
    }

    /// The counter delta accumulated since an earlier snapshot
    /// (saturating, so a reset between snapshots reads as zero).
    pub fn since(self, earlier: EstimatorStats) -> EstimatorStats {
        EstimatorStats {
            designs: self.designs.saturating_sub(earlier.designs),
            batched: self.batched.saturating_sub(earlier.batched),
            scalar_fallbacks: self
                .scalar_fallbacks
                .saturating_sub(earlier.scalar_fallbacks),
            allocations: self.allocations.saturating_sub(earlier.allocations),
        }
    }
}

/// Reusable working memory for [`EstimationContext::estimate_cohort`]:
/// the SoA lanes, the Int/Fp slot lists and the accumulated
/// [`EstimatorStats`]. One scratch serves any number of cohorts; a GA
/// worker reuses it every generation so steady-state estimation
/// performs zero allocations (asserted via the stats counters).
#[derive(Debug)]
pub struct CohortScratch {
    unit_area: Vec<f64>,
    unit_delay: Vec<f64>,
    unit_energy: Vec<f64>,
    cycles: Vec<f64>,
    macs: Vec<f64>,
    int_slots: Vec<usize>,
    fp_slots: Vec<usize>,
    force_scalar: bool,
    stats: EstimatorStats,
}

impl Default for CohortScratch {
    fn default() -> Self {
        Self {
            unit_area: Vec::new(),
            unit_delay: Vec::new(),
            unit_energy: Vec::new(),
            cycles: Vec::new(),
            macs: Vec::new(),
            int_slots: Vec::new(),
            fp_slots: Vec::new(),
            force_scalar: force_scalar_env(),
            stats: EstimatorStats::default(),
        }
    }
}

/// The `SEGA_FORCE_SCALAR` knob: any non-empty value other than `"0"`
/// disables the vector kernel process-wide (cached on first read).
fn force_scalar_env() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE
        .get_or_init(|| std::env::var("SEGA_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Runtime AVX2 detection, cached process-wide.
#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

impl CohortScratch {
    /// The counters accumulated by every cohort that used this scratch
    /// since construction (or the last [`CohortScratch::reset_stats`]).
    pub fn stats(&self) -> EstimatorStats {
        self.stats
    }

    /// Zeroes the accumulated counters.
    pub fn reset_stats(&mut self) {
        self.stats = EstimatorStats::default();
    }

    /// Overrides the `SEGA_FORCE_SCALAR` environment default for
    /// cohorts using this scratch: `true` pins the scalar block loop,
    /// `false` re-enables the AVX2 kernel (where detected).
    pub fn set_force_scalar(&mut self, force: bool) {
        self.force_scalar = force;
    }

    /// Counts the buffers that must grow for a cohort of `n`, then
    /// sizes the lanes.
    fn prepare(&mut self, n: usize, out: &mut Vec<[f64; 4]>) {
        let growing = [
            self.unit_area.capacity(),
            self.unit_delay.capacity(),
            self.unit_energy.capacity(),
            self.cycles.capacity(),
            self.macs.capacity(),
            self.int_slots.capacity(),
            self.fp_slots.capacity(),
            out.capacity(),
        ]
        .into_iter()
        .filter(|&cap| cap < n)
        .count();
        self.stats.allocations += growing as u64;
        for lane in [
            &mut self.unit_area,
            &mut self.unit_delay,
            &mut self.unit_energy,
            &mut self.cycles,
            &mut self.macs,
        ] {
            lane.clear();
            lane.resize(n, 0.0);
        }
        // Reserve the slot lists to the full cohort upfront so the
        // `capacity < n` accounting above stays exact for them too.
        self.int_slots.clear();
        self.int_slots.reserve(n);
        self.fp_slots.clear();
        self.fp_slots.reserve(n);
        out.clear();
        out.resize(n, [0.0; 4]);
    }
}

impl EstimationContext {
    /// Estimates a whole cohort at once: `out` is cleared and refilled
    /// with one objective row `[area_mm2, delay_ns, energy_per_pass_nj,
    /// -tops]` per design, in cohort order — each row bit-identical to
    /// `self.estimate(&designs[j]).objectives()`.
    ///
    /// See the module docs for the SoA/vector structure. A warm
    /// `scratch` makes the call allocation-free.
    pub fn estimate_cohort(
        &self,
        designs: &[DcimDesign],
        out: &mut Vec<[f64; 4]>,
        scratch: &mut CohortScratch,
    ) {
        let n = designs.len();
        scratch.stats.designs += n as u64;
        scratch.prepare(n, out);
        // Phase 1: lane build, Int and Fp slots in separate monomorphic
        // loops over the shared component models.
        for (j, design) in designs.iter().enumerate() {
            match design {
                DcimDesign::Int(_) => scratch.int_slots.push(j),
                DcimDesign::Fp(_) => scratch.fp_slots.push(j),
            }
        }
        for s in 0..scratch.int_slots.len() {
            let j = scratch.int_slots[s];
            let DcimDesign::Int(p) = &designs[j] else {
                unreachable!("int slot holds an Int design");
            };
            let b = breakdown_int(p);
            scratch.unit_area[j] = b.total_area();
            scratch.unit_delay[j] = stage_delay(&b);
            scratch.unit_energy[j] = b.total_energy();
            scratch.cycles[j] = f64::from(p.cycles_per_pass());
            scratch.macs[j] = p.macs_per_pass() as f64;
        }
        for s in 0..scratch.fp_slots.len() {
            let j = scratch.fp_slots[s];
            let DcimDesign::Fp(p) = &designs[j] else {
                unreachable!("fp slot holds an Fp design");
            };
            let b = breakdown_fp(p);
            scratch.unit_area[j] = b.total_area();
            scratch.unit_delay[j] = stage_delay(&b);
            scratch.unit_energy[j] = b.total_energy();
            scratch.cycles[j] = f64::from(p.cycles_per_pass());
            scratch.macs[j] = p.macs_per_pass() as f64;
        }
        // Phase 2: blocked finish across the lanes, per-technology
        // constants hoisted once.
        let ga = self.tech.gate_area_um2;
        let gd = self.tech.gate_delay_ns;
        let ge = self.tech.gate_energy_fj;
        let ef = self.energy_factor;
        let mut start = 0usize;
        #[cfg(target_arch = "x86_64")]
        if !scratch.force_scalar && avx2_available() {
            let vectorized = n - n % 4;
            // SAFETY: AVX2 availability was checked at runtime, and the
            // lanes were all sized to `n ≥ vectorized` in `prepare`.
            #[allow(unsafe_code)]
            unsafe {
                avx2::finish_lanes(
                    &scratch.unit_area[..vectorized],
                    &scratch.unit_delay[..vectorized],
                    &scratch.unit_energy[..vectorized],
                    &scratch.cycles[..vectorized],
                    &scratch.macs[..vectorized],
                    &mut out[..vectorized],
                    ga,
                    gd,
                    ge,
                    ef,
                );
            }
            scratch.stats.batched += vectorized as u64;
            start = vectorized;
        }
        scratch.stats.scalar_fallbacks += (n - start) as u64;
        for (j, row) in out.iter_mut().enumerate().take(n).skip(start) {
            let lane = finish_lane(
                scratch.unit_area[j],
                scratch.unit_delay[j],
                scratch.unit_energy[j],
                scratch.cycles[j],
                scratch.macs[j],
                ga,
                gd,
                ge,
                ef,
            );
            *row = [
                lane.area_mm2,
                lane.delay_ns,
                lane.energy_per_pass_nj,
                -lane.tops,
            ];
        }
    }
}

/// The AVX2 finish kernel: [`finish_lane`]'s operation sequence on four
/// f64 lanes per iteration, every step one IEEE-754 packed op on the
/// same operands as the scalar loop — hence bit-identical results.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256d, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        _mm256_xor_pd,
    };

    /// Finishes `out.len()` lanes (a multiple of 4) from the SoA inputs.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support at runtime.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn finish_lanes(
        unit_area: &[f64],
        unit_delay: &[f64],
        unit_energy: &[f64],
        cycles: &[f64],
        macs: &[f64],
        out: &mut [[f64; 4]],
        gate_area_um2: f64,
        gate_delay_ns: f64,
        gate_energy_fj: f64,
        energy_factor: f64,
    ) {
        let n = out.len();
        assert_eq!(n % 4, 0, "vector span must be whole blocks");
        assert!(
            unit_area.len() == n
                && unit_delay.len() == n
                && unit_energy.len() == n
                && cycles.len() == n
                && macs.len() == n,
            "lane length mismatch"
        );
        let ga = _mm256_set1_pd(gate_area_um2);
        let gd = _mm256_set1_pd(gate_delay_ns);
        let ge = _mm256_set1_pd(gate_energy_fj);
        let ef = _mm256_set1_pd(energy_factor);
        let micro = _mm256_set1_pd(1e-6);
        let one = _mm256_set1_pd(1.0);
        let two = _mm256_set1_pd(2.0);
        let kilo = _mm256_set1_pd(1e3);
        let sign = _mm256_set1_pd(-0.0);
        let mut j = 0usize;
        while j < n {
            let ua = _mm256_loadu_pd(unit_area.as_ptr().add(j));
            let ud = _mm256_loadu_pd(unit_delay.as_ptr().add(j));
            let ue = _mm256_loadu_pd(unit_energy.as_ptr().add(j));
            let cy = _mm256_loadu_pd(cycles.as_ptr().add(j));
            let mc = _mm256_loadu_pd(macs.as_ptr().add(j));
            // finish_lane, packed: same ops, same order.
            let area_um2 = _mm256_mul_pd(ua, ga);
            let delay_ns = _mm256_mul_pd(ud, gd);
            let energy_fj = _mm256_mul_pd(ue, ge);
            let epc = _mm256_mul_pd(_mm256_mul_pd(energy_fj, micro), ef);
            let freq = _mm256_div_pd(one, delay_ns);
            let ops = _mm256_mul_pd(two, mc);
            let tops = _mm256_div_pd(_mm256_div_pd(_mm256_mul_pd(ops, freq), cy), kilo);
            let area_mm2 = _mm256_mul_pd(area_um2, micro);
            let epp = _mm256_mul_pd(epc, cy);
            let neg_tops = _mm256_xor_pd(tops, sign);
            // Transpose the four result vectors back into AoS rows.
            let (a, d, e, t) = (
                store4(area_mm2),
                store4(delay_ns),
                store4(epp),
                store4(neg_tops),
            );
            for lane in 0..4 {
                out[j + lane] = [a[lane], d[lane], e[lane], t[lane]];
            }
            j += 4;
        }
    }

    #[inline]
    unsafe fn store4(v: __m256d) -> [f64; 4] {
        let mut a = [0.0f64; 4];
        _mm256_storeu_pd(a.as_mut_ptr(), v);
        a
    }
}
