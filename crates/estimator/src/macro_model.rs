//! Whole-macro cost models — the paper's Tables V (integer) and VI
//! (floating point).
//!
//! The macro is assembled from the Table IV components exactly as §III-A
//! describes the architecture:
//!
//! ```text
//!              ┌──────────────────────────────── N columns ───┐
//! inputs ──► [FP pre-align] ──► [input buffer] ──► H×(sel L:1 + NOR×k)
//!  (FP only)                                        │ per column
//!                                                [adder tree]
//!                                                   │
//!                                            [shift accumulator]   (pipeline cut)
//!                                                   │
//!                                       [result fusion ×(N/Bw)]    (pipeline cut)
//!                                                   │
//!                                       [INT-to-FP convert]        (FP only)
//! ```
//!
//! Delay model: the paper notes "Since the Shift Accumulator includes
//! registers that implement pipelining, the delay is determined by taking
//! the maximum of two parts". We extend the same register-bounded reasoning
//! to every stage that ends in registers: the clock period is the maximum
//! over (pre-alignment), (selection + multiply + adder tree),
//! (shift accumulation), (fusion + conversion).

use crate::components;
use crate::metrics::{MacroEstimate, OperatingConditions};
use crate::params::{DcimDesign, FpParams, IntParams};
use sega_cells::{modules, Cost, Technology};

/// Per-component cost breakdown of a macro estimate, in NOR-gate units.
///
/// Components that do not exist in a given architecture (e.g. pre-alignment
/// in the integer macro) are [`Cost::ZERO`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ComponentBreakdown {
    /// SRAM array (`N·H·L` bit cells).
    pub sram: Cost,
    /// Compute units: `N·H` × (`L`:1 selector + 1×k NOR multiplier).
    pub compute_units: Cost,
    /// `N` adder trees.
    pub adder_trees: Cost,
    /// `N` shift accumulators.
    pub shift_accumulators: Cost,
    /// `N/Bw` result fusion units.
    pub result_fusion: Cost,
    /// Input buffer.
    pub input_buffer: Cost,
    /// FP pre-alignment front end (FP only).
    pub pre_alignment: Cost,
    /// INT-to-FP converters (FP only).
    pub converters: Cost,
}

impl ComponentBreakdown {
    /// Total area/energy across all components (delay is meaningless in the
    /// sum; use the stage model instead).
    pub fn total_area(&self) -> f64 {
        self.iter().map(|(_, c)| c.area).sum()
    }

    /// Total per-cycle switching energy across all components (unit model,
    /// before the activity factor).
    pub fn total_energy(&self) -> f64 {
        self.iter().map(|(_, c)| c.energy).sum()
    }

    /// Iterates `(component name, cost)` pairs in datapath order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Cost)> {
        [
            ("pre_alignment", self.pre_alignment),
            ("input_buffer", self.input_buffer),
            ("sram", self.sram),
            ("compute_units", self.compute_units),
            ("adder_trees", self.adder_trees),
            ("shift_accumulators", self.shift_accumulators),
            ("result_fusion", self.result_fusion),
            ("converters", self.converters),
        ]
        .into_iter()
    }
}

/// Estimates area, delay, power and throughput for a DCIM design point under
/// a [`Technology`] and [`OperatingConditions`].
///
/// This is the objective function of the design space explorer and the
/// ground truth the netlist generator is audited against.
///
/// ```
/// use sega_estimator::{estimate, DcimDesign, OperatingConditions, Precision};
/// use sega_cells::Technology;
///
/// let d = DcimDesign::for_precision(Precision::Int8, 32, 128, 16, 4)?;
/// let est = estimate(&d, &Technology::tsmc28(), &OperatingConditions::paper_default());
/// assert!(est.tops > 0.0);
/// # Ok::<(), sega_estimator::ParamError>(())
/// ```
pub fn estimate(
    design: &DcimDesign,
    tech: &Technology,
    conditions: &OperatingConditions,
) -> MacroEstimate {
    // One-shot context: voltage realization and the energy factor are
    // derived in exactly one place, so this path cannot drift from
    // [`EstimationContext::estimate`] (bit-identity is doc-tested there).
    EstimationContext::new(tech, conditions).estimate(design)
}

fn off_nominal(tech: &Technology, conditions: &OperatingConditions) -> bool {
    (conditions.voltage - tech.nominal_voltage).abs() > 1e-9
}

/// The shared inner estimator: `tech` is already voltage-realized and
/// `energy_factor` already folds sparsity × activity.
fn estimate_realized(design: &DcimDesign, tech: &Technology, energy_factor: f64) -> MacroEstimate {
    match design {
        DcimDesign::Int(p) => estimate_int(p, tech, energy_factor),
        DcimDesign::Fp(p) => estimate_fp(p, tech, energy_factor),
    }
}

/// Precomputed per-exploration estimation state: the voltage-realized
/// [`Technology`] and the conditions-derived energy factor, hoisted out
/// of the per-design hot loop.
///
/// [`estimate`] re-derives both on every call, which is fine for a
/// handful of estimates but wasteful on the design space explorer's
/// innermost loop (a `Technology` clone allocates its name `String`, and
/// derating reformats it). Build the context **once per exploration /
/// sweep point** and call [`EstimationContext::estimate`] per design —
/// the results are bit-identical to the free function.
///
/// ```
/// use sega_estimator::{estimate, DcimDesign, EstimationContext, OperatingConditions, Precision};
/// use sega_cells::Technology;
///
/// let tech = Technology::tsmc28();
/// let cond = OperatingConditions::paper_default();
/// let ctx = EstimationContext::new(&tech, &cond);
/// let d = DcimDesign::for_precision(Precision::Int8, 32, 128, 16, 4)?;
/// assert_eq!(ctx.estimate(&d), estimate(&d, &tech, &cond));
/// # Ok::<(), sega_estimator::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct EstimationContext {
    pub(crate) tech: Technology,
    conditions: OperatingConditions,
    pub(crate) energy_factor: f64,
}

impl EstimationContext {
    /// Realizes `tech` at the conditions' supply voltage (once) and
    /// precomputes the energy factor.
    pub fn new(tech: &Technology, conditions: &OperatingConditions) -> EstimationContext {
        let tech = if off_nominal(tech, conditions) {
            tech.at_voltage(conditions.voltage)
        } else {
            tech.clone()
        };
        EstimationContext {
            tech,
            conditions: *conditions,
            energy_factor: conditions.energy_factor(),
        }
    }

    /// The voltage-realized technology estimates run under.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The operating conditions the context was built for.
    pub fn conditions(&self) -> &OperatingConditions {
        &self.conditions
    }

    /// Estimates one design point — bit-identical to
    /// [`estimate`]`(design, tech, conditions)` with the context's
    /// inputs, without any per-call `Technology` work.
    pub fn estimate(&self, design: &DcimDesign) -> MacroEstimate {
        estimate_realized(design, &self.tech, self.energy_factor)
    }
}

/// Builds the component breakdown shared by both architectures (the integer
/// mantissa array): SRAM, compute units, adder trees, accumulators, fusion,
/// input buffer. `bw`/`bx` are the stored/streamed widths (`Bw`/`Bx` for the
/// INT macro, `BM`/`BM` for the FP macro).
fn array_breakdown(n: u32, h: u32, l: u32, k: u32, bw: u32, bx: u32) -> ComponentBreakdown {
    let units = n as f64 * h as f64;
    ComponentBreakdown {
        sram: modules::sram_bits(n as u64 * h as u64 * l as u64),
        compute_units: (modules::selector(l).then(modules::multiplier(k))) * units,
        adder_trees: components::adder_tree(h, k) * n as f64,
        shift_accumulators: components::shift_accumulator(bx, h) * n as f64,
        result_fusion: components::result_fusion(bw, bx, h) * (n / bw) as f64,
        input_buffer: components::input_buffer(h, bx, k),
        pre_alignment: Cost::ZERO,
        converters: Cost::ZERO,
    }
}

/// Clock period: the slowest pipeline stage.
pub(crate) fn stage_delay(b: &ComponentBreakdown) -> f64 {
    let array_stage = b.input_buffer.delay + b.compute_units.delay + b.adder_trees.delay;
    let accumulate_stage = b.shift_accumulators.delay;
    let fuse_stage = b.result_fusion.delay + b.converters.delay;
    let align_stage = b.pre_alignment.delay;
    array_stage
        .max(accumulate_stage)
        .max(fuse_stage)
        .max(align_stage)
}

/// The physically-realized tail of one estimate, as computed by
/// [`finish_lane`] — the exact operation sequence the cohort kernel's
/// scalar and vector blocks replicate lane-for-lane.
pub(crate) struct LaneFinish {
    pub(crate) area_mm2: f64,
    pub(crate) delay_ns: f64,
    pub(crate) energy_per_cycle_nj: f64,
    pub(crate) energy_per_pass_nj: f64,
    pub(crate) tops: f64,
}

/// Realizes one unit-cost lane into physical objectives. This is the
/// single source of truth for the per-lane operation order: the scalar
/// [`finish`] path, the cohort kernel's scalar block loop, and the AVX2
/// kernel all perform these operations in this sequence, which is what
/// makes scalar and vector results bit-identical (every step is one
/// IEEE-754 binary op on the same operands).
// Flat scalar arguments by design: the cohort kernel feeds SoA lanes
// and hoisted constants straight in, with no per-lane struct packing.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn finish_lane(
    unit_area: f64,
    unit_delay: f64,
    unit_energy: f64,
    cycles: f64,
    macs: f64,
    gate_area_um2: f64,
    gate_delay_ns: f64,
    gate_energy_fj: f64,
    energy_factor: f64,
) -> LaneFinish {
    let area_um2 = unit_area * gate_area_um2;
    let delay_ns = unit_delay * gate_delay_ns;
    let energy_fj = unit_energy * gate_energy_fj;
    let energy_per_cycle_nj = energy_fj * 1e-6 * energy_factor;
    let freq_ghz = 1.0 / delay_ns;
    // 1 MAC = 2 ops; a pass takes `cycles` cycles.
    let ops_per_pass = 2.0 * macs;
    let tops = ops_per_pass * freq_ghz / cycles / 1e3;
    LaneFinish {
        area_mm2: area_um2 * 1e-6,
        delay_ns,
        energy_per_cycle_nj,
        energy_per_pass_nj: energy_per_cycle_nj * cycles,
        tops,
    }
}

fn finish(
    breakdown: ComponentBreakdown,
    cycles_per_pass: u32,
    macs_per_pass: u64,
    tech: &Technology,
    energy_factor: f64,
) -> MacroEstimate {
    let unit = Cost::new(
        breakdown.total_area(),
        stage_delay(&breakdown),
        breakdown.total_energy(),
    );
    let lane = finish_lane(
        unit.area,
        unit.delay,
        unit.energy,
        cycles_per_pass as f64,
        macs_per_pass as f64,
        tech.gate_area_um2,
        tech.gate_delay_ns,
        tech.gate_energy_fj,
        energy_factor,
    );
    MacroEstimate {
        unit,
        area_mm2: lane.area_mm2,
        delay_ns: lane.delay_ns,
        energy_per_cycle_nj: lane.energy_per_cycle_nj,
        energy_per_pass_nj: lane.energy_per_pass_nj,
        cycles_per_pass,
        macs_per_pass,
        tops: lane.tops,
        breakdown,
    }
}

/// Table V's component breakdown: the multiplier-based integer macro.
pub(crate) fn breakdown_int(p: &IntParams) -> ComponentBreakdown {
    array_breakdown(p.n, p.h, p.l, p.k, p.bw, p.bx)
}

/// Table VI's component breakdown: the integer mantissa array plus the
/// FP pre-alignment front end and `N/BM` INT-to-FP converters.
pub(crate) fn breakdown_fp(p: &FpParams) -> ComponentBreakdown {
    let mut b = array_breakdown(p.n, p.h, p.l, p.k, p.bm, p.bm);
    b.pre_alignment = components::pre_alignment(p.h, p.be, p.bm);
    b.converters = components::int_to_fp_converter(p.result_bits(), p.be) * (p.n / p.bm) as f64;
    b
}

/// Table V: the multiplier-based integer macro.
fn estimate_int(p: &IntParams, tech: &Technology, energy_factor: f64) -> MacroEstimate {
    finish(
        breakdown_int(p),
        p.cycles_per_pass(),
        p.macs_per_pass(),
        tech,
        energy_factor,
    )
}

/// Table VI: the pre-aligned floating-point macro.
fn estimate_fp(p: &FpParams, tech: &Technology, energy_factor: f64) -> MacroEstimate {
    finish(
        breakdown_fp(p),
        p.cycles_per_pass(),
        p.macs_per_pass(),
        tech,
        energy_factor,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Precision;

    fn paper_setup() -> (Technology, OperatingConditions) {
        (Technology::tsmc28(), OperatingConditions::paper_default())
    }

    fn fig6_int8() -> DcimDesign {
        DcimDesign::Int(IntParams::new(32, 128, 16, 4, 8, 8).unwrap())
    }

    fn fig6_bf16() -> DcimDesign {
        DcimDesign::Fp(FpParams::new(32, 128, 16, 4, 8, 8).unwrap())
    }

    #[test]
    fn fig6_int8_area_matches_paper() {
        // Paper Fig. 6(a): 0.079 mm² (343 µm × 229 µm).
        let (tech, cond) = paper_setup();
        let est = estimate(&fig6_int8(), &tech, &cond);
        assert!(
            (est.area_mm2 - 0.079).abs() < 0.012,
            "area {} mm² vs paper 0.079 mm²",
            est.area_mm2
        );
    }

    #[test]
    fn fig6_bf16_area_matches_paper() {
        // Paper Fig. 6(b): 0.085 mm², pre-aligned circuits ~0.006 mm².
        let (tech, cond) = paper_setup();
        let est = estimate(&fig6_bf16(), &tech, &cond);
        assert!(
            (est.area_mm2 - 0.085).abs() < 0.015,
            "area {} mm² vs paper 0.085 mm²",
            est.area_mm2
        );
        let prealign_mm2 = est.breakdown.pre_alignment.area * tech.gate_area_um2 * 1e-6;
        assert!(
            (prealign_mm2 - 0.006).abs() < 0.004,
            "pre-align {} mm² vs paper 0.006 mm²",
            prealign_mm2
        );
    }

    #[test]
    fn bf16_overhead_over_int8_is_small() {
        // Paper: "the overhead of BF16 is almost the same compared to INT8".
        let (tech, cond) = paper_setup();
        let int8 = estimate(&fig6_int8(), &tech, &cond);
        let bf16 = estimate(&fig6_bf16(), &tech, &cond);
        let overhead = (bf16.area_mm2 - int8.area_mm2) / int8.area_mm2;
        assert!(
            overhead > 0.0 && overhead < 0.20,
            "BF16 area overhead {overhead:.2} should be positive but modest"
        );
    }

    #[test]
    fn delay_in_paper_band() {
        // Fig. 7(c): average delays range 1.2 ns (INT2) to 10.9 ns (FP32).
        let (tech, cond) = paper_setup();
        let est = estimate(&fig6_int8(), &tech, &cond);
        assert!(
            est.delay_ns > 0.3 && est.delay_ns < 12.0,
            "delay {} ns outside plausible band",
            est.delay_ns
        );
    }

    #[test]
    fn design_a_energy_efficiency_band() {
        // Fig. 8(a) design A: 64K weights INT8, 22 TOPS/W, 1.9 TOPS/mm².
        // The DSE picks the exact geometry; here we hand-pick a comparable
        // 64K-weight design and require the same order of magnitude.
        let (tech, cond) = paper_setup();
        let d = DcimDesign::Int(IntParams::new(64, 1024, 8, 1, 8, 8).unwrap());
        assert_eq!(d.wstore(), 65536);
        let est = estimate(&d, &tech, &cond);
        let tw = est.tops_per_w();
        let ta = est.tops_per_mm2();
        assert!(tw > 8.0 && tw < 80.0, "TOPS/W {tw} out of band (paper ~22)");
        assert!(
            ta > 0.4 && ta < 8.0,
            "TOPS/mm² {ta} out of band (paper ~1.9)"
        );
    }

    #[test]
    fn throughput_increases_with_k() {
        let (tech, cond) = paper_setup();
        let slow = estimate(
            &DcimDesign::Int(IntParams::new(32, 128, 16, 1, 8, 8).unwrap()),
            &tech,
            &cond,
        );
        let fast = estimate(
            &DcimDesign::Int(IntParams::new(32, 128, 16, 8, 8, 8).unwrap()),
            &tech,
            &cond,
        );
        assert!(fast.tops > slow.tops, "larger k must raise throughput");
        assert!(fast.area_mm2 > slow.area_mm2, "larger k must cost area");
    }

    #[test]
    fn voltage_derating_improves_efficiency() {
        let tech = Technology::tsmc28();
        let nominal = estimate(
            &fig6_int8(),
            &tech,
            &OperatingConditions {
                voltage: 0.9,
                ..OperatingConditions::paper_default()
            },
        );
        let derated = estimate(
            &fig6_int8(),
            &tech,
            &OperatingConditions {
                voltage: 0.6,
                ..OperatingConditions::paper_default()
            },
        );
        assert!(derated.tops_per_w() > nominal.tops_per_w());
        assert!(derated.tops < nominal.tops);
    }

    #[test]
    fn sparsity_lowers_power_not_throughput() {
        let (tech, _) = paper_setup();
        let dense = estimate(&fig6_int8(), &tech, &OperatingConditions::dense());
        let sparse = estimate(
            &fig6_int8(),
            &tech,
            &OperatingConditions {
                input_sparsity: 0.5,
                ..OperatingConditions::dense()
            },
        );
        assert!(sparse.power_w() < dense.power_w());
        assert!((sparse.tops - dense.tops).abs() < 1e-12);
    }

    #[test]
    fn objectives_orientation() {
        let (tech, cond) = paper_setup();
        let est = estimate(&fig6_int8(), &tech, &cond);
        let o = est.objectives();
        assert!(o[0] > 0.0 && o[1] > 0.0 && o[2] > 0.0 && o[3] < 0.0);
    }

    #[test]
    fn precision_sweep_is_monotone_in_area() {
        // Fig. 7(a): area grows INT2 -> INT16 and FP8 -> FP32 at fixed
        // Wstore. Build one representative design per precision at
        // Wstore=4096 and check ordering within each family.
        let (tech, cond) = paper_setup();
        let area_of = |prec: Precision| {
            let bw = prec.weight_bits();
            // geometry: N = 4*Bw, L = 8, H = Wstore*Bw/(N*L)
            let n = 4 * bw;
            let l = 8;
            let h = (4096 * bw) / (n * l);
            let d = DcimDesign::for_precision(prec, n, h, l, 1).unwrap();
            assert_eq!(d.wstore(), 4096, "{prec}");
            estimate(&d, &tech, &cond).area_mm2
        };
        let ints = [
            Precision::Int2,
            Precision::Int4,
            Precision::Int8,
            Precision::Int16,
        ];
        for w in ints.windows(2) {
            assert!(
                area_of(w[0]) < area_of(w[1]),
                "{} should be smaller than {}",
                w[0],
                w[1]
            );
        }
        let fps = [
            Precision::Fp8,
            Precision::Bf16,
            Precision::Fp16,
            Precision::Fp32,
        ];
        for w in fps.windows(2) {
            assert!(area_of(w[0]) < area_of(w[1]));
        }
    }

    #[test]
    fn context_is_bit_identical_to_free_estimate() {
        // The hoisted context must reproduce the free function exactly —
        // at nominal voltage, derated, and under different sparsity.
        let tech = Technology::tsmc28();
        let conditions = [
            OperatingConditions::paper_default(),
            OperatingConditions::dense(),
            OperatingConditions {
                voltage: 0.65,
                ..OperatingConditions::paper_default()
            },
            OperatingConditions {
                voltage: 1.05,
                input_sparsity: 0.4,
                activity: 0.2,
            },
        ];
        for cond in conditions {
            let ctx = EstimationContext::new(&tech, &cond);
            for design in [fig6_int8(), fig6_bf16()] {
                assert_eq!(
                    ctx.estimate(&design),
                    estimate(&design, &tech, &cond),
                    "context diverged at {cond:?}"
                );
            }
        }
    }

    #[test]
    fn context_realizes_voltage_once() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions {
            voltage: 0.6,
            ..OperatingConditions::paper_default()
        };
        let ctx = EstimationContext::new(&tech, &cond);
        assert!((ctx.technology().nominal_voltage - 0.6).abs() < 1e-12);
        assert!(ctx.technology().gate_delay_ns > tech.gate_delay_ns);
        // Nominal conditions keep the technology untouched.
        let nominal = EstimationContext::new(&tech, &OperatingConditions::paper_default());
        assert_eq!(nominal.technology(), &tech);
    }

    #[test]
    fn breakdown_totals_are_consistent() {
        let (tech, cond) = paper_setup();
        let est = estimate(&fig6_bf16(), &tech, &cond);
        let sum_area: f64 = est.breakdown.iter().map(|(_, c)| c.area).sum();
        assert!((sum_area - est.unit.area).abs() < 1e-6);
        assert!(est.breakdown.pre_alignment.area > 0.0);
        assert!(est.breakdown.converters.area > 0.0);
        let int_est = estimate(&fig6_int8(), &tech, &cond);
        assert_eq!(int_est.breakdown.pre_alignment, Cost::ZERO);
        assert_eq!(int_est.breakdown.converters, Cost::ZERO);
    }
}
