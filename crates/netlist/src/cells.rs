//! Port definitions and behavioral Verilog bodies for the Table III leaf
//! cells, so emitted netlists are self-contained and simulatable.

use crate::ir::Dir;
use sega_cells::StandardCell;

/// The port list of a standard cell: `(name, width, direction)`.
///
/// The SRAM bit cell is modeled with its hard-wired read port only (`q`,
/// plus write port `d`/`we`/`wl`): the paper's architecture never precharges
/// a read bitline, weights are "hard-wired from the SRAM cell to the Compute
/// Unit".
pub fn cell_ports(cell: StandardCell) -> &'static [(&'static str, u32, Dir)] {
    use Dir::{Input, Output};
    match cell {
        StandardCell::Nor | StandardCell::Or => {
            &[("a", 1, Input), ("b", 1, Input), ("y", 1, Output)]
        }
        StandardCell::Mux2 => &[
            ("a", 1, Input),
            ("b", 1, Input),
            ("sel", 1, Input),
            ("y", 1, Output),
        ],
        StandardCell::HalfAdder => &[
            ("a", 1, Input),
            ("b", 1, Input),
            ("sum", 1, Output),
            ("cout", 1, Output),
        ],
        StandardCell::FullAdder => &[
            ("a", 1, Input),
            ("b", 1, Input),
            ("cin", 1, Input),
            ("sum", 1, Output),
            ("cout", 1, Output),
        ],
        StandardCell::Dff => &[("d", 1, Input), ("clk", 1, Input), ("q", 1, Output)],
        StandardCell::Sram => &[("d", 1, Input), ("wl", 1, Input), ("q", 1, Output)],
    }
}

/// Behavioral Verilog body for a leaf cell, emitted once per used cell so
/// the generated netlist is a complete, simulatable design.
pub fn cell_verilog(cell: StandardCell) -> &'static str {
    match cell {
        StandardCell::Nor => "module NOR(input a, input b, output y);\n  assign y = ~(a | b);\nendmodule\n",
        StandardCell::Or => "module OR(input a, input b, output y);\n  assign y = a | b;\nendmodule\n",
        StandardCell::Mux2 => "module MUX2(input a, input b, input sel, output y);\n  assign y = sel ? b : a;\nendmodule\n",
        StandardCell::HalfAdder => "module HA(input a, input b, output sum, output cout);\n  assign sum = a ^ b;\n  assign cout = a & b;\nendmodule\n",
        StandardCell::FullAdder => "module FA(input a, input b, input cin, output sum, output cout);\n  assign sum = a ^ b ^ cin;\n  assign cout = (a & b) | (cin & (a ^ b));\nendmodule\n",
        StandardCell::Dff => "module DFF(input d, input clk, output reg q);\n  always @(posedge clk) q <= d;\nendmodule\n",
        StandardCell::Sram => "module SRAM(input d, input wl, output q);\n  reg mem;\n  always @(wl or d) if (wl) mem <= d;\n  assign q = mem;\nendmodule\n",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_cells::ALL_CELLS;

    #[test]
    fn every_cell_has_ports_and_verilog() {
        for cell in ALL_CELLS {
            assert!(!cell_ports(cell).is_empty(), "{cell}");
            let v = cell_verilog(cell);
            assert!(v.contains(&format!("module {}", cell.name())), "{cell}");
            assert!(v.ends_with("endmodule\n"), "{cell}");
        }
    }

    #[test]
    fn every_cell_has_exactly_one_output_except_adders() {
        for cell in ALL_CELLS {
            let outs = cell_ports(cell)
                .iter()
                .filter(|(_, _, d)| *d == Dir::Output)
                .count();
            match cell {
                StandardCell::HalfAdder | StandardCell::FullAdder => assert_eq!(outs, 2),
                _ => assert_eq!(outs, 1, "{cell}"),
            }
        }
    }

    #[test]
    fn port_names_match_verilog_declaration() {
        for cell in ALL_CELLS {
            let v = cell_verilog(cell);
            for (port, _, _) in cell_ports(cell) {
                assert!(v.contains(port), "{cell} missing port {port} in Verilog");
            }
        }
    }
}
