//! Gate-count statistics and the generator-vs-estimator audit.
//!
//! [`cell_counts`] recursively counts every Table III standard cell in a
//! hierarchical [`Design`] (with memoization, so deep hierarchies cost one
//! traversal per module definition). [`audit`] then cross-checks the
//! generated hardware against a [`MacroEstimate`]: the paper's whole flow
//! rests on the estimator predicting what the generator builds, and here
//! that property is enforced to floating-point precision.

use std::collections::HashMap;

use crate::ir::{Design, InstanceTarget, NetlistError};
use sega_cells::{Cost, StandardCell};
use sega_estimator::MacroEstimate;

/// Counts standard cells under the design's top module.
///
/// # Errors
///
/// Fails if the design has no top or references unknown modules.
pub fn cell_counts(design: &Design) -> Result<HashMap<StandardCell, u64>, NetlistError> {
    let top = design.top()?.name.clone();
    cell_counts_of_module(design, &top)
}

/// Counts standard cells under the named module (recursively).
///
/// # Errors
///
/// Fails with [`NetlistError::UnknownModule`] for dangling references.
pub fn cell_counts_of_module(
    design: &Design,
    module: &str,
) -> Result<HashMap<StandardCell, u64>, NetlistError> {
    let mut memo: HashMap<String, HashMap<StandardCell, u64>> = HashMap::new();
    counts_rec(design, module, &mut memo)?;
    Ok(memo.remove(module).expect("memoized after recursion"))
}

fn counts_rec(
    design: &Design,
    module: &str,
    memo: &mut HashMap<String, HashMap<StandardCell, u64>>,
) -> Result<(), NetlistError> {
    if memo.contains_key(module) {
        return Ok(());
    }
    let m = design
        .module(module)
        .ok_or_else(|| NetlistError::UnknownModule(module.to_owned()))?;
    let mut counts: HashMap<StandardCell, u64> = HashMap::new();
    for inst in &m.instances {
        match &inst.target {
            InstanceTarget::Cell(cell) => {
                *counts.entry(*cell).or_insert(0) += 1;
            }
            InstanceTarget::Module(child) => {
                counts_rec(design, child, memo)?;
                for (cell, n) in memo.get(child.as_str()).expect("memoized child") {
                    *counts.entry(*cell).or_insert(0) += n;
                }
            }
        }
    }
    memo.insert(module.to_owned(), counts);
    Ok(())
}

/// Total area/energy of a cell-count table in NOR-gate units (delay is not
/// meaningful in a sum and is reported as zero).
pub fn counts_cost(counts: &HashMap<StandardCell, u64>) -> Cost {
    let mut total = Cost::ZERO;
    for (cell, &n) in counts {
        let c = cell.cost();
        total.area += c.area * n as f64;
        total.energy += c.energy * n as f64;
    }
    total
}

/// Area/energy of the named module in NOR-gate units.
///
/// # Errors
///
/// Same conditions as [`cell_counts_of_module`].
pub fn unit_cost_of_module(design: &Design, module: &str) -> Result<Cost, NetlistError> {
    Ok(counts_cost(&cell_counts_of_module(design, module)?))
}

/// The result of auditing a generated netlist against its estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Audit {
    /// Area of the netlist (NOR-gate units, from cell counts).
    pub netlist_area: f64,
    /// Area predicted by the estimator (NOR-gate units).
    pub estimated_area: f64,
    /// Energy of the netlist (NOR-gate units).
    pub netlist_energy: f64,
    /// Energy predicted by the estimator (NOR-gate units, before the
    /// activity factor).
    pub estimated_energy: f64,
    /// Per-cell counts of the netlist.
    pub counts: HashMap<StandardCell, u64>,
}

impl Audit {
    /// Relative area discrepancy between generator and estimator.
    pub fn area_error(&self) -> f64 {
        (self.netlist_area - self.estimated_area).abs() / self.estimated_area.max(f64::MIN_POSITIVE)
    }

    /// Relative energy discrepancy between generator and estimator.
    pub fn energy_error(&self) -> f64 {
        (self.netlist_energy - self.estimated_energy).abs()
            / self.estimated_energy.max(f64::MIN_POSITIVE)
    }

    /// True when generator and estimator agree to within `tolerance`
    /// relative error on both area and energy.
    pub fn is_consistent(&self, tolerance: f64) -> bool {
        self.area_error() <= tolerance && self.energy_error() <= tolerance
    }
}

/// Audits a generated netlist against the estimate the design space
/// explorer optimized: counts every standard cell in the netlist and
/// compares total area and energy with the estimator's unit cost.
///
/// # Errors
///
/// Fails if the netlist has no top or dangling module references.
///
/// ```
/// use sega_estimator::{estimate, DcimDesign, OperatingConditions, Precision};
/// use sega_netlist::{generators, stats};
///
/// let d = DcimDesign::for_precision(Precision::Int4, 16, 8, 4, 2)?;
/// let netlist = generators::generate_macro(&d)?;
/// let est = estimate(&d, &sega_cells::Technology::tsmc28(),
///                    &OperatingConditions::paper_default());
/// let audit = stats::audit(&netlist, &est)?;
/// assert!(audit.is_consistent(1e-9));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn audit(design: &Design, estimate: &MacroEstimate) -> Result<Audit, NetlistError> {
    let counts = cell_counts(design)?;
    let cost = counts_cost(&counts);
    Ok(Audit {
        netlist_area: cost.area,
        estimated_area: estimate.unit.area,
        netlist_energy: cost.energy,
        estimated_energy: estimate.unit.energy,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Module, Signal};

    fn leaf(name: &str, nors: u32) -> Module {
        let mut m = Module::new(name);
        m.add_input("a", 1).unwrap();
        m.add_output("y", nors).unwrap();
        for i in 0..nors {
            m.add_cell(
                format!("n{i}"),
                StandardCell::Nor,
                vec![
                    ("a", Signal::net("a")),
                    ("b", Signal::net("a")),
                    ("y", Signal::bit("y", i)),
                ],
            );
        }
        m
    }

    #[test]
    fn counts_flat_module() {
        let mut d = Design::new();
        d.add_module(leaf("leaf3", 3)).unwrap();
        d.set_top("leaf3").unwrap();
        let c = cell_counts(&d).unwrap();
        assert_eq!(c.get(&StandardCell::Nor), Some(&3));
    }

    #[test]
    fn counts_multiply_through_hierarchy() {
        let mut d = Design::new();
        d.add_module(leaf("leaf2", 2)).unwrap();
        let mut mid = Module::new("mid");
        mid.add_input("a", 1).unwrap();
        mid.add_output("y", 2).unwrap();
        for i in 0..4 {
            mid.add_wire(format!("w{i}"), 2).unwrap();
            mid.add_instance(
                format!("u{i}"),
                "leaf2",
                vec![("a", Signal::net("a")), ("y", Signal::net(format!("w{i}")))],
            );
        }
        d.add_module(mid).unwrap();
        let mut top = Module::new("top");
        top.add_input("a", 1).unwrap();
        top.add_output("y", 2).unwrap();
        for i in 0..3 {
            top.add_wire(format!("w{i}"), 2).unwrap();
            top.add_instance(
                format!("m{i}"),
                "mid",
                vec![("a", Signal::net("a")), ("y", Signal::net(format!("w{i}")))],
            );
        }
        d.add_module(top).unwrap();
        d.set_top("top").unwrap();
        // 3 mids × 4 leaves × 2 NORs = 24.
        let c = cell_counts(&d).unwrap();
        assert_eq!(c.get(&StandardCell::Nor), Some(&24));
    }

    #[test]
    fn counts_cost_weights_by_cell() {
        let mut counts = HashMap::new();
        counts.insert(StandardCell::FullAdder, 10u64);
        counts.insert(StandardCell::Sram, 100u64);
        let c = counts_cost(&counts);
        assert!((c.area - (10.0 * 5.7 + 100.0 * 2.2)).abs() < 1e-9);
        assert!((c.energy - 10.0 * 8.4).abs() < 1e-9);
    }

    #[test]
    fn audit_consistency_thresholds() {
        let a = Audit {
            netlist_area: 100.0,
            estimated_area: 100.0,
            netlist_energy: 50.0,
            estimated_energy: 51.0,
            counts: HashMap::new(),
        };
        assert!(a.is_consistent(0.05));
        assert!(!a.is_consistent(0.001));
    }
}
