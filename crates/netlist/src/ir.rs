use std::collections::HashMap;

use crate::cells::cell_ports;
use sega_cells::StandardCell;

/// Errors produced while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// Two modules share a name.
    DuplicateModule(String),
    /// An instance references a module that is not in the design.
    UnknownModule(String),
    /// A net name collides inside a module.
    DuplicateNet {
        /// Containing module.
        module: String,
        /// Offending net name.
        net: String,
    },
    /// A signal references a net that does not exist in its module.
    UnknownNet {
        /// Containing module.
        module: String,
        /// Missing net name.
        net: String,
    },
    /// A connection references a port the target does not have.
    UnknownPort {
        /// Instance name.
        instance: String,
        /// Target cell/module name.
        target: String,
        /// Missing port name.
        port: String,
    },
    /// A connected signal's width does not match the target port width.
    WidthMismatch {
        /// Instance name.
        instance: String,
        /// Port name.
        port: String,
        /// Expected (port) width.
        expected: u32,
        /// Actual (signal) width.
        actual: u32,
    },
    /// A bit/slice index exceeds the referenced net's width.
    IndexOutOfRange {
        /// Containing module.
        module: String,
        /// Referenced net.
        net: String,
        /// Offending index.
        index: u32,
        /// Net width.
        width: u32,
    },
    /// The design has no top module set.
    NoTop,
}

impl std::fmt::Display for NetlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetlistError::DuplicateModule(m) => write!(f, "duplicate module `{m}`"),
            NetlistError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            NetlistError::DuplicateNet { module, net } => {
                write!(f, "duplicate net `{net}` in module `{module}`")
            }
            NetlistError::UnknownNet { module, net } => {
                write!(f, "unknown net `{net}` in module `{module}`")
            }
            NetlistError::UnknownPort {
                instance,
                target,
                port,
            } => write!(
                f,
                "instance `{instance}`: target `{target}` has no port `{port}`"
            ),
            NetlistError::WidthMismatch {
                instance,
                port,
                expected,
                actual,
            } => write!(
                f,
                "instance `{instance}` port `{port}`: expected width {expected}, got {actual}"
            ),
            NetlistError::IndexOutOfRange {
                module,
                net,
                index,
                width,
            } => write!(
                f,
                "module `{module}`: index {index} out of range for net `{net}` of width {width}"
            ),
            NetlistError::NoTop => write!(f, "design has no top module"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Module input.
    Input,
    /// Module output.
    Output,
}

/// A module port: a named, directed bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Bus width in bits.
    pub width: u32,
    /// Direction.
    pub dir: Dir,
}

/// An internal wire: a named bus local to a module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Wire {
    /// Wire name.
    pub name: String,
    /// Bus width in bits.
    pub width: u32,
}

/// What an instance instantiates: a leaf standard cell or a child module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceTarget {
    /// A Table III standard cell.
    Cell(StandardCell),
    /// A child module, by name.
    Module(String),
}

impl InstanceTarget {
    /// Display name of the target.
    pub fn name(&self) -> &str {
        match self {
            InstanceTarget::Cell(c) => c.name(),
            InstanceTarget::Module(m) => m,
        }
    }
}

/// A cell or module instantiation with named port connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name (unique within the parent module).
    pub name: String,
    /// What is instantiated.
    pub target: InstanceTarget,
    /// `(port name, connected signal)` pairs.
    pub connections: Vec<(String, Signal)>,
}

/// A signal expression connecting instance ports: a whole net, a bit, a
/// slice, a constant, or a concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Signal {
    /// A whole named net (port or wire).
    Net(String),
    /// One bit of a net: `net[bit]`.
    Bit(String, u32),
    /// An inclusive slice: `net[msb:lsb]`.
    Slice {
        /// Net name.
        net: String,
        /// Most significant bit (inclusive).
        msb: u32,
        /// Least significant bit (inclusive).
        lsb: u32,
    },
    /// A literal: `width'd value`.
    Const {
        /// Bit width of the literal.
        width: u32,
        /// Value (must fit in `width` bits).
        value: u64,
    },
    /// A concatenation, most significant part first (Verilog `{a, b}`).
    Concat(Vec<Signal>),
}

impl Signal {
    /// Convenience constructor for a whole net.
    pub fn net(name: impl Into<String>) -> Signal {
        Signal::Net(name.into())
    }

    /// Convenience constructor for a single bit.
    pub fn bit(name: impl Into<String>, bit: u32) -> Signal {
        Signal::Bit(name.into(), bit)
    }

    /// Convenience constructor for an inclusive slice `[msb:lsb]`.
    pub fn slice(name: impl Into<String>, msb: u32, lsb: u32) -> Signal {
        assert!(msb >= lsb, "slice msb must be >= lsb");
        Signal::Slice {
            net: name.into(),
            msb,
            lsb,
        }
    }

    /// A `width`-bit zero.
    pub fn zeros(width: u32) -> Signal {
        Signal::Const { width, value: 0 }
    }

    /// The width of this signal in the context of `module`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownNet`] / [`NetlistError::IndexOutOfRange`]
    /// for dangling or out-of-range references.
    pub fn width(&self, module: &Module) -> Result<u32, NetlistError> {
        match self {
            Signal::Net(name) => module
                .net_width(name)
                .ok_or_else(|| NetlistError::UnknownNet {
                    module: module.name.clone(),
                    net: name.clone(),
                }),
            Signal::Bit(name, bit) => {
                let w = module
                    .net_width(name)
                    .ok_or_else(|| NetlistError::UnknownNet {
                        module: module.name.clone(),
                        net: name.clone(),
                    })?;
                if *bit >= w {
                    return Err(NetlistError::IndexOutOfRange {
                        module: module.name.clone(),
                        net: name.clone(),
                        index: *bit,
                        width: w,
                    });
                }
                Ok(1)
            }
            Signal::Slice { net, msb, lsb } => {
                let w = module
                    .net_width(net)
                    .ok_or_else(|| NetlistError::UnknownNet {
                        module: module.name.clone(),
                        net: net.clone(),
                    })?;
                if *msb >= w {
                    return Err(NetlistError::IndexOutOfRange {
                        module: module.name.clone(),
                        net: net.clone(),
                        index: *msb,
                        width: w,
                    });
                }
                Ok(msb - lsb + 1)
            }
            Signal::Const { width, .. } => Ok(*width),
            Signal::Concat(parts) => {
                let mut total = 0;
                for p in parts {
                    total += p.width(module)?;
                }
                Ok(total)
            }
        }
    }
}

/// A netlist module: ports, internal wires, instances and continuous
/// assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name (unique within a [`Design`]).
    pub name: String,
    /// Port list, in declaration order.
    pub ports: Vec<Port>,
    /// Internal wires.
    pub wires: Vec<Wire>,
    /// Cell and module instances.
    pub instances: Vec<Instance>,
    /// Continuous assignments `(lhs, rhs)`.
    pub assigns: Vec<(Signal, Signal)>,
    net_widths: HashMap<String, u32>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ports: Vec::new(),
            wires: Vec::new(),
            instances: Vec::new(),
            assigns: Vec::new(),
            net_widths: HashMap::new(),
        }
    }

    fn add_net(&mut self, name: &str, width: u32) -> Result<(), NetlistError> {
        if self.net_widths.insert(name.to_owned(), width).is_some() {
            return Err(NetlistError::DuplicateNet {
                module: self.name.clone(),
                net: name.to_owned(),
            });
        }
        Ok(())
    }

    /// Declares an input port.
    ///
    /// # Errors
    ///
    /// Fails if the name collides with an existing net.
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) -> Result<(), NetlistError> {
        let name = name.into();
        self.add_net(&name, width)?;
        self.ports.push(Port {
            name,
            width,
            dir: Dir::Input,
        });
        Ok(())
    }

    /// Declares an output port.
    ///
    /// # Errors
    ///
    /// Fails if the name collides with an existing net.
    pub fn add_output(&mut self, name: impl Into<String>, width: u32) -> Result<(), NetlistError> {
        let name = name.into();
        self.add_net(&name, width)?;
        self.ports.push(Port {
            name,
            width,
            dir: Dir::Output,
        });
        Ok(())
    }

    /// Declares an internal wire.
    ///
    /// # Errors
    ///
    /// Fails if the name collides with an existing net.
    pub fn add_wire(&mut self, name: impl Into<String>, width: u32) -> Result<(), NetlistError> {
        let name = name.into();
        self.add_net(&name, width)?;
        self.wires.push(Wire { name, width });
        Ok(())
    }

    /// Instantiates a standard cell with named connections.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        cell: StandardCell,
        connections: Vec<(&str, Signal)>,
    ) {
        self.instances.push(Instance {
            name: name.into(),
            target: InstanceTarget::Cell(cell),
            connections: connections
                .into_iter()
                .map(|(p, s)| (p.to_owned(), s))
                .collect(),
        });
    }

    /// Instantiates a child module with named connections.
    pub fn add_instance(
        &mut self,
        name: impl Into<String>,
        module: impl Into<String>,
        connections: Vec<(&str, Signal)>,
    ) {
        self.instances.push(Instance {
            name: name.into(),
            target: InstanceTarget::Module(module.into()),
            connections: connections
                .into_iter()
                .map(|(p, s)| (p.to_owned(), s))
                .collect(),
        });
    }

    /// Adds a continuous assignment `lhs = rhs`.
    pub fn add_assign(&mut self, lhs: Signal, rhs: Signal) {
        self.assigns.push((lhs, rhs));
    }

    /// Width of a named net (port or wire), if it exists.
    pub fn net_width(&self, name: &str) -> Option<u32> {
        self.net_widths.get(name).copied()
    }

    /// The port with the given name, if any.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }
}

/// A complete hierarchical design: a set of modules and a designated top.
#[derive(Debug, Clone, Default)]
pub struct Design {
    modules: Vec<Module>,
    index: HashMap<String, usize>,
    top: Option<String>,
}

impl Design {
    /// Creates an empty design.
    pub fn new() -> Design {
        Design::default()
    }

    /// Adds a module.
    ///
    /// # Errors
    ///
    /// Fails with [`NetlistError::DuplicateModule`] on a name collision.
    pub fn add_module(&mut self, module: Module) -> Result<(), NetlistError> {
        if self.index.contains_key(&module.name) {
            return Err(NetlistError::DuplicateModule(module.name));
        }
        self.index.insert(module.name.clone(), self.modules.len());
        self.modules.push(module);
        Ok(())
    }

    /// True when a module with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Looks a module up by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.index.get(name).map(|&i| &self.modules[i])
    }

    /// All modules, in insertion (dependency) order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Sets the top module.
    ///
    /// # Errors
    ///
    /// Fails with [`NetlistError::UnknownModule`] if absent.
    pub fn set_top(&mut self, name: impl Into<String>) -> Result<(), NetlistError> {
        let name = name.into();
        if !self.contains(&name) {
            return Err(NetlistError::UnknownModule(name));
        }
        self.top = Some(name);
        Ok(())
    }

    /// The top module.
    ///
    /// # Errors
    ///
    /// Fails with [`NetlistError::NoTop`] if no top has been set.
    pub fn top(&self) -> Result<&Module, NetlistError> {
        let name = self.top.as_deref().ok_or(NetlistError::NoTop)?;
        Ok(self.module(name).expect("top name is always indexed"))
    }

    /// Structurally validates the whole design: every instance target
    /// exists, every connection names a real port, and every connected
    /// signal's width matches the port width.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.top()?;
        for module in &self.modules {
            for inst in &module.instances {
                let port_widths: Vec<(String, u32)> = match &inst.target {
                    InstanceTarget::Cell(cell) => cell_ports(*cell)
                        .iter()
                        .map(|(n, w, _)| ((*n).to_owned(), *w))
                        .collect(),
                    InstanceTarget::Module(name) => {
                        let child = self
                            .module(name)
                            .ok_or_else(|| NetlistError::UnknownModule(name.clone()))?;
                        child
                            .ports
                            .iter()
                            .map(|p| (p.name.clone(), p.width))
                            .collect()
                    }
                };
                for (port, signal) in &inst.connections {
                    let expected = port_widths
                        .iter()
                        .find(|(n, _)| n == port)
                        .map(|(_, w)| *w)
                        .ok_or_else(|| NetlistError::UnknownPort {
                            instance: inst.name.clone(),
                            target: inst.target.name().to_owned(),
                            port: port.clone(),
                        })?;
                    let actual = signal.width(module)?;
                    if actual != expected {
                        return Err(NetlistError::WidthMismatch {
                            instance: inst.name.clone(),
                            port: port.clone(),
                            expected,
                            actual,
                        });
                    }
                }
            }
            for (lhs, rhs) in &module.assigns {
                let lw = lhs.width(module)?;
                let rw = rhs.width(module)?;
                if lw != rw {
                    return Err(NetlistError::WidthMismatch {
                        instance: format!("assign in `{}`", module.name),
                        port: String::new(),
                        expected: lw,
                        actual: rw,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_module() -> Module {
        let mut m = Module::new("tiny");
        m.add_input("a", 4).unwrap();
        m.add_input("b", 4).unwrap();
        m.add_output("y", 1).unwrap();
        m.add_wire("t", 2).unwrap();
        m
    }

    #[test]
    fn net_widths_are_tracked() {
        let m = tiny_module();
        assert_eq!(m.net_width("a"), Some(4));
        assert_eq!(m.net_width("t"), Some(2));
        assert_eq!(m.net_width("nope"), None);
    }

    #[test]
    fn duplicate_net_rejected() {
        let mut m = tiny_module();
        assert!(matches!(
            m.add_wire("a", 1),
            Err(NetlistError::DuplicateNet { .. })
        ));
    }

    #[test]
    fn signal_widths() {
        let m = tiny_module();
        assert_eq!(Signal::net("a").width(&m).unwrap(), 4);
        assert_eq!(Signal::bit("a", 3).width(&m).unwrap(), 1);
        assert_eq!(Signal::slice("a", 3, 1).width(&m).unwrap(), 3);
        assert_eq!(Signal::zeros(7).width(&m).unwrap(), 7);
        let cat = Signal::Concat(vec![Signal::net("t"), Signal::bit("a", 0)]);
        assert_eq!(cat.width(&m).unwrap(), 3);
    }

    #[test]
    fn signal_out_of_range() {
        let m = tiny_module();
        assert!(matches!(
            Signal::bit("a", 4).width(&m),
            Err(NetlistError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            Signal::net("ghost").width(&m),
            Err(NetlistError::UnknownNet { .. })
        ));
    }

    #[test]
    fn validate_accepts_correct_cell_wiring() {
        let mut m = Module::new("norbuf");
        m.add_input("a", 1).unwrap();
        m.add_output("y", 1).unwrap();
        m.add_cell(
            "u0",
            StandardCell::Nor,
            vec![
                ("a", Signal::net("a")),
                ("b", Signal::net("a")),
                ("y", Signal::net("y")),
            ],
        );
        let mut d = Design::new();
        d.add_module(m).unwrap();
        d.set_top("norbuf").unwrap();
        d.validate().unwrap();
    }

    #[test]
    fn validate_catches_width_mismatch() {
        let mut m = Module::new("bad");
        m.add_input("a", 2).unwrap();
        m.add_output("y", 1).unwrap();
        m.add_cell(
            "u0",
            StandardCell::Nor,
            vec![
                ("a", Signal::net("a")), // 2 bits into a 1-bit port
                ("b", Signal::bit("a", 0)),
                ("y", Signal::net("y")),
            ],
        );
        let mut d = Design::new();
        d.add_module(m).unwrap();
        d.set_top("bad").unwrap();
        assert!(matches!(
            d.validate(),
            Err(NetlistError::WidthMismatch {
                expected: 1,
                actual: 2,
                ..
            })
        ));
    }

    #[test]
    fn validate_catches_unknown_port_and_module() {
        let mut m = Module::new("m");
        m.add_output("y", 1).unwrap();
        m.add_cell("u0", StandardCell::Nor, vec![("q", Signal::net("y"))]);
        let mut d = Design::new();
        d.add_module(m).unwrap();
        d.set_top("m").unwrap();
        assert!(matches!(
            d.validate(),
            Err(NetlistError::UnknownPort { .. })
        ));

        let mut m2 = Module::new("m2");
        m2.add_output("y", 1).unwrap();
        m2.add_instance("c0", "ghost", vec![]);
        let mut d2 = Design::new();
        d2.add_module(m2).unwrap();
        d2.set_top("m2").unwrap();
        assert!(matches!(d2.validate(), Err(NetlistError::UnknownModule(_))));
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut d = Design::new();
        d.add_module(Module::new("x")).unwrap();
        assert!(matches!(
            d.add_module(Module::new("x")),
            Err(NetlistError::DuplicateModule(_))
        ));
    }

    #[test]
    fn no_top_is_an_error() {
        let d = Design::new();
        assert!(matches!(d.validate(), Err(NetlistError::NoTop)));
    }

    #[test]
    fn error_messages_are_nonempty() {
        let errs = [
            NetlistError::DuplicateModule("m".into()),
            NetlistError::NoTop,
            NetlistError::UnknownNet {
                module: "m".into(),
                net: "n".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
