//! Hierarchy reporting: per-module instance statistics of a generated
//! design — the "what did the template generator actually build" view a
//! user inspects before handing the netlist to synthesis.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ir::{Design, InstanceTarget, NetlistError};
use crate::stats::cell_counts_of_module;

/// Statistics of one module definition within a design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleStats {
    /// Module name.
    pub name: String,
    /// Direct child-module instances.
    pub child_instances: usize,
    /// Direct leaf-cell instances.
    pub cell_instances: usize,
    /// Total leaf cells under this module (recursive).
    pub total_cells: u64,
    /// How many times this module is instantiated across the whole design
    /// (1 for the top).
    pub instantiation_count: u64,
}

/// Computes per-module statistics for every module reachable from the top,
/// in dependency (children-first) order.
///
/// # Errors
///
/// Fails if the design has no top or contains dangling module references.
pub fn hierarchy_stats(design: &Design) -> Result<Vec<ModuleStats>, NetlistError> {
    let top = design.top()?.name.clone();

    // Instantiation multiplicity via DFS accumulation.
    let mut multiplicity: HashMap<String, u64> = HashMap::new();
    fn walk(
        design: &Design,
        name: &str,
        factor: u64,
        multiplicity: &mut HashMap<String, u64>,
    ) -> Result<(), NetlistError> {
        *multiplicity.entry(name.to_owned()).or_insert(0) += factor;
        let m = design
            .module(name)
            .ok_or_else(|| NetlistError::UnknownModule(name.to_owned()))?;
        let mut child_counts: HashMap<&str, u64> = HashMap::new();
        for inst in &m.instances {
            if let InstanceTarget::Module(child) = &inst.target {
                *child_counts.entry(child.as_str()).or_insert(0) += 1;
            }
        }
        for (child, count) in child_counts {
            walk(design, child, factor * count, multiplicity)?;
        }
        Ok(())
    }
    walk(design, &top, 1, &mut multiplicity)?;

    // Emit in children-first order (same as the Verilog emitter).
    let mut order: Vec<String> = Vec::new();
    let mut visited: HashMap<String, bool> = HashMap::new();
    fn post_order(
        design: &Design,
        name: &str,
        visited: &mut HashMap<String, bool>,
        order: &mut Vec<String>,
    ) {
        if visited.insert(name.to_owned(), true).is_some() {
            return;
        }
        if let Some(m) = design.module(name) {
            for inst in &m.instances {
                if let InstanceTarget::Module(child) = &inst.target {
                    post_order(design, child, visited, order);
                }
            }
        }
        order.push(name.to_owned());
    }
    post_order(design, &top, &mut visited, &mut order);

    let mut out = Vec::with_capacity(order.len());
    for name in order {
        let m = design
            .module(&name)
            .ok_or_else(|| NetlistError::UnknownModule(name.clone()))?;
        let child_instances = m
            .instances
            .iter()
            .filter(|i| matches!(i.target, InstanceTarget::Module(_)))
            .count();
        let cell_instances = m.instances.len() - child_instances;
        let total_cells: u64 = cell_counts_of_module(design, &name)?.values().sum();
        out.push(ModuleStats {
            instantiation_count: multiplicity.get(&name).copied().unwrap_or(0),
            name,
            child_instances,
            cell_instances,
            total_cells,
        });
    }
    Ok(out)
}

/// Renders the hierarchy statistics as an aligned text table.
///
/// # Errors
///
/// Same conditions as [`hierarchy_stats`].
pub fn hierarchy_report(design: &Design) -> Result<String, NetlistError> {
    let stats = hierarchy_stats(design)?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<32} {:>6} {:>8} {:>8} {:>12}",
        "module", "uses", "children", "cells", "total cells"
    );
    for m in &stats {
        let _ = writeln!(
            s,
            "{:<32} {:>6} {:>8} {:>8} {:>12}",
            m.name, m.instantiation_count, m.child_instances, m.cell_instances, m.total_cells
        );
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::generate_macro;
    use sega_estimator::{DcimDesign, Precision};

    fn small() -> Design {
        let d = DcimDesign::for_precision(Precision::Int4, 8, 8, 2, 2).unwrap();
        generate_macro(&d).unwrap()
    }

    #[test]
    fn top_is_instantiated_once_and_last() {
        let stats = hierarchy_stats(&small()).unwrap();
        let top = stats.last().unwrap();
        assert!(top.name.starts_with("dcim_int"));
        assert_eq!(top.instantiation_count, 1);
    }

    #[test]
    fn column_multiplicity_equals_n() {
        let stats = hierarchy_stats(&small()).unwrap();
        let col = stats.iter().find(|m| m.name.starts_with("col_")).unwrap();
        assert_eq!(col.instantiation_count, 8, "N=8 column instances");
    }

    #[test]
    fn total_cells_of_top_matches_flat_count() {
        let design = small();
        let stats = hierarchy_stats(&design).unwrap();
        let top = stats.last().unwrap();
        let flat: u64 = crate::stats::cell_counts(&design).unwrap().values().sum();
        assert_eq!(top.total_cells, flat);
    }

    #[test]
    fn weighted_totals_are_consistent() {
        // Sum over modules of (direct cells × multiplicity) equals the
        // top's recursive total.
        let design = small();
        let stats = hierarchy_stats(&design).unwrap();
        let top_total = stats.last().unwrap().total_cells;
        let weighted: u64 = stats
            .iter()
            .map(|m| m.cell_instances as u64 * m.instantiation_count)
            .sum();
        assert_eq!(weighted, top_total);
    }

    #[test]
    fn report_renders_every_module() {
        let design = small();
        let report = hierarchy_report(&design).unwrap();
        for m in design.modules() {
            assert!(report.contains(&m.name), "missing {}", m.name);
        }
    }

    #[test]
    fn children_precede_parents_in_report() {
        let report = hierarchy_report(&small()).unwrap();
        let col = report.find("col_").unwrap();
        let top = report.find("dcim_int").unwrap();
        assert!(col < top);
    }
}
