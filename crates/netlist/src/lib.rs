//! # sega-netlist — structural netlist IR and template-based DCIM generation
//!
//! The paper's template-based DCIM generator (§III-C) turns a chosen design
//! point into "the memory array, DCIM compute components, and digital
//! peripherals", emitting netlists that commercial tools then place and
//! route. This crate is that generator:
//!
//! * a hierarchical structural **netlist IR** ([`Design`], [`Module`],
//!   [`Instance`], [`Signal`]) with width-checked connections,
//! * **template generators** for every DCIM block of paper Fig. 3
//!   ([`generators`]) — compute unit, adder tree, shift accumulator, result
//!   fusion, FP pre-alignment, INT-to-FP converter, input buffer, SRAM
//!   column, and the full macro for both architectures,
//! * a **Verilog emitter** ([`verilog`]) producing a self-contained
//!   structural `.v` file (leaf cells included as behavioral primitives),
//! * a **gate-count audit** ([`stats`]) that recursively counts standard
//!   cells and cross-checks the generated hardware against the
//!   `sega-estimator` cost model — the generator and the estimator must
//!   agree exactly, which is tested.
//!
//! # Example
//!
//! ```
//! use sega_estimator::{DcimDesign, Precision};
//! use sega_netlist::{generators, stats, verilog};
//!
//! let design = DcimDesign::for_precision(Precision::Int8, 16, 8, 4, 2)?;
//! let netlist = generators::generate_macro(&design)?;
//! let counts = stats::cell_counts(&netlist)?;
//! assert!(counts[&sega_cells::StandardCell::Sram] == 16 * 8 * 4);
//!
//! let v = verilog::emit(&netlist)?;
//! assert!(v.contains("module "));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod generators;
pub mod hierarchy;
mod ir;
pub mod stats;
pub mod verilog;

pub use ir::{Design, Dir, Instance, InstanceTarget, Module, NetlistError, Port, Signal, Wire};
