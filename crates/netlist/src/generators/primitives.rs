//! Leaf-level module templates: ripple adder, mux-tree selector, barrel
//! shifter, NOR multiplier (paper Table II / Fig. 5 structures).

use super::GenResult;
use crate::ir::{Design, Module, Signal};
use sega_cells::{ceil_log2, StandardCell};

/// Ensures a `w`-bit carry-ripple adder module `add{w}` exists:
/// ports `a[w-1:0]`, `b[w-1:0]`, `sum[w:0]`; 1 HA + `w−1` FA.
///
/// # Errors
///
/// Propagates IR construction errors (which indicate a generator bug).
pub fn ensure_adder(design: &mut Design, w: u32) -> GenResult {
    assert!(w >= 1, "adder width must be >= 1");
    let name = format!("add{w}");
    if design.contains(&name) {
        return Ok(name);
    }
    let mut m = Module::new(&name);
    m.add_input("a", w)?;
    m.add_input("b", w)?;
    m.add_output("sum", w + 1)?;
    if w >= 2 {
        m.add_wire("c", w - 1)?;
    }
    // Bit 0: half adder.
    m.add_cell(
        "ha0",
        StandardCell::HalfAdder,
        vec![
            ("a", Signal::bit("a", 0)),
            ("b", Signal::bit("b", 0)),
            ("sum", Signal::bit("sum", 0)),
            (
                "cout",
                if w == 1 {
                    Signal::bit("sum", 1)
                } else {
                    Signal::bit("c", 0)
                },
            ),
        ],
    );
    // Bits 1..w: full adders rippling the carry; last carry is sum[w].
    for i in 1..w {
        let cout = if i == w - 1 {
            Signal::bit("sum", w)
        } else {
            Signal::bit("c", i)
        };
        m.add_cell(
            format!("fa{i}"),
            StandardCell::FullAdder,
            vec![
                ("a", Signal::bit("a", i)),
                ("b", Signal::bit("b", i)),
                ("cin", Signal::bit("c", i - 1)),
                ("sum", Signal::bit("sum", i)),
                ("cout", cout),
            ],
        );
    }
    design.add_module(m)?;
    Ok(name)
}

/// Ensures an `n`:1 single-bit selector module `sel{n}` exists (`n ≥ 2`):
/// ports `d[n-1:0]`, `sel[⌈log2 n⌉-1:0]`, `y`; a mux tree of `n−1` MUX2.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_selector(design: &mut Design, n: u32) -> GenResult {
    assert!(
        n >= 2,
        "selector needs at least 2 inputs (use a wire for 1)"
    );
    let name = format!("sel{n}");
    if design.contains(&name) {
        return Ok(name);
    }
    let sel_w = ceil_log2(n as u64);
    let mut m = Module::new(&name);
    m.add_input("d", n)?;
    m.add_input("sel", sel_w)?;
    m.add_output("y", 1)?;

    let mut level: Vec<Signal> = (0..n).map(|i| Signal::bit("d", i)).collect();
    let mut mux_id = 0u32;
    let mut depth = 0u32;
    while level.len() > 1 {
        let pairs = level.len() / 2;
        let mut next: Vec<Signal> = Vec::with_capacity(pairs + level.len() % 2);
        let wire = format!("l{depth}");
        if pairs > 0 {
            m.add_wire(&wire, pairs as u32)?;
        }
        for j in 0..pairs {
            m.add_cell(
                format!("mx{mux_id}"),
                StandardCell::Mux2,
                vec![
                    ("a", level[2 * j].clone()),
                    ("b", level[2 * j + 1].clone()),
                    ("sel", Signal::bit("sel", depth)),
                    ("y", Signal::bit(&wire, j as u32)),
                ],
            );
            mux_id += 1;
            next.push(Signal::bit(&wire, j as u32));
        }
        if level.len() % 2 == 1 {
            next.push(level.last().expect("nonempty level").clone());
        }
        level = next;
        depth += 1;
    }
    m.add_assign(Signal::net("y"), level.pop().expect("one survivor"));
    design.add_module(m)?;
    Ok(name)
}

/// Ensures a `w`-bit logical right barrel shifter module `shr{w}` exists
/// (`w ≥ 2`): ports `d[w-1:0]`, `amount[⌈log2 w⌉-1:0]`, `y[w-1:0]`.
///
/// Per Table II the shifter is `w` parallel `w`:1 selections (one per output
/// bit), each picking `d[i + amount]` with zero fill beyond the msb —
/// `w·(w−1)` MUX2 in total.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_shifter(design: &mut Design, w: u32) -> GenResult {
    assert!(w >= 2, "shifter width must be >= 2 (1-bit shift is a wire)");
    let name = format!("shr{w}");
    if design.contains(&name) {
        return Ok(name);
    }
    let sel = ensure_selector(design, w)?;
    let sel_w = ceil_log2(w as u64);
    let mut m = Module::new(&name);
    m.add_input("d", w)?;
    m.add_input("amount", sel_w)?;
    m.add_output("y", w)?;
    for i in 0..w {
        // Candidate bus for output bit i: candidate a is d[i+a] (0 beyond).
        let cand = format!("c{i}");
        m.add_wire(&cand, w)?;
        for a in 0..w {
            let src = if i + a < w {
                Signal::bit("d", i + a)
            } else {
                Signal::zeros(1)
            };
            m.add_assign(Signal::bit(&cand, a), src);
        }
        m.add_instance(
            format!("s{i}"),
            &sel,
            vec![
                ("d", Signal::net(&cand)),
                ("sel", Signal::net("amount")),
                ("y", Signal::bit("y", i)),
            ],
        );
    }
    design.add_module(m)?;
    Ok(name)
}

/// Ensures the 1-bit × `k`-bit NOR multiplier module `mul1x{k}` exists
/// (paper Fig. 5: `IN × W = INB NOR WB`): ports `xb[k-1:0]` (inverted input
/// bits), `wb` (inverted selected weight bit), `p[k-1:0]`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_multiplier(design: &mut Design, k: u32) -> GenResult {
    assert!(k >= 1, "multiplier width must be >= 1");
    let name = format!("mul1x{k}");
    if design.contains(&name) {
        return Ok(name);
    }
    let mut m = Module::new(&name);
    m.add_input("xb", k)?;
    m.add_input("wb", 1)?;
    m.add_output("p", k)?;
    for i in 0..k {
        m.add_cell(
            format!("n{i}"),
            StandardCell::Nor,
            vec![
                ("a", Signal::bit("xb", i)),
                ("b", Signal::net("wb")),
                ("y", Signal::bit("p", i)),
            ],
        );
    }
    design.add_module(m)?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::cell_counts_of_module;

    fn fresh() -> Design {
        Design::new()
    }

    #[test]
    fn adder_cell_inventory() {
        let mut d = fresh();
        let name = ensure_adder(&mut d, 8).unwrap();
        let counts = cell_counts_of_module(&d, &name).unwrap();
        assert_eq!(counts.get(&StandardCell::HalfAdder), Some(&1));
        assert_eq!(counts.get(&StandardCell::FullAdder), Some(&7));
    }

    #[test]
    fn adder_one_bit() {
        let mut d = fresh();
        let name = ensure_adder(&mut d, 1).unwrap();
        let counts = cell_counts_of_module(&d, &name).unwrap();
        assert_eq!(counts.get(&StandardCell::HalfAdder), Some(&1));
        assert_eq!(counts.get(&StandardCell::FullAdder), None);
    }

    #[test]
    fn adder_is_memoized() {
        let mut d = fresh();
        let a = ensure_adder(&mut d, 4).unwrap();
        let b = ensure_adder(&mut d, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(d.modules().len(), 1);
    }

    #[test]
    fn selector_uses_n_minus_one_muxes() {
        for n in [2u32, 3, 5, 8, 16, 33] {
            let mut d = fresh();
            let name = ensure_selector(&mut d, n).unwrap();
            let counts = cell_counts_of_module(&d, &name).unwrap();
            assert_eq!(
                counts.get(&StandardCell::Mux2),
                Some(&((n - 1) as u64)),
                "n={n}"
            );
        }
    }

    #[test]
    fn shifter_uses_w_selectors() {
        let w = 6u32;
        let mut d = fresh();
        let name = ensure_shifter(&mut d, w).unwrap();
        let counts = cell_counts_of_module(&d, &name).unwrap();
        assert_eq!(
            counts.get(&StandardCell::Mux2),
            Some(&((w * (w - 1)) as u64))
        );
    }

    #[test]
    fn multiplier_uses_k_nors() {
        let mut d = fresh();
        let name = ensure_multiplier(&mut d, 4).unwrap();
        let counts = cell_counts_of_module(&d, &name).unwrap();
        assert_eq!(counts.get(&StandardCell::Nor), Some(&4));
    }

    #[test]
    fn primitives_validate() {
        let mut d = fresh();
        ensure_adder(&mut d, 5).unwrap();
        ensure_selector(&mut d, 7).unwrap();
        let top = ensure_shifter(&mut d, 9).unwrap();
        ensure_multiplier(&mut d, 3).unwrap();
        d.set_top(top).unwrap();
        d.validate().unwrap();
    }
}
