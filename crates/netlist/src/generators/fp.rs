//! Floating-point periphery templates: FP pre-alignment and INT-to-FP
//! conversion (paper Fig. 3, right side).

use super::primitives::{ensure_adder, ensure_shifter};
use super::{zero_extend, GenResult};
use crate::ir::{Design, Module, Signal};
use sega_cells::{ceil_log2, StandardCell};

/// Ensures the FP pre-alignment module `palign_h{h}_be{be}_bm{bm}` exists:
/// an exponent max tree of `h−1` comparators (modeled as `be`-bit adders,
/// per the paper's comparator simplification), `h` exponent-offset
/// subtractors, and `h` mantissa barrel shifters. Ports: `xe[h*be-1:0]`,
/// `xm[h*bm-1:0]`, `xma[h*bm-1:0]`, `xemax[be-1:0]`.
///
/// Behavioral note: the paper's cost model reduces the comparator to an
/// adder without the max-select mux, and this template follows the same
/// abstraction — the max tree's *selection* is represented by pass-through
/// wiring while its *logic cost* is the comparator chain. The bit-accurate
/// max/align behaviour is implemented (and verified) in `sega-sim`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_pre_alignment(design: &mut Design, h: u32, be: u32, bm: u32) -> GenResult {
    assert!(h >= 1 && be >= 1 && bm >= 2, "invalid pre-alignment shape");
    let name = format!("palign_h{h}_be{be}_bm{bm}");
    if design.contains(&name) {
        return Ok(name);
    }
    let adder = ensure_adder(design, be)?;
    let shifter = ensure_shifter(design, bm)?;
    let amt_w = ceil_log2(bm as u64);
    let mut m = Module::new(&name);
    m.add_input("xe", h * be)?;
    m.add_input("xm", h * bm)?;
    m.add_output("xma", h * bm)?;
    m.add_output("xemax", be)?;

    // Exponent max tree: pairwise comparator reduction. Each comparator is
    // a be-bit adder (paper Table II); the winning operand is passed through
    // by wiring (see the module docs).
    let mut level: Vec<Signal> = (0..h)
        .map(|i| Signal::slice("xe", (i + 1) * be - 1, i * be))
        .collect();
    let mut depth = 0u32;
    let mut cmp_id = 0u32;
    while level.len() > 1 {
        let pairs = level.len() / 2;
        let mut next = Vec::with_capacity(pairs + level.len() % 2);
        for j in 0..pairs {
            let wire = format!("cmp{depth}_{j}");
            m.add_wire(&wire, be + 1)?;
            m.add_instance(
                format!("c{cmp_id}"),
                &adder,
                vec![
                    ("a", level[2 * j].clone()),
                    ("b", level[2 * j + 1].clone()),
                    ("sum", Signal::net(&wire)),
                ],
            );
            cmp_id += 1;
            // The larger operand propagates; structurally we carry the
            // first operand's wiring (selection is abstracted, see docs).
            next.push(level[2 * j].clone());
        }
        if level.len() % 2 == 1 {
            next.push(level.last().expect("odd operand").clone());
        }
        level = next;
        depth += 1;
    }
    m.add_assign(Signal::net("xemax"), level.pop().expect("max survivor"));

    // Per-input offset subtractor and mantissa shifter.
    for i in 0..h {
        let diff = format!("off{i}");
        m.add_wire(&diff, be + 1)?;
        m.add_instance(
            format!("sub{i}"),
            &adder,
            vec![
                ("a", Signal::net("xemax")),
                ("b", Signal::slice("xe", (i + 1) * be - 1, i * be)),
                ("sum", Signal::net(&diff)),
            ],
        );
        let amount = if amt_w <= be {
            Signal::slice(&diff, amt_w - 1, 0)
        } else {
            zero_extend(Signal::slice(&diff, be - 1, 0), be, amt_w)
        };
        m.add_instance(
            format!("sh{i}"),
            &shifter,
            vec![
                ("d", Signal::slice("xm", (i + 1) * bm - 1, i * bm)),
                ("amount", amount),
                ("y", Signal::slice("xma", (i + 1) * bm - 1, i * bm)),
            ],
        );
    }
    design.add_module(m)?;
    Ok(name)
}

/// Ensures the INT-to-FP converter `i2f_br{br}_be{be}` exists: a
/// leading-one detector over the `br`-bit array result (an OR reduction
/// chain, `br` OR gates), a `br`-bit normalizing barrel shifter, and a
/// `(be+1)`-bit exponent adder. Ports: `d[br-1:0]`, `ebase[be:0]`,
/// `ym[br-1:0]`, `ye[be+1:0]`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_int_to_fp(design: &mut Design, br: u32, be: u32) -> GenResult {
    assert!(br >= 2 && be >= 1, "invalid converter shape");
    let name = format!("i2f_br{br}_be{be}");
    if design.contains(&name) {
        return Ok(name);
    }
    let shifter = ensure_shifter(design, br)?;
    let eadder = ensure_adder(design, be + 1)?;
    let amt_w = ceil_log2(br as u64);
    let mut m = Module::new(&name);
    m.add_input("d", br)?;
    m.add_input("ebase", be + 1)?;
    m.add_output("ym", br)?;
    m.add_output("ye", be + 2)?;
    // Leading-one detection: OR prefix chain from the MSB (`br` OR gates,
    // the MSB gate folding in a constant 0).
    m.add_wire("pre", br)?;
    m.add_cell(
        format!("or{}", br - 1),
        StandardCell::Or,
        vec![
            ("a", Signal::bit("d", br - 1)),
            ("b", Signal::zeros(1)),
            ("y", Signal::bit("pre", br - 1)),
        ],
    );
    for i in (0..br - 1).rev() {
        m.add_cell(
            format!("or{i}"),
            StandardCell::Or,
            vec![
                ("a", Signal::bit("d", i)),
                ("b", Signal::bit("pre", i + 1)),
                ("y", Signal::bit("pre", i)),
            ],
        );
    }
    // Normalizing shift (amount wired from the prefix's low bits; exact
    // priority encoding is behavioral, see module docs on `palign`).
    m.add_instance(
        "norm0",
        &shifter,
        vec![
            ("d", Signal::net("d")),
            ("amount", Signal::slice("pre", amt_w - 1, 0)),
            ("y", Signal::net("ym")),
        ],
    );
    // Exponent adjustment.
    m.add_instance(
        "eadj0",
        &eadder,
        vec![
            ("a", Signal::net("ebase")),
            (
                "b",
                zero_extend(Signal::slice("pre", amt_w - 1, 0), amt_w, be + 1),
            ),
            ("sum", Signal::net("ye")),
        ],
    );
    design.add_module(m)?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::unit_cost_of_module;
    use sega_estimator::components;

    const EPS: f64 = 1e-6;

    #[test]
    fn pre_alignment_matches_cost_model() {
        for (h, be, bm) in [(2u32, 4u32, 4u32), (128, 8, 8), (64, 5, 11), (100, 8, 24)] {
            let mut d = Design::new();
            let name = ensure_pre_alignment(&mut d, h, be, bm).unwrap();
            let cost = unit_cost_of_module(&d, &name).unwrap();
            let model = components::pre_alignment(h, be, bm);
            assert!(
                (cost.area - model.area).abs() < EPS,
                "h={h} be={be} bm={bm}: {} vs {}",
                cost.area,
                model.area
            );
            assert!((cost.energy - model.energy).abs() < EPS);
        }
    }

    #[test]
    fn int_to_fp_matches_cost_model() {
        for (br, be) in [(16u32, 4u32), (23, 8), (59, 8)] {
            let mut d = Design::new();
            let name = ensure_int_to_fp(&mut d, br, be).unwrap();
            let cost = unit_cost_of_module(&d, &name).unwrap();
            let model = components::int_to_fp_converter(br, be);
            assert!(
                (cost.area - model.area).abs() < EPS,
                "br={br} be={be}: {} vs {}",
                cost.area,
                model.area
            );
        }
    }

    #[test]
    fn fp_blocks_validate() {
        let mut d = Design::new();
        ensure_pre_alignment(&mut d, 16, 8, 8).unwrap();
        let top = ensure_int_to_fp(&mut d, 23, 8).unwrap();
        d.set_top(top).unwrap();
        d.validate().unwrap();
    }
}
