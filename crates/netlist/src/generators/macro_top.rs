//! Column and whole-macro templates: the memory array plus compute
//! components assembled into the synthesizable DCIM of paper Fig. 3.

use super::datapath::{
    ensure_adder_tree, ensure_compute_unit, ensure_input_buffer, ensure_result_fusion,
    ensure_shift_accumulator, tree_output_width,
};
use super::fp::{ensure_int_to_fp, ensure_pre_alignment};
use super::GenResult;
use crate::ir::{Design, Module, NetlistError, Signal};
use sega_cells::{ceil_log2, StandardCell};
use sega_estimator::{DcimDesign, FpParams, IntParams};

/// Ensures one DCIM array column `col_h{h}_l{l}_k{k}_bx{bx}` exists:
/// `h·l` SRAM bit cells, `h` compute units, one adder tree and one shift
/// accumulator (paper Fig. 3, "Column N"). Ports: `xb[h*k-1:0]`,
/// `wsel`, `clk`, `wdata`, `wl[h*l-1:0]`, `q[bx+⌈log2 h⌉-1:0]`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_column(design: &mut Design, h: u32, l: u32, k: u32, bx: u32) -> GenResult {
    let name = format!("col_h{h}_l{l}_k{k}_bx{bx}");
    if design.contains(&name) {
        return Ok(name);
    }
    let cu = ensure_compute_unit(design, l, k)?;
    let tree = ensure_adder_tree(design, h, k)?;
    let din = tree_output_width(h, k);
    let acc = ensure_shift_accumulator(design, bx, h, k, din)?;
    let wsel_w = ceil_log2(l as u64).max(1);
    let qw = bx + ceil_log2(h as u64);

    let mut m = Module::new(&name);
    m.add_input("xb", h * k)?;
    m.add_input("wsel", wsel_w)?;
    m.add_input("clk", 1)?;
    m.add_input("wdata", 1)?;
    m.add_input("wl", h * l)?;
    m.add_output("q", qw)?;
    m.add_wire("wq", h * l)?;
    m.add_wire("pr", h * k)?;
    m.add_wire("tsum", din)?;

    // The memory array: L weight bits hard-wired into each compute unit.
    for i in 0..(h * l) {
        m.add_cell(
            format!("sram{i}"),
            StandardCell::Sram,
            vec![
                ("d", Signal::net("wdata")),
                ("wl", Signal::bit("wl", i)),
                ("q", Signal::bit("wq", i)),
            ],
        );
    }
    // One compute unit per row.
    for r in 0..h {
        m.add_instance(
            format!("cu{r}"),
            &cu,
            vec![
                ("w", Signal::slice("wq", (r + 1) * l - 1, r * l)),
                ("wsel", Signal::net("wsel")),
                ("xb", Signal::slice("xb", (r + 1) * k - 1, r * k)),
                ("p", Signal::slice("pr", (r + 1) * k - 1, r * k)),
            ],
        );
    }
    m.add_instance(
        "tree0",
        &tree,
        vec![("d", Signal::net("pr")), ("y", Signal::net("tsum"))],
    );
    m.add_instance(
        "acc0",
        &acc,
        vec![
            ("d", Signal::net("tsum")),
            ("clk", Signal::net("clk")),
            ("q", Signal::net("q")),
        ],
    );
    design.add_module(m)?;
    Ok(name)
}

/// Generates the complete hierarchical netlist for a DCIM design point —
/// the paper's template-based generator step. Returns a validated
/// [`Design`] whose top module is the macro.
///
/// # Errors
///
/// Propagates IR construction/validation errors (which indicate a template
/// bug, not a user error: any [`DcimDesign`] that passed parameter
/// validation generates successfully).
///
/// # Example
///
/// ```
/// use sega_estimator::{DcimDesign, Precision};
/// use sega_netlist::generators::generate_macro;
///
/// let d = DcimDesign::for_precision(Precision::Int8, 16, 8, 4, 2)?;
/// let netlist = generate_macro(&d)?;
/// assert!(netlist.top()?.name.starts_with("dcim_int"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generate_macro(design_point: &DcimDesign) -> Result<Design, NetlistError> {
    design_point
        .validate()
        .expect("generate_macro requires a validated design point");
    let mut d = Design::new();
    let top = match design_point {
        DcimDesign::Int(p) => generate_int_macro(&mut d, p)?,
        DcimDesign::Fp(p) => generate_fp_macro(&mut d, p)?,
    };
    d.set_top(top)?;
    d.validate()?;
    Ok(d)
}

fn generate_int_macro(d: &mut Design, p: &IntParams) -> GenResult {
    let IntParams { n, h, l, k, bw, bx } = *p;
    let name = format!("dcim_int_n{n}_h{h}_l{l}_k{k}_bw{bw}_bx{bx}");
    if d.contains(&name) {
        return Ok(name);
    }
    let ibuf = ensure_input_buffer(d, h, bx, k)?;
    let col = ensure_column(d, h, l, k, bx)?;
    let fuse = ensure_result_fusion(d, bw, bx, h)?;

    let chunks = bx.div_ceil(k);
    let phase_w = ceil_log2(chunks as u64).max(1);
    let wsel_w = ceil_log2(l as u64).max(1);
    let qw = bx + ceil_log2(h as u64);
    let wf = qw + bw;
    let groups = n / bw;

    let mut m = Module::new(&name);
    m.add_input("xin", h * bx)?;
    m.add_input("clk", 1)?;
    m.add_input("phase", phase_w)?;
    m.add_input("wsel", wsel_w)?;
    m.add_input("wdata", 1)?;
    m.add_input("wl", h * l)?;
    m.add_output("y", groups * wf)?;
    m.add_wire("xb", h * k)?;
    m.add_wire("colq", n * qw)?;

    m.add_instance(
        "ibuf0",
        &ibuf,
        vec![
            ("d", Signal::net("xin")),
            ("clk", Signal::net("clk")),
            ("phase", Signal::net("phase")),
            ("q", Signal::net("xb")),
        ],
    );
    for c in 0..n {
        m.add_instance(
            format!("col{c}"),
            &col,
            vec![
                ("xb", Signal::net("xb")),
                ("wsel", Signal::net("wsel")),
                ("clk", Signal::net("clk")),
                ("wdata", Signal::net("wdata")),
                ("wl", Signal::net("wl")),
                ("q", Signal::slice("colq", (c + 1) * qw - 1, c * qw)),
            ],
        );
    }
    for g in 0..groups {
        m.add_instance(
            format!("fuse{g}"),
            &fuse,
            vec![
                (
                    "d",
                    Signal::slice("colq", (g + 1) * bw * qw - 1, g * bw * qw),
                ),
                ("y", Signal::slice("y", (g + 1) * wf - 1, g * wf)),
            ],
        );
    }
    d.add_module(m)?;
    Ok(name)
}

fn generate_fp_macro(d: &mut Design, p: &FpParams) -> GenResult {
    let FpParams { n, h, l, k, be, bm } = *p;
    let name = format!("dcim_fp_n{n}_h{h}_l{l}_k{k}_be{be}_bm{bm}");
    if d.contains(&name) {
        return Ok(name);
    }
    let palign = ensure_pre_alignment(d, h, be, bm)?;
    let ibuf = ensure_input_buffer(d, h, bm, k)?;
    let col = ensure_column(d, h, l, k, bm)?;
    let fuse = ensure_result_fusion(d, bm, bm, h)?;
    let br = p.result_bits();
    let i2f = ensure_int_to_fp(d, br, be)?;

    let chunks = bm.div_ceil(k);
    let phase_w = ceil_log2(chunks as u64).max(1);
    let wsel_w = ceil_log2(l as u64).max(1);
    let qw = bm + ceil_log2(h as u64);
    let groups = n / bm;

    let mut m = Module::new(&name);
    m.add_input("xe", h * be)?;
    m.add_input("xm", h * bm)?;
    m.add_input("clk", 1)?;
    m.add_input("phase", phase_w)?;
    m.add_input("wsel", wsel_w)?;
    m.add_input("wdata", 1)?;
    m.add_input("wl", h * l)?;
    m.add_input("ebase", be + 1)?;
    m.add_output("xemax", be)?;
    m.add_output("ym", groups * br)?;
    m.add_output("ye", groups * (be + 2))?;
    m.add_wire("xma", h * bm)?;
    m.add_wire("xb", h * k)?;
    m.add_wire("colq", n * qw)?;
    m.add_wire("fused", groups * br)?;

    m.add_instance(
        "palign0",
        &palign,
        vec![
            ("xe", Signal::net("xe")),
            ("xm", Signal::net("xm")),
            ("xma", Signal::net("xma")),
            ("xemax", Signal::net("xemax")),
        ],
    );
    m.add_instance(
        "ibuf0",
        &ibuf,
        vec![
            ("d", Signal::net("xma")),
            ("clk", Signal::net("clk")),
            ("phase", Signal::net("phase")),
            ("q", Signal::net("xb")),
        ],
    );
    for c in 0..n {
        m.add_instance(
            format!("col{c}"),
            &col,
            vec![
                ("xb", Signal::net("xb")),
                ("wsel", Signal::net("wsel")),
                ("clk", Signal::net("clk")),
                ("wdata", Signal::net("wdata")),
                ("wl", Signal::net("wl")),
                ("q", Signal::slice("colq", (c + 1) * qw - 1, c * qw)),
            ],
        );
    }
    for g in 0..groups {
        m.add_instance(
            format!("fuse{g}"),
            &fuse,
            vec![
                (
                    "d",
                    Signal::slice("colq", (g + 1) * bm * qw - 1, g * bm * qw),
                ),
                ("y", Signal::slice("fused", (g + 1) * br - 1, g * br)),
            ],
        );
        m.add_instance(
            format!("i2f{g}"),
            &i2f,
            vec![
                ("d", Signal::slice("fused", (g + 1) * br - 1, g * br)),
                ("ebase", Signal::net("ebase")),
                ("ym", Signal::slice("ym", (g + 1) * br - 1, g * br)),
                (
                    "ye",
                    Signal::slice("ye", (g + 1) * (be + 2) - 1, g * (be + 2)),
                ),
            ],
        );
    }
    d.add_module(m)?;
    Ok(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{cell_counts, unit_cost_of_module};
    use sega_estimator::Precision;

    #[test]
    fn column_validates_and_counts_sram() {
        let mut d = Design::new();
        let name = ensure_column(&mut d, 8, 4, 2, 8).unwrap();
        d.set_top(name.clone()).unwrap();
        d.validate().unwrap();
        let counts = crate::stats::cell_counts_of_module(&d, &name).unwrap();
        assert_eq!(counts.get(&StandardCell::Sram), Some(&32));
    }

    #[test]
    fn int_macro_generates_and_validates() {
        let dp = DcimDesign::for_precision(Precision::Int8, 16, 8, 4, 2).unwrap();
        let netlist = generate_macro(&dp).unwrap();
        let counts = cell_counts(&netlist).unwrap();
        assert_eq!(counts.get(&StandardCell::Sram), Some(&(16 * 8 * 4)));
    }

    #[test]
    fn fp_macro_generates_and_validates() {
        let dp = DcimDesign::for_precision(Precision::Bf16, 16, 8, 4, 2).unwrap();
        let netlist = generate_macro(&dp).unwrap();
        assert!(netlist.top().unwrap().name.starts_with("dcim_fp"));
        let counts = cell_counts(&netlist).unwrap();
        // FP macro must contain OR gates (leading-one detectors).
        assert!(counts.get(&StandardCell::Or).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn int_macro_area_matches_estimator_exactly() {
        use sega_estimator::{estimate, OperatingConditions};
        let dp = DcimDesign::for_precision(Precision::Int8, 16, 16, 8, 4).unwrap();
        let netlist = generate_macro(&dp).unwrap();
        let top = netlist.top().unwrap().name.clone();
        let cost = unit_cost_of_module(&netlist, &top).unwrap();
        let est = estimate(
            &dp,
            &sega_cells::Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        );
        let rel = (cost.area - est.unit.area).abs() / est.unit.area;
        assert!(
            rel < 1e-9,
            "netlist area {} vs estimator {} (rel err {rel})",
            cost.area,
            est.unit.area
        );
    }
}
