//! Template-based DCIM generators (paper §III-C and Fig. 3).
//!
//! Each generator builds (and memoizes, by deterministic name) one module of
//! the synthesizable DCIM architecture. The cell inventory of every template
//! **matches the `sega-estimator` cost model exactly** — `stats::audit`
//! cross-checks this — so the estimator the design space explorer optimizes
//! with is provably the hardware the generator emits.
//!
//! Where the paper's model abstracts a block (the exponent max tree is
//! modeled as comparators only; the INT-to-FP leading-zero count is an OR
//! reduction), the generated topology follows the same abstraction and the
//! bit-accurate behaviour lives in `sega-sim` instead; these points are
//! documented on the individual generators.

mod datapath;
mod fp;
mod macro_top;
mod primitives;

pub use datapath::{
    ensure_adder_tree, ensure_compute_unit, ensure_input_buffer, ensure_result_fusion,
    ensure_shift_accumulator,
};
pub use fp::{ensure_int_to_fp, ensure_pre_alignment};
pub use macro_top::{ensure_column, generate_macro};
pub use primitives::{ensure_adder, ensure_multiplier, ensure_selector, ensure_shifter};

use crate::ir::{NetlistError, Signal};

/// Pads `signal` (of width `from`) with zeros up to `to` bits.
///
/// # Panics
///
/// Panics if `to < from`.
pub(crate) fn zero_extend(signal: Signal, from: u32, to: u32) -> Signal {
    assert!(to >= from, "cannot zero-extend {from} bits down to {to}");
    if to == from {
        signal
    } else {
        Signal::Concat(vec![Signal::zeros(to - from), signal])
    }
}

/// A constant that fits in `width` bits (masking off high bits, which only
/// occurs in degenerate single-chunk configurations).
pub(crate) fn fitted_const(width: u32, value: u64) -> Signal {
    let masked = if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    };
    Signal::Const {
        width,
        value: masked,
    }
}

/// Shorthand for the `Result` the generators return.
pub(crate) type GenResult = Result<String, NetlistError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_extend_identity() {
        let s = Signal::zeros(4);
        assert_eq!(zero_extend(s.clone(), 4, 4), s);
    }

    #[test]
    fn zero_extend_pads_msbs() {
        let s = zero_extend(Signal::net("x"), 4, 6);
        match s {
            Signal::Concat(parts) => {
                assert_eq!(parts[0], Signal::zeros(2));
                assert_eq!(parts[1], Signal::net("x"));
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot zero-extend")]
    fn zero_extend_rejects_shrink() {
        let _ = zero_extend(Signal::zeros(8), 8, 4);
    }

    #[test]
    fn fitted_const_masks() {
        assert_eq!(fitted_const(2, 7), Signal::Const { width: 2, value: 3 });
        assert_eq!(fitted_const(8, 7), Signal::Const { width: 8, value: 7 });
    }
}
