//! Datapath block templates: compute unit, adder tree, shift accumulator,
//! result fusion and input buffer (paper Fig. 3, left side).

use super::primitives::{ensure_adder, ensure_multiplier, ensure_selector, ensure_shifter};
use super::{fitted_const, zero_extend, GenResult};
use crate::ir::{Design, Module, NetlistError, Signal};
use sega_cells::{ceil_log2, StandardCell};

/// Ensures the compute unit `cu_l{l}_k{k}` exists (paper Fig. 5): an `L`:1
/// weight-bit selection gate feeding a 1-bit × `k`-bit NOR multiplier.
/// Ports: `w[l-1:0]` (inverted stored weight bits), `wsel[⌈log2 l⌉-1:0]`,
/// `xb[k-1:0]` (inverted input bits), `p[k-1:0]`.
///
/// For `l == 1` the selection gate degenerates to a wire (no MUX2 cells),
/// matching the cost model's `sel(1) = 0`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_compute_unit(design: &mut Design, l: u32, k: u32) -> GenResult {
    let name = format!("cu_l{l}_k{k}");
    if design.contains(&name) {
        return Ok(name);
    }
    let mul = ensure_multiplier(design, k)?;
    let sel = if l >= 2 {
        Some(ensure_selector(design, l)?)
    } else {
        None
    };
    let mut m = Module::new(&name);
    m.add_input("w", l)?;
    let sel_w = ceil_log2(l as u64).max(1);
    m.add_input("wsel", sel_w)?;
    m.add_input("xb", k)?;
    m.add_output("p", k)?;
    m.add_wire("wbit", 1)?;
    match sel {
        Some(sel) => {
            m.add_instance(
                "wsel0",
                &sel,
                vec![
                    ("d", Signal::net("w")),
                    ("sel", Signal::slice("wsel", ceil_log2(l as u64) - 1, 0)),
                    ("y", Signal::net("wbit")),
                ],
            );
        }
        None => m.add_assign(Signal::net("wbit"), Signal::net("w")),
    }
    m.add_instance(
        "mul0",
        &mul,
        vec![
            ("xb", Signal::net("xb")),
            ("wb", Signal::net("wbit")),
            ("p", Signal::net("p")),
        ],
    );
    design.add_module(m)?;
    Ok(name)
}

/// Ensures the adder tree `atree_h{h}_k{k}` exists: pairwise reduction of
/// `h` operands of `k` bits, one-bit width growth per level. Ports:
/// `d[h*k-1:0]`, `y[wout-1:0]` with `wout = k + ⌈log2 h⌉`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_adder_tree(design: &mut Design, h: u32, k: u32) -> GenResult {
    assert!(h >= 1 && k >= 1, "tree needs h >= 1, k >= 1");
    let name = format!("atree_h{h}_k{k}");
    if design.contains(&name) {
        return Ok(name);
    }
    let wout = k + ceil_log2(h as u64);
    let mut m = Module::new(&name);
    m.add_input("d", h * k)?;
    m.add_output("y", wout)?;

    // Current operands: (signal, width). All operands at a level share the
    // same width; an odd operand is zero-padded one bit when carried up.
    let mut operands: Vec<Signal> = (0..h)
        .map(|i| Signal::slice("d", (i + 1) * k - 1, i * k))
        .collect();
    let mut width = k;
    let mut level = 0u32;
    while operands.len() > 1 {
        let adder = ensure_adder(design, width)?;
        let m_ref = &mut m;
        let pairs = operands.len() / 2;
        let mut next: Vec<Signal> = Vec::with_capacity(pairs + operands.len() % 2);
        for j in 0..pairs {
            let wire = format!("t{level}_{j}");
            m_ref.add_wire(&wire, width + 1)?;
            m_ref.add_instance(
                format!("a{level}_{j}"),
                &adder,
                vec![
                    ("a", operands[2 * j].clone()),
                    ("b", operands[2 * j + 1].clone()),
                    ("sum", Signal::net(&wire)),
                ],
            );
            next.push(Signal::net(&wire));
        }
        if operands.len() % 2 == 1 {
            next.push(zero_extend(
                operands.last().expect("odd operand").clone(),
                width,
                width + 1,
            ));
        }
        operands = next;
        width += 1;
        level += 1;
    }
    let result = operands.pop().expect("one result");
    m.add_assign(Signal::net("y"), zero_extend(result, width, wout));
    design.add_module(m)?;
    Ok(name)
}

/// Ensures the shift accumulator `sacc_bx{bx}_h{h}` exists (paper: "it
/// requires `(Bx + log2 H)` registers, one shifter, and one adder" of that
/// width). Ports: `d[din-1:0]` (adder-tree output), `clk`, `q[w-1:0]` with
/// `w = bx + ⌈log2 h⌉`; the shift amount is hard-wired to the per-cycle
/// input chunk width `k`.
///
/// # Errors
///
/// Propagates IR construction errors; `din` must not exceed `w`.
pub fn ensure_shift_accumulator(
    design: &mut Design,
    bx: u32,
    h: u32,
    k: u32,
    din: u32,
) -> GenResult {
    let w = bx + ceil_log2(h as u64);
    assert!(din <= w, "tree output ({din}) must fit accumulator ({w})");
    let name = format!("sacc_bx{bx}_h{h}_k{k}");
    if design.contains(&name) {
        return Ok(name);
    }
    let shifter = if w >= 2 {
        Some(ensure_shifter(design, w)?)
    } else {
        None
    };
    let adder = ensure_adder(design, w)?;
    let mut m = Module::new(&name);
    m.add_input("d", din)?;
    m.add_input("clk", 1)?;
    m.add_output("q", w)?;
    m.add_wire("shifted", w)?;
    m.add_wire("sum", w + 1)?;
    // Register bank.
    for i in 0..w {
        m.add_cell(
            format!("r{i}"),
            StandardCell::Dff,
            vec![
                ("d", Signal::bit("sum", i)),
                ("clk", Signal::net("clk")),
                ("q", Signal::bit("q", i)),
            ],
        );
    }
    // Shift the accumulated value by the chunk width each cycle.
    match shifter {
        Some(shifter) => {
            let amt_w = ceil_log2(w as u64);
            m.add_instance(
                "sh0",
                &shifter,
                vec![
                    ("d", Signal::net("q")),
                    ("amount", fitted_const(amt_w, k as u64)),
                    ("y", Signal::net("shifted")),
                ],
            );
        }
        None => m.add_assign(Signal::net("shifted"), Signal::net("q")),
    }
    // Accumulate the incoming partial sum.
    m.add_instance(
        "acc0",
        &adder,
        vec![
            ("a", Signal::net("shifted")),
            ("b", zero_extend(Signal::net("d"), din, w)),
            ("sum", Signal::net("sum")),
        ],
    );
    design.add_module(m)?;
    Ok(name)
}

/// Ensures the result fusion unit `fuse_bw{bw}_bx{bx}_h{h}` exists: the
/// weighted (hard-wired shift) summation of `bw` accumulator outputs of
/// `bx + ⌈log2 h⌉` bits into one `w`-bit result,
/// `w = bx + ⌈log2 h⌉ + bw`, using `bw − 1` adders of width `w` in a tree.
/// Ports: `d[bw*win-1:0]`, `y[w-1:0]`.
///
/// For `bw == 1` the module is a zero-padding wire (no cells), matching the
/// cost model.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_result_fusion(design: &mut Design, bw: u32, bx: u32, h: u32) -> GenResult {
    assert!(bw >= 1, "fusion needs at least one column");
    let name = format!("fuse_bw{bw}_bx{bx}_h{h}");
    if design.contains(&name) {
        return Ok(name);
    }
    let win = bx + ceil_log2(h as u64);
    let w = win + bw;
    let mut m = Module::new(&name);
    m.add_input("d", bw * win)?;
    m.add_output("y", w)?;

    // Operand j is the column-j result left-shifted by its bit position
    // (hard-wired), zero-padded to the fused width.
    let mut operands: Vec<Signal> = (0..bw)
        .map(|j| {
            let body = Signal::slice("d", (j + 1) * win - 1, j * win);
            let mut parts = Vec::new();
            if w > win + j {
                parts.push(Signal::zeros(w - win - j));
            }
            parts.push(body);
            if j > 0 {
                parts.push(Signal::zeros(j));
            }
            if parts.len() == 1 {
                parts.pop().expect("one part")
            } else {
                Signal::Concat(parts)
            }
        })
        .collect();

    if bw == 1 {
        m.add_assign(Signal::net("y"), operands.pop().expect("single operand"));
        design.add_module(m)?;
        return Ok(name);
    }

    let adder = ensure_adder(design, w)?;
    let mut level = 0u32;
    while operands.len() > 1 {
        let pairs = operands.len() / 2;
        let mut next = Vec::with_capacity(pairs + operands.len() % 2);
        for j in 0..pairs {
            let wire = format!("f{level}_{j}");
            m.add_wire(&wire, w + 1)?;
            m.add_instance(
                format!("fa{level}_{j}"),
                &adder,
                vec![
                    ("a", operands[2 * j].clone()),
                    ("b", operands[2 * j + 1].clone()),
                    ("sum", Signal::net(&wire)),
                ],
            );
            // Truncate the carry: fused width is the full precision already.
            next.push(Signal::slice(&wire, w - 1, 0));
        }
        if operands.len() % 2 == 1 {
            next.push(operands.last().expect("odd operand").clone());
        }
        operands = next;
        level += 1;
    }
    m.add_assign(Signal::net("y"), operands.pop().expect("one result"));
    design.add_module(m)?;
    Ok(name)
}

/// Ensures the input buffer `ibuf_h{h}_bx{bx}_k{k}` exists: an `h·bx`-bit
/// register file plus, per emitted bit, a `⌈bx/k⌉`:1 chunk selector walking
/// the stored bits cycle by cycle. Ports: `d[h*bx-1:0]`, `clk`,
/// `phase[⌈log2 chunks⌉-1:0]`, `q[h*k-1:0]`.
///
/// # Errors
///
/// Propagates IR construction errors.
pub fn ensure_input_buffer(design: &mut Design, h: u32, bx: u32, k: u32) -> GenResult {
    assert!(
        h >= 1 && bx >= 1 && k >= 1 && k <= bx,
        "invalid buffer shape"
    );
    let name = format!("ibuf_h{h}_bx{bx}_k{k}");
    if design.contains(&name) {
        return Ok(name);
    }
    let chunks = bx.div_ceil(k);
    let phase_w = ceil_log2(chunks as u64).max(1);
    let sel = if chunks >= 2 {
        Some(ensure_selector(design, chunks)?)
    } else {
        None
    };
    let mut m = Module::new(&name);
    m.add_input("d", h * bx)?;
    m.add_input("clk", 1)?;
    m.add_input("phase", phase_w)?;
    m.add_output("q", h * k)?;
    m.add_wire("held", h * bx)?;
    for i in 0..(h * bx) {
        m.add_cell(
            format!("r{i}"),
            StandardCell::Dff,
            vec![
                ("d", Signal::bit("d", i)),
                ("clk", Signal::net("clk")),
                ("q", Signal::bit("held", i)),
            ],
        );
    }
    for row in 0..h {
        for j in 0..k {
            let out_bit = row * k + j;
            match &sel {
                Some(sel) => {
                    let cand = format!("c{out_bit}");
                    m.add_wire(&cand, chunks)?;
                    for c in 0..chunks {
                        let src_bit = c * k + j;
                        let src = if src_bit < bx {
                            Signal::bit("held", row * bx + src_bit)
                        } else {
                            Signal::zeros(1)
                        };
                        m.add_assign(Signal::bit(&cand, c), src);
                    }
                    m.add_instance(
                        format!("s{out_bit}"),
                        sel,
                        vec![
                            ("d", Signal::net(&cand)),
                            (
                                "sel",
                                Signal::slice("phase", ceil_log2(chunks as u64) - 1, 0),
                            ),
                            ("y", Signal::bit("q", out_bit)),
                        ],
                    );
                }
                None => {
                    m.add_assign(Signal::bit("q", out_bit), Signal::bit("held", row * bx + j));
                }
            }
        }
    }
    design.add_module(m)?;
    Ok(name)
}

/// Helper: the adder-tree output width for `h` operands of `k` bits.
pub(crate) fn tree_output_width(h: u32, k: u32) -> u32 {
    k + ceil_log2(h as u64)
}

#[allow(dead_code)]
fn unused(_: NetlistError) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{cell_counts_of_module, unit_cost_of_module};
    use sega_estimator::components;

    const EPS: f64 = 1e-6;

    #[test]
    fn compute_unit_matches_cost_model() {
        let (l, k) = (16u32, 4u32);
        let mut d = Design::new();
        let name = ensure_compute_unit(&mut d, l, k).unwrap();
        let cost = unit_cost_of_module(&d, &name).unwrap();
        let model = sega_cells::modules::selector(l).then(sega_cells::modules::multiplier(k));
        assert!((cost.area - model.area).abs() < EPS);
        assert!((cost.energy - model.energy).abs() < EPS);
    }

    #[test]
    fn compute_unit_l1_has_no_muxes() {
        let mut d = Design::new();
        let name = ensure_compute_unit(&mut d, 1, 4).unwrap();
        let counts = cell_counts_of_module(&d, &name).unwrap();
        assert_eq!(counts.get(&StandardCell::Mux2), None);
        assert_eq!(counts.get(&StandardCell::Nor), Some(&4));
    }

    #[test]
    fn adder_tree_matches_cost_model() {
        for (h, k) in [(2u32, 4u32), (8, 2), (128, 4), (100, 3)] {
            let mut d = Design::new();
            let name = ensure_adder_tree(&mut d, h, k).unwrap();
            let cost = unit_cost_of_module(&d, &name).unwrap();
            let model = components::adder_tree(h, k);
            assert!(
                (cost.area - model.area).abs() < EPS,
                "h={h} k={k}: {} vs {}",
                cost.area,
                model.area
            );
            assert!((cost.energy - model.energy).abs() < EPS);
        }
    }

    #[test]
    fn shift_accumulator_matches_cost_model() {
        let (bx, h, k) = (8u32, 128u32, 4u32);
        let mut d = Design::new();
        let din = tree_output_width(h, k);
        let name = ensure_shift_accumulator(&mut d, bx, h, k, din).unwrap();
        let cost = unit_cost_of_module(&d, &name).unwrap();
        let model = components::shift_accumulator(bx, h);
        assert!((cost.area - model.area).abs() < EPS);
        assert!((cost.energy - model.energy).abs() < EPS);
    }

    #[test]
    fn result_fusion_matches_cost_model() {
        for bw in [1u32, 2, 4, 8] {
            let (bx, h) = (8u32, 128u32);
            let mut d = Design::new();
            let name = ensure_result_fusion(&mut d, bw, bx, h).unwrap();
            let cost = unit_cost_of_module(&d, &name).unwrap();
            let model = components::result_fusion(bw, bx, h);
            assert!(
                (cost.area - model.area).abs() < EPS,
                "bw={bw}: {} vs {}",
                cost.area,
                model.area
            );
        }
    }

    #[test]
    fn input_buffer_matches_cost_model() {
        for (h, bx, k) in [(8u32, 8u32, 8u32), (128, 8, 4), (16, 8, 1), (4, 8, 3)] {
            let mut d = Design::new();
            let name = ensure_input_buffer(&mut d, h, bx, k).unwrap();
            let cost = unit_cost_of_module(&d, &name).unwrap();
            let model = components::input_buffer(h, bx, k);
            assert!(
                (cost.area - model.area).abs() < EPS,
                "h={h} bx={bx} k={k}: {} vs {}",
                cost.area,
                model.area
            );
        }
    }

    #[test]
    fn datapath_blocks_validate() {
        let mut d = Design::new();
        ensure_compute_unit(&mut d, 16, 4).unwrap();
        ensure_adder_tree(&mut d, 16, 4).unwrap();
        ensure_shift_accumulator(&mut d, 8, 16, 4, tree_output_width(16, 4)).unwrap();
        ensure_result_fusion(&mut d, 8, 8, 16).unwrap();
        let top = ensure_input_buffer(&mut d, 16, 8, 4).unwrap();
        d.set_top(top).unwrap();
        d.validate().unwrap();
    }
}
