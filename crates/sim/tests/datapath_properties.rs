//! Property-based verification of the DCIM datapaths: the integer path is
//! exact everywhere, the FP path is bounded everywhere, and the codecs
//! agree with IEEE semantics where the formats overlap.

use proptest::prelude::*;
use sega_estimator::{FpParams, IntParams};
use sega_sim::fp::FpFormat;
use sega_sim::{reference_fp_mvm, reference_int_mvm, FpMacroSim, IntMacroSim};

fn int_params() -> impl Strategy<Value = IntParams> {
    (
        1u32..=2,
        1u32..=4,
        0u32..=2,
        prop_oneof![Just(2u32), Just(4), Just(8), Just(16)],
    )
        .prop_flat_map(|(log_g, log_h, log_l, bw)| {
            (1u32..=bw).prop_map(move |k| {
                IntParams::new((1 << log_g) * bw, 1 << log_h, 1 << log_l, k, bw, bw)
                    .expect("valid by construction")
            })
        })
}

fn signed_vec(len: usize, bits: u32) -> impl Strategy<Value = Vec<i64>> {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    prop::collection::vec(lo..=hi, len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactness of the integer datapath over random geometry, weights,
    /// inputs and slot.
    #[test]
    fn int_mvm_exact(
        (params, weights, inputs, slot) in int_params().prop_flat_map(|p| {
            let w = signed_vec(p.wstore() as usize, p.bw);
            let x = signed_vec(p.h as usize, p.bx);
            let slot = 0..p.l;
            (Just(p), w, x, slot)
        })
    ) {
        let sim = IntMacroSim::new(params, &weights).unwrap();
        let got = sim.mvm(&inputs, slot).unwrap();
        let want = reference_int_mvm(&params, &weights, &inputs, slot);
        prop_assert_eq!(got.outputs, want);
    }

    /// Linearity of the hardware: mvm(x1) + mvm(x2) == mvm-by-reference of
    /// the summed weights path (exercises fusion sign handling).
    #[test]
    fn int_mvm_additive_in_inputs(
        (params, weights, x1, x2) in int_params().prop_flat_map(|p| {
            // Halve the ranges so x1 + x2 still fits the input width.
            let w = signed_vec(p.wstore() as usize, p.bw);
            let x1 = signed_vec(p.h as usize, p.bx - 1);
            let x2 = signed_vec(p.h as usize, p.bx - 1);
            (Just(p), w, x1, x2)
        })
    ) {
        prop_assume!(params.bx >= 2);
        let sim = IntMacroSim::new(params, &weights).unwrap();
        let y1 = sim.mvm(&x1, 0).unwrap().outputs;
        let y2 = sim.mvm(&x2, 0).unwrap().outputs;
        let xs: Vec<i64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let ys = sim.mvm(&xs, 0).unwrap().outputs;
        for ((a, b), s) in y1.iter().zip(&y2).zip(&ys) {
            prop_assert_eq!(a + b, *s);
        }
    }

    /// The FP datapath never exceeds its analytic alignment error bound.
    #[test]
    fn fp_mvm_bounded(
        seed in 0u64..10_000,
        scale_exp in -3i32..6,
    ) {
        let fmt = FpFormat::BF16;
        let params = FpParams::new(16, 8, 2, 2, 8, 8).unwrap();
        let scale = 2f64.powi(scale_exp);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * scale
        };
        let weights: Vec<f64> = (0..params.wstore()).map(|_| next()).collect();
        let inputs: Vec<f64> = (0..params.h).map(|_| next()).collect();
        let sim = FpMacroSim::new(params, fmt, &weights).unwrap();
        let out = sim.mvm(&inputs, 0).unwrap();
        let inputs_q: Vec<f64> = inputs.iter().map(|&x| fmt.quantize(x)).collect();
        let golden = reference_fp_mvm(&params, sim.quantized_weights(), &inputs_q, 0);
        let bound = sim.alignment_error_bound(&inputs_q, 0);
        for (got, want) in out.values.iter().zip(&golden) {
            prop_assert!((got - want).abs() <= bound,
                "|{got} - {want}| > {bound} at scale 2^{scale_exp}");
        }
    }

    /// FP32 codec round-trips every finite f32 exactly.
    #[test]
    fn fp32_codec_matches_ieee(bits in any::<u32>()) {
        let x = f32::from_bits(bits);
        prop_assume!(x.is_finite());
        let q = FpFormat::FP32.quantize(x as f64);
        // Flushed subnormals are the one documented deviation.
        if x.is_normal() || x == 0.0 {
            prop_assert_eq!(q as f32, x);
        } else {
            prop_assert_eq!(q, 0.0);
        }
    }

    /// Quantization is idempotent and monotone for every format.
    #[test]
    fn quantization_idempotent_and_monotone(
        a in -1e4f64..1e4,
        b in -1e4f64..1e4,
    ) {
        for fmt in [FpFormat::FP8_E4M3, FpFormat::FP16, FpFormat::BF16, FpFormat::FP32] {
            let qa = fmt.quantize(a);
            prop_assert_eq!(fmt.quantize(qa), qa, "{:?} idempotent", fmt);
            let qb = fmt.quantize(b);
            if a <= b {
                prop_assert!(qa <= qb, "{fmt:?} monotone: q({a})={qa} > q({b})={qb}");
            }
        }
    }

    /// Scaling all inputs by a power of two scales the FP result by the
    /// same factor exactly (exponent arithmetic is lossless).
    #[test]
    fn fp_mvm_scales_exactly_by_powers_of_two(
        seed in 0u64..10_000,
        shift in 1i32..4,
    ) {
        let fmt = FpFormat::BF16;
        let params = FpParams::new(8, 4, 1, 2, 8, 8).unwrap();
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) + 0.5 // in [0.5, 1.5]
        };
        let weights: Vec<f64> = (0..params.wstore()).map(|_| next()).collect();
        let inputs: Vec<f64> = (0..params.h).map(|_| next()).collect();
        let sim = FpMacroSim::new(params, fmt, &weights).unwrap();
        let base = sim.mvm(&inputs, 0).unwrap();
        let factor = 2f64.powi(shift);
        let scaled_in: Vec<f64> = inputs.iter().map(|&x| x * factor).collect();
        let scaled = sim.mvm(&scaled_in, 0).unwrap();
        for (b, s) in base.values.iter().zip(&scaled.values) {
            prop_assert!((s - b * factor).abs() < 1e-12 * factor.abs().max(1.0),
                "{s} != {b} * 2^{shift}");
        }
    }
}
