//! Neural-network layers on DCIM macros: tiling arbitrary-size matrices
//! onto fixed-geometry arrays.
//!
//! The paper motivates SEGA-DCIM with "versatile applications —
//! Transformer, CNN, GNN"; real layers are larger than one macro, so this
//! module implements the standard tiling scheme: the weight matrix
//! `W ∈ rows×cols` is cut into tiles of `H` columns (the array height) and
//! `G·L` rows (`G = N/Bw` groups × `L` slots), each tile is loaded into its
//! own macro image, and the digital periphery accumulates partial sums
//! across column tiles. Convolutions lower onto the same machinery through
//! im2col ([`im2col`], [`conv_weight_matrix`]).
//!
//! Everything stays bit-accurate: an [`IntLayer`] forward pass equals the
//! plain `i64` matrix-vector product exactly (tested), and an [`FpLayer`]
//! obeys the summed per-tile alignment bounds.

use crate::fp::FpFormat;
use crate::{FpMacroSim, IntMacroSim, SimError};
use sega_estimator::{FpParams, IntParams};

/// Cost accounting of one tiled forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerStats {
    /// Number of macro images (weight tiles) the layer occupies.
    pub macros_used: usize,
    /// Array passes per forward (one per tile × slot actually used).
    pub passes_per_forward: u64,
    /// Total cycles per forward at one pass in flight (no inter-macro
    /// parallelism assumed).
    pub cycles_per_forward: u64,
}

/// A fully-connected layer `y = W·x` tiled across integer DCIM macros.
#[derive(Debug, Clone)]
pub struct IntLayer {
    params: IntParams,
    rows: usize,
    cols: usize,
    /// One simulator per (row-tile, col-tile), row-major in tiles.
    tiles: Vec<IntMacroSim>,
    row_tiles: usize,
    col_tiles: usize,
    /// Slots actually carrying weights in the last row tile.
    stats: LayerStats,
}

impl IntLayer {
    /// Loads a `rows × cols` weight matrix (row-major rows of `cols`
    /// values) into as many macro tiles as needed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WeightOutOfRange`] if any weight exceeds the
    /// signed `Bw`-bit range (index within the flattened matrix).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != rows * cols` — that is a caller bug.
    pub fn new(
        params: IntParams,
        rows: usize,
        cols: usize,
        weights: &[i64],
    ) -> Result<Self, SimError> {
        assert_eq!(weights.len(), rows * cols, "weight matrix shape mismatch");
        for (index, &value) in weights.iter().enumerate() {
            if !crate::fits_signed(value, params.bw) {
                return Err(SimError::WeightOutOfRange {
                    index,
                    value,
                    bits: params.bw,
                });
            }
        }
        let h = params.h as usize;
        let groups = (params.n / params.bw) as usize;
        let rows_per_tile = groups * params.l as usize;
        let row_tiles = rows.div_ceil(rows_per_tile);
        let col_tiles = cols.div_ceil(h);

        let mut tiles = Vec::with_capacity(row_tiles * col_tiles);
        for rt in 0..row_tiles {
            for ct in 0..col_tiles {
                // Macro image layout: weights[slot * groups * h + g * h + r].
                let mut image = vec![0i64; params.wstore() as usize];
                for slot in 0..params.l as usize {
                    for g in 0..groups {
                        let row = rt * rows_per_tile + slot * groups + g;
                        if row >= rows {
                            continue;
                        }
                        for r in 0..h {
                            let col = ct * h + r;
                            if col >= cols {
                                continue;
                            }
                            image[slot * groups * h + g * h + r] = weights[row * cols + col];
                        }
                    }
                }
                tiles.push(IntMacroSim::new(params, &image)?);
            }
        }

        let slots_last = rows
            .saturating_sub((row_tiles - 1) * rows_per_tile)
            .div_ceil(groups) as u64;
        let passes = ((row_tiles as u64 - 1) * params.l as u64 + slots_last) * col_tiles as u64;
        let cycles_per_pass = params.cycles_per_pass() as u64 + 3;
        Ok(IntLayer {
            params,
            rows,
            cols,
            tiles,
            row_tiles,
            col_tiles,
            stats: LayerStats {
                macros_used: row_tiles * col_tiles,
                passes_per_forward: passes,
                cycles_per_forward: passes * cycles_per_pass,
            },
        })
    }

    /// Tiling statistics.
    pub fn stats(&self) -> LayerStats {
        self.stats
    }

    /// Output dimension.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input dimension.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Computes `y = W·x` exactly through the tiled macros.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongInputCount`] / [`SimError::InputOutOfRange`]
    /// for malformed inputs.
    pub fn forward(&self, x: &[i64]) -> Result<Vec<i64>, SimError> {
        if x.len() != self.cols {
            return Err(SimError::WrongInputCount {
                got: x.len(),
                expected: self.cols as u32,
            });
        }
        let p = &self.params;
        let h = p.h as usize;
        let groups = (p.n / p.bw) as usize;
        let rows_per_tile = groups * p.l as usize;
        let mut y = vec![0i64; self.rows];
        for ct in 0..self.col_tiles {
            // Input tile, zero-padded to H.
            let mut xin = vec![0i64; h];
            for (r, xr) in xin.iter_mut().enumerate() {
                let col = ct * h + r;
                if col < self.cols {
                    *xr = x[col];
                }
            }
            for rt in 0..self.row_tiles {
                let tile = &self.tiles[rt * self.col_tiles + ct];
                for slot in 0..p.l {
                    let base_row = rt * rows_per_tile + slot as usize * groups;
                    if base_row >= self.rows {
                        break;
                    }
                    let out = tile.mvm(&xin, slot)?;
                    for (g, &v) in out.outputs.iter().enumerate() {
                        let row = base_row + g;
                        if row < self.rows {
                            // Digital periphery: cross-tile accumulation.
                            y[row] += v;
                        }
                    }
                }
            }
        }
        Ok(y)
    }
}

/// A fully-connected layer `y = W·x` tiled across pre-aligned FP macros.
#[derive(Debug, Clone)]
pub struct FpLayer {
    params: FpParams,
    format: FpFormat,
    rows: usize,
    cols: usize,
    tiles: Vec<FpMacroSim>,
    row_tiles: usize,
    col_tiles: usize,
    stats: LayerStats,
}

impl FpLayer {
    /// Loads a `rows × cols` floating-point weight matrix.
    ///
    /// # Errors
    ///
    /// Propagates macro-construction errors.
    ///
    /// # Panics
    ///
    /// Panics on a matrix shape mismatch or a format/parameter mismatch.
    pub fn new(
        params: FpParams,
        format: FpFormat,
        rows: usize,
        cols: usize,
        weights: &[f64],
    ) -> Result<Self, SimError> {
        assert_eq!(weights.len(), rows * cols, "weight matrix shape mismatch");
        let h = params.h as usize;
        let groups = (params.n / params.bm) as usize;
        let rows_per_tile = groups * params.l as usize;
        let row_tiles = rows.div_ceil(rows_per_tile);
        let col_tiles = cols.div_ceil(h);

        let mut tiles = Vec::with_capacity(row_tiles * col_tiles);
        for rt in 0..row_tiles {
            for ct in 0..col_tiles {
                let mut image = vec![0f64; params.wstore() as usize];
                for slot in 0..params.l as usize {
                    for g in 0..groups {
                        let row = rt * rows_per_tile + slot * groups + g;
                        if row >= rows {
                            continue;
                        }
                        for r in 0..h {
                            let col = ct * h + r;
                            if col >= cols {
                                continue;
                            }
                            image[slot * groups * h + g * h + r] = weights[row * cols + col];
                        }
                    }
                }
                tiles.push(FpMacroSim::new(params, format, &image)?);
            }
        }
        let passes = row_tiles as u64 * params.l as u64 * col_tiles as u64;
        let cycles_per_pass = params.cycles_per_pass() as u64 + 4;
        Ok(FpLayer {
            params,
            format,
            rows,
            cols,
            tiles,
            row_tiles,
            col_tiles,
            stats: LayerStats {
                macros_used: row_tiles * col_tiles,
                passes_per_forward: passes,
                cycles_per_forward: passes * cycles_per_pass,
            },
        })
    }

    /// Tiling statistics.
    pub fn stats(&self) -> LayerStats {
        self.stats
    }

    /// Computes `y ≈ W·x` through the tiled macros (periphery accumulates
    /// tile partials in full precision).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongInputCount`] for malformed inputs.
    pub fn forward(&self, x: &[f64]) -> Result<Vec<f64>, SimError> {
        if x.len() != self.cols {
            return Err(SimError::WrongInputCount {
                got: x.len(),
                expected: self.cols as u32,
            });
        }
        let p = &self.params;
        let h = p.h as usize;
        let groups = (p.n / p.bm) as usize;
        let rows_per_tile = groups * p.l as usize;
        let mut y = vec![0f64; self.rows];
        for ct in 0..self.col_tiles {
            let mut xin = vec![0f64; h];
            for (r, xr) in xin.iter_mut().enumerate() {
                let col = ct * h + r;
                if col < self.cols {
                    *xr = x[col];
                }
            }
            for rt in 0..self.row_tiles {
                let tile = &self.tiles[rt * self.col_tiles + ct];
                for slot in 0..p.l {
                    let base_row = rt * rows_per_tile + slot as usize * groups;
                    if base_row >= self.rows {
                        break;
                    }
                    let out = tile.mvm(&xin, slot)?;
                    for (g, &v) in out.values.iter().enumerate() {
                        let row = base_row + g;
                        if row < self.rows {
                            y[row] += v;
                        }
                    }
                }
            }
        }
        Ok(y)
    }

    /// The effective (quantized + aligned) weight the datapath multiplies
    /// by, for error analysis.
    pub fn format(&self) -> FpFormat {
        self.format
    }
}

/// Lowers a `[out_ch][in_ch][kh][kw]` convolution kernel into the
/// `out_ch × (in_ch·kh·kw)` matrix that [`IntLayer`]/[`FpLayer`] consume.
pub fn conv_weight_matrix<T: Copy>(
    kernel: &[T],
    out_ch: usize,
    in_ch: usize,
    kh: usize,
    kw: usize,
) -> Vec<T> {
    assert_eq!(
        kernel.len(),
        out_ch * in_ch * kh * kw,
        "kernel shape mismatch"
    );
    // Already stored in the right order: each output channel's taps are
    // contiguous.
    kernel.to_vec()
}

/// im2col patch extraction: for a `[in_ch][height][width]` feature map and
/// a `kh × kw` window at (valid) output position `(oy, ox)`, returns the
/// `in_ch·kh·kw` input column matching [`conv_weight_matrix`]'s row layout.
///
/// # Panics
///
/// Panics if the window does not fit at the requested position.
#[allow(clippy::too_many_arguments)] // mirrors the conv window geometry
pub fn im2col<T: Copy>(
    fmap: &[T],
    in_ch: usize,
    height: usize,
    width: usize,
    kh: usize,
    kw: usize,
    oy: usize,
    ox: usize,
) -> Vec<T> {
    assert_eq!(fmap.len(), in_ch * height * width, "feature map shape");
    assert!(
        oy + kh <= height && ox + kw <= width,
        "window out of bounds"
    );
    let mut col = Vec::with_capacity(in_ch * kh * kw);
    for c in 0..in_ch {
        for dy in 0..kh {
            for dx in 0..kw {
                col.push(fmap[c * height * width + (oy + dy) * width + (ox + dx)]);
            }
        }
    }
    col
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IntParams {
        // 2 groups × 4 rows per pass, 2 slots -> 4x... rows_per_tile = 4.
        IntParams::new(8, 4, 2, 2, 4, 4).unwrap()
    }

    fn ramp(n: usize, m: i64) -> Vec<i64> {
        (0..n).map(|i| ((i as i64 * 5 + 1) % (2 * m)) - m).collect()
    }

    fn golden(w: &[i64], x: &[i64], rows: usize, cols: usize) -> Vec<i64> {
        (0..rows)
            .map(|r| (0..cols).map(|c| w[r * cols + c] * x[c]).sum())
            .collect()
    }

    #[test]
    fn exact_when_matrix_fits_one_macro() {
        let p = params();
        let (rows, cols) = (4usize, 4usize);
        let w = ramp(rows * cols, 7);
        let x = ramp(cols, 7);
        let layer = IntLayer::new(p, rows, cols, &w).unwrap();
        assert_eq!(layer.stats().macros_used, 1);
        assert_eq!(layer.forward(&x).unwrap(), golden(&w, &x, rows, cols));
    }

    #[test]
    fn exact_with_column_tiling() {
        // cols = 10 > H = 4 -> 3 column tiles with padding.
        let p = params();
        let (rows, cols) = (4usize, 10usize);
        let w = ramp(rows * cols, 7);
        let x = ramp(cols, 7);
        let layer = IntLayer::new(p, rows, cols, &w).unwrap();
        assert_eq!(layer.stats().macros_used, 3);
        assert_eq!(layer.forward(&x).unwrap(), golden(&w, &x, rows, cols));
    }

    #[test]
    fn exact_with_row_and_column_tiling() {
        // rows = 11 > rows_per_tile = 4, cols = 9 > 4.
        let p = params();
        let (rows, cols) = (11usize, 9usize);
        let w = ramp(rows * cols, 7);
        let x = ramp(cols, 7);
        let layer = IntLayer::new(p, rows, cols, &w).unwrap();
        assert_eq!(layer.stats().macros_used, 3 * 3);
        assert_eq!(layer.forward(&x).unwrap(), golden(&w, &x, rows, cols));
    }

    #[test]
    fn stats_count_passes() {
        let p = params(); // L=2, cycles/pass = 2+3
        let layer = IntLayer::new(p, 8, 8, &ramp(64, 7)).unwrap();
        // row_tiles=2, col_tiles=2; all slots used -> passes = 2*2*2 = 8.
        let s = layer.stats();
        assert_eq!(s.macros_used, 4);
        assert_eq!(s.passes_per_forward, 8);
        assert_eq!(s.cycles_per_forward, 8 * 5);
    }

    #[test]
    fn input_length_checked() {
        let p = params();
        let layer = IntLayer::new(p, 4, 4, &ramp(16, 7)).unwrap();
        assert!(matches!(
            layer.forward(&[1, 2, 3]),
            Err(SimError::WrongInputCount { .. })
        ));
    }

    #[test]
    fn weight_range_checked_with_matrix_index() {
        let p = params();
        let mut w = ramp(16, 7);
        w[9] = 99;
        assert!(matches!(
            IntLayer::new(p, 4, 4, &w),
            Err(SimError::WeightOutOfRange { index: 9, .. })
        ));
    }

    #[test]
    fn fp_layer_tracks_reference_within_tile_bounds() {
        let p = FpParams::new(8, 4, 2, 2, 8, 8).unwrap();
        let (rows, cols) = (3usize, 10usize);
        let w: Vec<f64> = (0..rows * cols)
            .map(|i| ((i % 9) as f64 - 4.0) * 0.25)
            .collect();
        let x: Vec<f64> = (0..cols).map(|i| (i as f64 - 5.0) * 0.5).collect();
        let layer = FpLayer::new(p, FpFormat::BF16, rows, cols, &w).unwrap();
        let y = layer.forward(&x).unwrap();
        // Reference on quantized operands.
        let q = |v: f64| FpFormat::BF16.quantize(v);
        let golden: Vec<f64> = (0..rows)
            .map(|r| (0..cols).map(|c| q(w[r * cols + c]) * q(x[c])).sum())
            .collect();
        for (got, want) in y.iter().zip(&golden) {
            // Generous bound: a few ULPs at the operand scale per term.
            assert!(
                (got - want).abs() <= 0.1 * (1.0 + want.abs()),
                "{got} vs {want}"
            );
        }
    }

    #[test]
    fn conv_lowering_matches_direct_convolution() {
        // 2 output channels, 1 input channel, 2x2 kernel over a 3x3 map.
        let (out_ch, in_ch, kh, kw) = (2usize, 1usize, 2usize, 2usize);
        let kernel: Vec<i64> = vec![1, 2, 3, -4, -1, 0, 2, 1];
        let fmap: Vec<i64> = (-4..=4).collect();
        let wmat = conv_weight_matrix(&kernel, out_ch, in_ch, kh, kw);

        let p = params();
        let layer = IntLayer::new(p, out_ch, in_ch * kh * kw, &wmat).unwrap();
        for oy in 0..2 {
            for ox in 0..2 {
                let col = im2col(&fmap, in_ch, 3, 3, kh, kw, oy, ox);
                let y = layer.forward(&col).unwrap();
                // Direct convolution.
                for (o, y_o) in y.iter().enumerate() {
                    let mut acc = 0i64;
                    for dy in 0..kh {
                        for dx in 0..kw {
                            acc += kernel[o * kh * kw + dy * kw + dx]
                                * fmap[(oy + dy) * 3 + (ox + dx)];
                        }
                    }
                    assert_eq!(*y_o, acc, "channel {o} at ({oy},{ox})");
                }
            }
        }
    }

    #[test]
    fn im2col_window_bounds_checked() {
        let fmap: Vec<i64> = (0..9).collect();
        let result = std::panic::catch_unwind(|| im2col(&fmap, 1, 3, 3, 2, 2, 2, 2));
        assert!(result.is_err(), "out-of-bounds window must panic");
    }
}
