//! Bit-accurate simulation of the pre-aligned floating-point DCIM macro.
//!
//! The FP datapath of paper Fig. 3 is simulated step by step:
//!
//! 1. **offline**: weight mantissas are aligned to the macro's maximum
//!    weight exponent `WEmax` and pre-stored ("the weight's mantissa is
//!    offline aligned and pre-stored in the DCIM array");
//! 2. **online**: the comparison tree finds the input exponent maximum
//!    `XEmax`, each input mantissa is right-shifted by `XEmax − XE`
//!    (truncating — exactly what the barrel shifter does);
//! 3. the aligned mantissas run the integer MAC of the array;
//! 4. the INT-to-FP converter normalizes the wide integer result back into
//!    the output floating-point format.
//!
//! Truncation during alignment is the *only* error source; the tests bound
//! it analytically and check exactness when no truncation occurs.

use crate::fp::FpFormat;
use crate::SimError;
use sega_estimator::FpParams;

/// The outcome of one floating-point MVM pass.
#[derive(Debug, Clone, PartialEq)]
pub struct FpMvmOutput {
    /// Exact values of the array results (fixed-point result scaled by the
    /// shared exponents), before output-format rounding.
    pub values: Vec<f64>,
    /// Results after INT-to-FP conversion into the macro's format (what
    /// the hardware emits).
    pub converted: Vec<f64>,
    /// Raw integer array results (the fusion-unit outputs).
    pub int_results: Vec<i64>,
    /// Cycles consumed: `⌈BM/k⌉` streaming cycles plus the 4-stage pipeline
    /// (pre-alignment, adder tree, shift accumulator, fusion/convert).
    pub cycles: u64,
}

/// Bit-accurate simulator of one pre-aligned floating-point DCIM macro.
#[derive(Debug, Clone)]
pub struct FpMacroSim {
    params: FpParams,
    format: FpFormat,
    /// Signed aligned weight mantissas, `|v| < 2^BM`.
    aligned_weights: Vec<i64>,
    /// Maximum biased weight exponent the mantissas are aligned to.
    wemax: i32,
    /// The weights after format quantization (for reference computations).
    quantized_weights: Vec<f64>,
}

impl FpMacroSim {
    /// Encodes and offline-aligns `weights` (exactly `Wstore` values) for a
    /// macro with the given parameters and number format.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongWeightCount`] for a malformed weight set.
    ///
    /// # Panics
    ///
    /// Panics if the format's mantissa/exponent widths disagree with the
    /// design parameters — that is a caller bug, not a data error.
    pub fn new(params: FpParams, format: FpFormat, weights: &[f64]) -> Result<Self, SimError> {
        assert_eq!(
            format.mantissa_bits(),
            params.bm,
            "format mantissa width must match the design's BM"
        );
        assert_eq!(
            format.exp_bits, params.be,
            "format exponent width must match the design's BE"
        );
        let wstore = params.wstore();
        if weights.len() as u64 != wstore {
            return Err(SimError::WrongWeightCount {
                got: weights.len(),
                expected: wstore,
            });
        }
        let encoded: Vec<_> = weights.iter().map(|&w| format.encode(w)).collect();
        let wemax = encoded.iter().map(|v| v.exp as i32).max().unwrap_or(0);
        let aligned_weights = encoded
            .iter()
            .map(|v| {
                let shift = wemax - v.exp as i32;
                let mag = if v.exp == 0 || shift >= params.bm as i32 {
                    0
                } else {
                    (format.mantissa(*v) >> shift) as i64
                };
                if v.sign {
                    -mag
                } else {
                    mag
                }
            })
            .collect();
        let quantized_weights = encoded.iter().map(|&v| format.decode(v)).collect();
        Ok(FpMacroSim {
            params,
            format,
            aligned_weights,
            wemax,
            quantized_weights,
        })
    }

    /// The macro parameters.
    pub fn params(&self) -> &FpParams {
        &self.params
    }

    /// The format-quantized weights actually stored (after encode/decode).
    pub fn quantized_weights(&self) -> &[f64] {
        &self.quantized_weights
    }

    /// The effective weight values after offline alignment — the numbers
    /// the array genuinely multiplies by (alignment may truncate small
    /// weights).
    pub fn aligned_weight_values(&self) -> Vec<f64> {
        let scale = self.weight_scale();
        self.aligned_weights
            .iter()
            .map(|&m| m as f64 * scale)
            .collect()
    }

    fn weight_scale(&self) -> f64 {
        2f64.powi(self.wemax - self.format.bias() - self.format.frac_bits as i32)
    }

    /// Runs one MVM pass against the weights in `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] variants for malformed inputs or slot index.
    pub fn mvm(&self, inputs: &[f64], slot: u32) -> Result<FpMvmOutput, SimError> {
        let p = &self.params;
        if slot >= p.l {
            return Err(SimError::BadSlot { slot, l: p.l });
        }
        if inputs.len() != p.h as usize {
            return Err(SimError::WrongInputCount {
                got: inputs.len(),
                expected: p.h,
            });
        }
        let fmt = &self.format;
        let encoded: Vec<_> = inputs.iter().map(|&x| fmt.encode(x)).collect();
        // Comparison tree: XEmax.
        let xemax = encoded.iter().map(|v| v.exp as i32).max().unwrap_or(0);
        // Input alignment: XMA = XM >> (XEmax - XE), sign applied.
        let aligned_inputs: Vec<i64> = encoded
            .iter()
            .map(|v| {
                let shift = xemax - v.exp as i32;
                let mag = if v.exp == 0 || shift >= p.bm as i32 {
                    0
                } else {
                    (fmt.mantissa(*v) >> shift) as i64
                };
                if v.sign {
                    -mag
                } else {
                    mag
                }
            })
            .collect();

        // Integer mantissa MAC in the array.
        let groups = (p.n / p.bm) as usize;
        let h = p.h as usize;
        let base = slot as usize * groups * h;
        let int_results: Vec<i64> = (0..groups)
            .map(|g| {
                (0..h)
                    .map(|r| self.aligned_weights[base + g * h + r] * aligned_inputs[r])
                    .sum()
            })
            .collect();

        // Shared output scale: both operands carry 2^(Emax - bias - frac).
        let input_scale = 2f64.powi(xemax - fmt.bias() - fmt.frac_bits as i32);
        let scale = self.weight_scale() * input_scale;
        let values: Vec<f64> = int_results.iter().map(|&v| v as f64 * scale).collect();
        // INT-to-FP conversion: normalize into the macro's output format.
        let converted: Vec<f64> = values.iter().map(|&v| fmt.quantize(v)).collect();
        Ok(FpMvmOutput {
            values,
            converted,
            int_results,
            cycles: p.cycles_per_pass() as u64 + 4,
        })
    }

    /// Runs a full MVM across all `L` slots.
    ///
    /// # Errors
    ///
    /// Same conditions as [`mvm`](Self::mvm).
    pub fn full_mvm(&self, inputs: &[f64]) -> Result<FpMvmOutput, SimError> {
        let mut values = Vec::new();
        let mut converted = Vec::new();
        let mut int_results = Vec::new();
        let mut cycles = 0;
        for slot in 0..self.params.l {
            let pass = self.mvm(inputs, slot)?;
            values.extend(pass.values);
            converted.extend(pass.converted);
            int_results.extend(pass.int_results);
            cycles += pass.cycles;
        }
        Ok(FpMvmOutput {
            values,
            converted,
            int_results,
            cycles,
        })
    }

    /// Analytic bound on the absolute alignment-truncation error of one
    /// output, given the quantized operands: each aligned operand loses at
    /// most one ULP at the shared-exponent scale.
    pub fn alignment_error_bound(&self, quantized_inputs: &[f64], slot: u32) -> f64 {
        let p = &self.params;
        let fmt = &self.format;
        let encoded: Vec<_> = quantized_inputs.iter().map(|&x| fmt.encode(x)).collect();
        let xemax = encoded.iter().map(|v| v.exp as i32).max().unwrap_or(0);
        let ex = 2f64.powi(xemax - fmt.bias() - fmt.frac_bits as i32);
        let ew = self.weight_scale();
        let groups = (p.n / p.bm) as usize;
        let h = p.h as usize;
        let base = slot as usize * groups * h;
        // Σ_r |w|·ex + |x|·ew + ex·ew, maximized over groups.
        (0..groups)
            .map(|g| {
                (0..h)
                    .map(|r| {
                        let w = self.quantized_weights[base + g * h + r].abs();
                        let x = quantized_inputs[r].abs();
                        w * ex + x * ew + ex * ew
                    })
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_fp_mvm;

    fn bf16_params() -> FpParams {
        FpParams::new(16, 8, 2, 2, 8, 8).unwrap()
    }

    fn ramp(n: u64, scale: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                sign * scale * (1.0 + (i as f64 * 0.37) % 7.0)
            })
            .collect()
    }

    #[test]
    fn exact_when_no_truncation_occurs() {
        // All operands share one exponent and have short mantissas: the
        // alignment shifts are zero and the datapath must be exact.
        let p = bf16_params();
        let fmt = FpFormat::BF16;
        let w: Vec<f64> = (0..p.wstore())
            .map(|i| ((i % 5) as f64 - 2.0) * 0.25 + 1.0)
            .collect();
        // values in [0.5, 1.5]... keep all in [1, 2): same exponent.
        let w: Vec<f64> = w.iter().map(|x| 1.0 + (x - x.floor()) * 0.875).collect();
        let x: Vec<f64> = (0..p.h).map(|i| 1.0 + (i as f64) * 0.125).collect();
        let sim = FpMacroSim::new(p, fmt, &w).unwrap();
        let out = sim.mvm(&x, 0).unwrap();
        let expect = reference_fp_mvm(&p, sim.quantized_weights(), &x, 0);
        for (got, want) in out.values.iter().zip(&expect) {
            assert!(
                (got - want).abs() < 1e-12,
                "exact case mismatch: {got} vs {want}"
            );
        }
    }

    #[test]
    fn error_is_within_alignment_bound() {
        for fmt in [FpFormat::FP8_E4M3, FpFormat::BF16, FpFormat::FP16] {
            let bm = fmt.mantissa_bits();
            let p = FpParams::new(2 * bm, 8, 2, 1, fmt.exp_bits, bm).unwrap();
            let w = ramp(p.wstore(), 0.5);
            let x = ramp(p.h as u64, 2.0);
            let sim = FpMacroSim::new(p, fmt, &w).unwrap();
            let xq: Vec<f64> = x.iter().map(|&v| fmt.quantize(v)).collect();
            let out = sim.mvm(&x, 0).unwrap();
            let expect = reference_fp_mvm(&p, sim.quantized_weights(), &xq, 0);
            let bound = sim.alignment_error_bound(&xq, 0);
            for (got, want) in out.values.iter().zip(&expect) {
                assert!(
                    (got - want).abs() <= bound,
                    "{fmt:?}: |{got} - {want}| > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn wider_mantissas_are_more_accurate() {
        // FP32 must beat FP8 on the same workload — the paper's motivation
        // for multi-precision support.
        let h = 8u32;
        let rel_err = |fmt: FpFormat| {
            let bm = fmt.mantissa_bits();
            let p = FpParams::new(bm, h, 2, 1, fmt.exp_bits, bm).unwrap();
            let w = ramp(p.wstore(), 0.3);
            let x = ramp(h as u64, 1.7);
            let sim = FpMacroSim::new(p, fmt, &w).unwrap();
            let out = sim.mvm(&x, 0).unwrap();
            let exact: f64 = (0..h as usize).map(|r| w[r] * x[r]).sum();
            ((out.values[0] - exact) / exact).abs()
        };
        let e8 = rel_err(FpFormat::FP8_E4M3);
        let e32 = rel_err(FpFormat::FP32);
        assert!(
            e32 < e8,
            "FP32 rel err {e32} should be below FP8 rel err {e8}"
        );
    }

    #[test]
    fn converted_results_are_format_values() {
        let p = bf16_params();
        let fmt = FpFormat::BF16;
        let w = ramp(p.wstore(), 1.0);
        let x = ramp(p.h as u64, 1.0);
        let sim = FpMacroSim::new(p, fmt, &w).unwrap();
        let out = sim.mvm(&x, 1).unwrap();
        for &c in &out.converted {
            assert_eq!(
                fmt.quantize(c),
                c,
                "converted value {c} must be representable"
            );
        }
    }

    #[test]
    fn zero_inputs_give_zero_outputs() {
        let p = bf16_params();
        let sim = FpMacroSim::new(p, FpFormat::BF16, &ramp(p.wstore(), 1.0)).unwrap();
        let out = sim.mvm(&vec![0.0; p.h as usize], 0).unwrap();
        assert!(out.values.iter().all(|&v| v == 0.0));
        assert!(out.int_results.iter().all(|&v| v == 0));
    }

    #[test]
    fn full_mvm_covers_all_slots() {
        let p = bf16_params();
        let sim = FpMacroSim::new(p, FpFormat::BF16, &ramp(p.wstore(), 1.0)).unwrap();
        let x = ramp(p.h as u64, 1.0);
        let full = sim.full_mvm(&x).unwrap();
        assert_eq!(full.values.len(), (p.l * p.n / p.bm) as usize);
    }

    #[test]
    fn cycles_follow_mantissa_serial_schedule() {
        let p = bf16_params(); // BM=8, k=2 -> 4 chunks.
        let sim = FpMacroSim::new(p, FpFormat::BF16, &ramp(p.wstore(), 1.0)).unwrap();
        let out = sim.mvm(&ramp(p.h as u64, 1.0), 0).unwrap();
        assert_eq!(out.cycles, 4 + 4);
    }

    #[test]
    fn validation_errors() {
        let p = bf16_params();
        assert!(matches!(
            FpMacroSim::new(p, FpFormat::BF16, &[1.0, 2.0]),
            Err(SimError::WrongWeightCount { .. })
        ));
        let sim = FpMacroSim::new(p, FpFormat::BF16, &ramp(p.wstore(), 1.0)).unwrap();
        assert!(matches!(
            sim.mvm(&[1.0], 0),
            Err(SimError::WrongInputCount { .. })
        ));
        assert!(matches!(
            sim.mvm(&ramp(p.h as u64, 1.0), 99),
            Err(SimError::BadSlot { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "mantissa width")]
    fn format_parameter_mismatch_panics() {
        let p = bf16_params(); // BM = 8
        let _ = FpMacroSim::new(p, FpFormat::FP16, &[]); // BM = 11
    }

    #[test]
    fn aligned_weight_values_reflect_truncation() {
        // A tiny weight next to a huge one gets truncated to zero by the
        // offline alignment (shift >= BM).
        let p = FpParams::new(8, 2, 1, 1, 8, 8).unwrap(); // wstore = 2
        let fmt = FpFormat::BF16;
        let w = vec![1.0e20, 1.0e-20];
        let sim = FpMacroSim::new(p, fmt, &w).unwrap();
        let vals = sim.aligned_weight_values();
        assert!(vals[0] > 0.0);
        assert_eq!(vals[1], 0.0, "tiny weight must truncate away");
    }
}
