//! Golden reference models the simulators are verified against.

use sega_estimator::{FpParams, IntParams};

/// Plain `i64` matrix-vector reference for the integer macro: output `g` is
/// `Σ_r w[slot·G·H + g·H + r] · x[r]` with `G = N/Bw`.
///
/// # Panics
///
/// Panics if the slice lengths do not match the parameters (the simulator
/// validates before calling this in tests).
pub fn reference_int_mvm(p: &IntParams, weights: &[i64], inputs: &[i64], slot: u32) -> Vec<i64> {
    assert_eq!(weights.len() as u64, p.wstore());
    assert_eq!(inputs.len(), p.h as usize);
    assert!(slot < p.l);
    let groups = (p.n / p.bw) as usize;
    let h = p.h as usize;
    let base = slot as usize * groups * h;
    (0..groups)
        .map(|g| (0..h).map(|r| weights[base + g * h + r] * inputs[r]).sum())
        .collect()
}

/// Plain `f64` matrix-vector reference for the floating-point macro,
/// computed on the *quantized* operand values (so it isolates the
/// alignment/truncation error of the DCIM datapath from the input
/// quantization error).
///
/// # Panics
///
/// Panics if the slice lengths do not match the parameters.
pub fn reference_fp_mvm(
    p: &FpParams,
    quantized_weights: &[f64],
    quantized_inputs: &[f64],
    slot: u32,
) -> Vec<f64> {
    assert_eq!(quantized_weights.len() as u64, p.wstore());
    assert_eq!(quantized_inputs.len(), p.h as usize);
    assert!(slot < p.l);
    let groups = (p.n / p.bm) as usize;
    let h = p.h as usize;
    let base = slot as usize * groups * h;
    (0..groups)
        .map(|g| {
            (0..h)
                .map(|r| quantized_weights[base + g * h + r] * quantized_inputs[r])
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::identity_op)] // products spell out the weight layout
    fn int_reference_shape() {
        let p = IntParams::new(8, 2, 2, 1, 4, 4).unwrap();
        // G = 2 groups, H = 2, L = 2 -> 8 weights.
        let w = vec![1, 2, 3, 4, 5, 6, 7, -8];
        let x = vec![10, 100];
        let y0 = reference_int_mvm(&p, &w, &x, 0);
        assert_eq!(y0, vec![1 * 10 + 2 * 100, 3 * 10 + 4 * 100]);
        let y1 = reference_int_mvm(&p, &w, &x, 1);
        assert_eq!(y1, vec![5 * 10 + 6 * 100, 7 * 10 - 8 * 100]);
    }

    #[test]
    fn fp_reference_shape() {
        let p = FpParams::new(8, 2, 1, 1, 4, 4).unwrap();
        let w = vec![0.5, 2.0, -1.0, 4.0];
        let x = vec![1.0, 3.0];
        let y = reference_fp_mvm(&p, &w, &x, 0);
        assert_eq!(y, vec![0.5 + 6.0, -1.0 + 12.0]);
    }
}
