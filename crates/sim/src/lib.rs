//! # sega-sim — bit-accurate functional simulation of DCIM macros
//!
//! The paper's central correctness claim for DCIM is *full-precision digital
//! computation* ("DCIM uses digital logic circuits … which dramatically
//! improves the reliability and accuracy"). This crate proves that property
//! for the architectures SEGA-DCIM generates, by simulating the exact
//! dataflow of paper Fig. 3 at bit granularity:
//!
//! * [`IntMacroSim`] — the multiplier-based integer macro: per-cycle `k`-bit
//!   input chunks through the selection gates and NOR multipliers, adder
//!   trees, shift accumulators (two's-complement-correct), and the results
//!   fusion unit with a negatively weighted MSB column. Integer MVM results
//!   are **exactly** equal to the `i64` reference (property-tested).
//! * [`FpMacroSim`] — the pre-aligned floating-point macro: offline weight
//!   mantissa alignment, online exponent max-tree and input alignment,
//!   integer mantissa MAC, and INT-to-FP conversion. Results match a
//!   fixed-point golden model exactly and the `f64` reference within the
//!   alignment-truncation error bound.
//! * [`fp`] — minifloat codecs (FP8-E4M3, FP16, BF16, FP32) used by both
//!   the FP simulator and the workload generators.
//!
//! # Example
//!
//! ```
//! use sega_estimator::IntParams;
//! use sega_sim::IntMacroSim;
//!
//! // A small INT4 macro: 2 weight groups of 4 rows, L=2 slots.
//! let params = IntParams::new(8, 4, 2, 2, 4, 4)?;
//! let weights: Vec<i64> = (0..params.wstore()).map(|i| (i as i64 % 15) - 7).collect();
//! let sim = IntMacroSim::new(params, &weights)?;
//! let out = sim.mvm(&[1, -2, 3, -4], 0)?;
//! assert_eq!(out.outputs.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod fp;
mod fp_mac;
mod int_mac;
pub mod nn;
mod reference;

pub use fp_mac::{FpMacroSim, FpMvmOutput};
pub use int_mac::{IntMacroSim, MvmOutput};
pub use reference::{reference_fp_mvm, reference_int_mvm};

/// Errors returned by the simulators.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The weight slice does not hold exactly `Wstore` values.
    WrongWeightCount {
        /// Provided count.
        got: usize,
        /// Required `Wstore`.
        expected: u64,
    },
    /// A weight exceeds the representable signed range of its bit-width.
    WeightOutOfRange {
        /// Offending index.
        index: usize,
        /// Offending value.
        value: i64,
        /// Bit width.
        bits: u32,
    },
    /// The input vector does not hold exactly `H` values.
    WrongInputCount {
        /// Provided count.
        got: usize,
        /// Required `H`.
        expected: u32,
    },
    /// An input exceeds the representable signed range of its bit-width.
    InputOutOfRange {
        /// Offending index.
        index: usize,
        /// Offending value.
        value: i64,
        /// Bit width.
        bits: u32,
    },
    /// The weight-slot index is not below `L`.
    BadSlot {
        /// Requested slot.
        slot: u32,
        /// Available slots `L`.
        l: u32,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::WrongWeightCount { got, expected } => {
                write!(f, "expected {expected} weights, got {got}")
            }
            SimError::WeightOutOfRange { index, value, bits } => {
                write!(
                    f,
                    "weight[{index}] = {value} exceeds signed {bits}-bit range"
                )
            }
            SimError::WrongInputCount { got, expected } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            SimError::InputOutOfRange { index, value, bits } => {
                write!(
                    f,
                    "input[{index}] = {value} exceeds signed {bits}-bit range"
                )
            }
            SimError::BadSlot { slot, l } => {
                write!(f, "weight slot {slot} out of range (L = {l})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Checks that `value` fits a signed `bits`-bit two's-complement field.
pub(crate) fn fits_signed(value: i64, bits: u32) -> bool {
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (lo..=hi).contains(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_range_checks() {
        assert!(fits_signed(-8, 4));
        assert!(fits_signed(7, 4));
        assert!(!fits_signed(8, 4));
        assert!(!fits_signed(-9, 4));
        assert!(fits_signed(0, 1));
        assert!(fits_signed(-1, 1));
        assert!(!fits_signed(1, 1));
    }

    #[test]
    fn error_display() {
        let e = SimError::BadSlot { slot: 5, l: 4 };
        assert!(e.to_string().contains('5'));
    }
}
