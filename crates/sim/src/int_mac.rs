//! Bit-accurate simulation of the multiplier-based integer DCIM macro.
//!
//! The simulator walks the exact dataflow of paper Fig. 3/Fig. 5:
//!
//! 1. weights are decomposed into `Bw` single-bit columns (two's
//!    complement: the MSB column carries weight `−2^(Bw−1)`);
//! 2. each cycle the input buffer emits a `k`-bit chunk per row, MSB chunk
//!    first; the selection gate picks one of the `L` stored weight bits and
//!    the NOR gates form the 1-bit × k-bit products;
//! 3. the per-column adder tree sums the `H` products;
//! 4. the shift accumulator folds the chunk partial sums
//!    (`acc = (acc << k) + partial`), giving each column's full
//!    `Σ_r w_bit[r]·x[r]`;
//! 5. the results fusion unit weights the `Bw` column sums by bit position
//!    (MSB negative) into the final two's-complement MACs.
//!
//! The result is **exactly** `Σ_r w[r]·x[r]` for every weight group — no
//! approximation anywhere, which the property tests assert against an
//! `i64` reference.

use crate::{fits_signed, SimError};
use sega_estimator::IntParams;

/// The outcome of one matrix-vector multiplication pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvmOutput {
    /// One result per weight group (`N/Bw` values).
    pub outputs: Vec<i64>,
    /// Cycles consumed: `⌈Bx/k⌉` streaming cycles plus the 3-stage
    /// pipeline drain (adder tree, shift accumulator, fusion).
    pub cycles: u64,
}

/// Bit-accurate simulator of one integer DCIM macro.
///
/// Weights are loaded row-major per slot: `weights[slot·G·H + g·H + r]` is
/// the weight of group `g`, row `r`, slot `slot`, where `G = N/Bw`.
#[derive(Debug, Clone)]
pub struct IntMacroSim {
    params: IntParams,
    /// Weight bit planes: `bit_planes[col][slot·H + r]` is the selected
    /// weight bit for array column `col`.
    bit_planes: Vec<Vec<u8>>,
    weights: Vec<i64>,
}

impl IntMacroSim {
    /// Loads `weights` (exactly `Wstore`, each within the signed `Bw`-bit
    /// range) into a macro with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WrongWeightCount`] / [`SimError::WeightOutOfRange`]
    /// for malformed weight sets.
    pub fn new(params: IntParams, weights: &[i64]) -> Result<Self, SimError> {
        let wstore = params.wstore();
        if weights.len() as u64 != wstore {
            return Err(SimError::WrongWeightCount {
                got: weights.len(),
                expected: wstore,
            });
        }
        for (index, &value) in weights.iter().enumerate() {
            if !fits_signed(value, params.bw) {
                return Err(SimError::WeightOutOfRange {
                    index,
                    value,
                    bits: params.bw,
                });
            }
        }
        // Decompose into bit planes: column g*Bw + j stores bit j of the
        // weights of group g (the paper maps each weight bit to its own
        // column).
        let groups = (params.n / params.bw) as usize;
        let h = params.h as usize;
        let l = params.l as usize;
        let mut bit_planes = vec![vec![0u8; l * h]; params.n as usize];
        for g in 0..groups {
            for slot in 0..l {
                for r in 0..h {
                    let w = weights[slot * groups * h + g * h + r];
                    let u = (w as u64) & ((1u64 << params.bw) - 1); // two's complement field
                    for j in 0..params.bw as usize {
                        bit_planes[g * params.bw as usize + j][slot * h + r] = ((u >> j) & 1) as u8;
                    }
                }
            }
        }
        Ok(IntMacroSim {
            params,
            bit_planes,
            weights: weights.to_vec(),
        })
    }

    /// The macro parameters.
    pub fn params(&self) -> &IntParams {
        &self.params
    }

    /// The loaded weights (row-major per slot, as passed to [`new`](Self::new)).
    pub fn weights(&self) -> &[i64] {
        &self.weights
    }

    /// Runs one MVM pass against the weights in `slot`, streaming `inputs`
    /// (exactly `H` signed `Bx`-bit values) bit-serially.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] variants for malformed inputs or slot index.
    pub fn mvm(&self, inputs: &[i64], slot: u32) -> Result<MvmOutput, SimError> {
        let p = &self.params;
        if slot >= p.l {
            return Err(SimError::BadSlot { slot, l: p.l });
        }
        if inputs.len() != p.h as usize {
            return Err(SimError::WrongInputCount {
                got: inputs.len(),
                expected: p.h,
            });
        }
        for (index, &value) in inputs.iter().enumerate() {
            if !fits_signed(value, p.bx) {
                return Err(SimError::InputOutOfRange {
                    index,
                    value,
                    bits: p.bx,
                });
            }
        }

        let chunks = p.cycles_per_pass();
        let h = p.h as usize;
        let slot_base = slot as usize * h;

        // Shift accumulators, one per column.
        let mut acc = vec![0i64; p.n as usize];
        // MSB-chunk-first streaming: acc = (acc << k) + partial.
        for c in (0..chunks).rev() {
            for (col, plane) in self.bit_planes.iter().enumerate() {
                // Adder tree input: one 1-bit × k-bit product per row.
                let mut tree_sum = 0i64;
                for (r, &x) in inputs.iter().enumerate() {
                    let wbit = plane[slot_base + r] as i64;
                    if wbit == 0 {
                        continue;
                    }
                    tree_sum += signed_chunk(x, c, p.k, p.bx);
                }
                acc[col] = (acc[col] << p.k) + tree_sum;
            }
        }

        // Results fusion: weight columns by bit position; the MSB column is
        // negative (two's complement).
        let groups = (p.n / p.bw) as usize;
        let mut outputs = Vec::with_capacity(groups);
        for g in 0..groups {
            let mut y = 0i64;
            for j in 0..p.bw as usize {
                let col_sum = acc[g * p.bw as usize + j];
                let weight = 1i64 << j;
                if j as u32 == p.bw - 1 {
                    y -= weight * col_sum;
                } else {
                    y += weight * col_sum;
                }
            }
            outputs.push(y);
        }
        Ok(MvmOutput {
            outputs,
            cycles: chunks as u64 + 3,
        })
    }

    /// Runs a full MVM across all `L` slots: `y = W·x` where the stored
    /// matrix `W` has `L·N/Bw` rows of `H` weights.
    ///
    /// # Errors
    ///
    /// Same conditions as [`mvm`](Self::mvm).
    pub fn full_mvm(&self, inputs: &[i64]) -> Result<MvmOutput, SimError> {
        let mut outputs = Vec::new();
        let mut cycles = 0;
        for slot in 0..self.params.l {
            let pass = self.mvm(inputs, slot)?;
            outputs.extend(pass.outputs);
            cycles += pass.cycles;
        }
        Ok(MvmOutput { outputs, cycles })
    }
}

/// The signed contribution of chunk `c` of the two's-complement `bx`-bit
/// value `x` when split into `k`-bit chunks: the chunk's bits at their
/// positions, with bit `bx−1` (the sign bit) carrying negative weight.
/// The chunk value is normalized to the chunk's own LSB (the shift
/// accumulator restores the position).
fn signed_chunk(x: i64, c: u32, k: u32, bx: u32) -> i64 {
    let u = (x as u64) & ((1u64 << bx) - 1);
    let mut v = 0i64;
    for j in 0..k {
        let bit_pos = c * k + j;
        if bit_pos >= bx {
            break;
        }
        let bit = ((u >> bit_pos) & 1) as i64;
        if bit_pos == bx - 1 {
            v -= bit << j;
        } else {
            v += bit << j;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_int_mvm;

    fn ramp_weights(p: &IntParams) -> Vec<i64> {
        let lo = -(1i64 << (p.bw - 1));
        let hi = (1i64 << (p.bw - 1)) - 1;
        let span = hi - lo + 1;
        (0..p.wstore())
            .map(|i| lo + (i as i64 * 7 + 3) % span)
            .collect()
    }

    fn ramp_inputs(p: &IntParams) -> Vec<i64> {
        let lo = -(1i64 << (p.bx - 1));
        let hi = (1i64 << (p.bx - 1)) - 1;
        let span = hi - lo + 1;
        (0..p.h as i64).map(|i| lo + (i * 13 + 5) % span).collect()
    }

    #[test]
    fn signed_chunk_reassembles_value() {
        // Σ_c chunk(c) << (c·k) must equal x for all signed x.
        for bx in [2u32, 4, 8] {
            for k in 1..=bx {
                let lo = -(1i64 << (bx - 1));
                let hi = (1i64 << (bx - 1)) - 1;
                for x in lo..=hi {
                    let chunks = bx.div_ceil(k);
                    let mut v = 0i64;
                    for c in 0..chunks {
                        v += signed_chunk(x, c, k, bx) << (c * k);
                    }
                    assert_eq!(v, x, "bx={bx} k={k} x={x}");
                }
            }
        }
    }

    #[test]
    fn mvm_is_exact_for_int8() {
        let p = IntParams::new(16, 8, 4, 2, 8, 8).unwrap();
        let w = ramp_weights(&p);
        let x = ramp_inputs(&p);
        let sim = IntMacroSim::new(p, &w).unwrap();
        for slot in 0..p.l {
            let got = sim.mvm(&x, slot).unwrap();
            let expect = reference_int_mvm(&p, &w, &x, slot);
            assert_eq!(got.outputs, expect, "slot {slot}");
        }
    }

    #[test]
    fn mvm_is_exact_across_precisions_and_k() {
        for (bw, n) in [(2u32, 8u32), (4, 8), (8, 16), (16, 32)] {
            for k in [1u32, 2, bw] {
                let p = IntParams::new(n, 8, 2, k, bw, bw).unwrap();
                let w = ramp_weights(&p);
                let x = ramp_inputs(&p);
                let sim = IntMacroSim::new(p, &w).unwrap();
                let got = sim.mvm(&x, 1).unwrap();
                let expect = reference_int_mvm(&p, &w, &x, 1);
                assert_eq!(got.outputs, expect, "bw={bw} k={k}");
            }
        }
    }

    #[test]
    fn extreme_values_are_exact() {
        let p = IntParams::new(8, 4, 2, 3, 8, 8).unwrap();
        // All weights at the negative extreme, inputs at both extremes.
        let w = vec![-128i64; p.wstore() as usize];
        let x = vec![-128, 127, -128, 127];
        let sim = IntMacroSim::new(p, &w).unwrap();
        let got = sim.mvm(&x, 0).unwrap();
        assert_eq!(got.outputs, reference_int_mvm(&p, &w, &x, 0));
    }

    #[test]
    fn full_mvm_covers_all_slots() {
        let p = IntParams::new(8, 4, 4, 2, 4, 4).unwrap();
        let w = ramp_weights(&p);
        let x = ramp_inputs(&p);
        let sim = IntMacroSim::new(p, &w).unwrap();
        let full = sim.full_mvm(&x).unwrap();
        assert_eq!(full.outputs.len(), (p.l * p.n / p.bw) as usize);
        let mut expect = Vec::new();
        for slot in 0..p.l {
            expect.extend(reference_int_mvm(&p, &w, &x, slot));
        }
        assert_eq!(full.outputs, expect);
    }

    #[test]
    fn cycle_count_follows_bit_serial_schedule() {
        let p = IntParams::new(8, 4, 2, 2, 8, 8).unwrap();
        let w = ramp_weights(&p);
        let sim = IntMacroSim::new(p, &w).unwrap();
        let out = sim.mvm(&[1, 2, 3, 4], 0).unwrap();
        assert_eq!(out.cycles, 4 + 3); // ceil(8/2) streaming + 3 pipeline
    }

    #[test]
    fn input_validation() {
        let p = IntParams::new(8, 4, 2, 2, 4, 4).unwrap();
        let w = ramp_weights(&p);
        let sim = IntMacroSim::new(p, &w).unwrap();
        assert!(matches!(
            sim.mvm(&[1, 2, 3], 0),
            Err(SimError::WrongInputCount { .. })
        ));
        assert!(matches!(
            sim.mvm(&[1, 2, 3, 99], 0),
            Err(SimError::InputOutOfRange { .. })
        ));
        assert!(matches!(
            sim.mvm(&[1, 2, 3, 4], 9),
            Err(SimError::BadSlot { .. })
        ));
    }

    #[test]
    fn weight_validation() {
        let p = IntParams::new(8, 4, 2, 2, 4, 4).unwrap();
        assert!(matches!(
            IntMacroSim::new(p, &[0; 3]),
            Err(SimError::WrongWeightCount { .. })
        ));
        let mut w = ramp_weights(&p);
        w[5] = 8; // out of signed 4-bit range
        assert!(matches!(
            IntMacroSim::new(p, &w),
            Err(SimError::WeightOutOfRange { index: 5, .. })
        ));
    }
}
