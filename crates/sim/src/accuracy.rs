//! Numerical-accuracy evaluation of the FP datapath across formats.
//!
//! The paper motivates DCIM with full-precision digital computation and
//! multi-precision support for "high-precision tasks such as model
//! training". This module quantifies that story: it runs randomized MVM
//! workloads through the pre-aligned FP datapath and reports error
//! statistics per format, so a user can pick the cheapest precision that
//! meets an accuracy target.

use crate::fp::FpFormat;
use crate::{FpMacroSim, SimError};
use sega_estimator::FpParams;

/// Error statistics of the FP datapath on a randomized workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyStats {
    /// Number of MVM outputs sampled.
    pub samples: usize,
    /// Mean relative error versus the exact (f64) product of the
    /// *quantized* operands — isolates the datapath's alignment error.
    pub mean_rel_error: f64,
    /// Worst relative error observed.
    pub max_rel_error: f64,
    /// Mean relative error versus the unquantized f64 reference —
    /// end-to-end error including input quantization.
    pub mean_end_to_end_error: f64,
}

/// Runs `trials` randomized MVM passes through an FP macro of the given
/// format and geometry and collects error statistics.
///
/// `scale` sets the operand magnitude range (uniform in `[-scale, scale]`);
/// `seed` makes the workload reproducible.
///
/// # Errors
///
/// Propagates simulator construction errors.
///
/// # Panics
///
/// Panics if the format does not match the parameters (caller bug).
pub fn evaluate_accuracy(
    params: FpParams,
    format: FpFormat,
    scale: f64,
    trials: u32,
    seed: u64,
) -> Result<AccuracyStats, SimError> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = |s: f64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * s
    };

    let mut samples = 0usize;
    let mut sum_rel = 0.0;
    let mut max_rel: f64 = 0.0;
    let mut sum_e2e = 0.0;
    for _ in 0..trials {
        let weights: Vec<f64> = (0..params.wstore()).map(|_| next(scale)).collect();
        let inputs: Vec<f64> = (0..params.h).map(|_| next(scale)).collect();
        let sim = FpMacroSim::new(params, format, &weights)?;
        let out = sim.mvm(&inputs, 0)?;

        let wq = sim.quantized_weights();
        let xq: Vec<f64> = inputs.iter().map(|&x| format.quantize(x)).collect();
        let groups = (params.n / params.bm) as usize;
        let h = params.h as usize;
        for (g, &got) in out.values.iter().enumerate() {
            let exact_q: f64 = (0..h).map(|r| wq[g * h + r] * xq[r]).sum();
            let exact: f64 = (0..h).map(|r| weights[g * h + r] * inputs[r]).sum();
            let denom = exact_q.abs().max(1e-30);
            let rel = (got - exact_q).abs() / denom;
            sum_rel += rel;
            max_rel = max_rel.max(rel);
            sum_e2e += (got - exact).abs() / exact.abs().max(1e-30);
            samples += 1;
        }
        let _ = groups;
    }
    Ok(AccuracyStats {
        samples,
        mean_rel_error: sum_rel / samples as f64,
        max_rel_error: max_rel,
        mean_end_to_end_error: sum_e2e / samples as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_for(fmt: FpFormat) -> FpParams {
        let bm = fmt.mantissa_bits();
        FpParams::new(bm, 16, 1, 1, fmt.exp_bits, bm).unwrap()
    }

    fn stats_for(fmt: FpFormat) -> AccuracyStats {
        evaluate_accuracy(params_for(fmt), fmt, 1.5, 20, 42).unwrap()
    }

    #[test]
    fn wider_mantissas_are_monotonically_more_accurate() {
        // The multi-precision motivation, as an invariant: FP8 > BF16 >
        // FP16 > FP32 on mean relative error.
        let ladder = [
            FpFormat::FP8_E4M3,
            FpFormat::BF16,
            FpFormat::FP16,
            FpFormat::FP32,
        ];
        let errs: Vec<f64> = ladder
            .iter()
            .map(|&f| stats_for(f).mean_rel_error)
            .collect();
        for w in errs.windows(2) {
            assert!(
                w[1] < w[0],
                "accuracy must improve down the ladder: {errs:?}"
            );
        }
    }

    #[test]
    fn fp32_datapath_error_is_tiny() {
        let s = stats_for(FpFormat::FP32);
        assert!(
            s.mean_rel_error < 1e-4,
            "FP32 mean rel err {} too large",
            s.mean_rel_error
        );
    }

    #[test]
    fn end_to_end_error_includes_quantization() {
        // For narrow formats the end-to-end error (vs unquantized inputs)
        // must be at least comparable to the datapath-only error.
        let s = stats_for(FpFormat::FP8_E4M3);
        assert!(s.mean_end_to_end_error > 0.0);
        assert!(s.samples > 0);
        assert!(s.max_rel_error >= s.mean_rel_error);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = evaluate_accuracy(params_for(FpFormat::BF16), FpFormat::BF16, 1.0, 5, 7).unwrap();
        let b = evaluate_accuracy(params_for(FpFormat::BF16), FpFormat::BF16, 1.0, 5, 7).unwrap();
        assert_eq!(a, b);
    }
}
