//! Minifloat codecs for the formats the paper evaluates: FP8 (E4M3), FP16,
//! BF16 and FP32.
//!
//! [`FpFormat`] describes a sign/exponent/fraction layout;
//! [`FpFormat::encode`] quantizes an `f64` to the nearest representable
//! value (round-to-nearest-even, saturating at the format's maximum finite
//! value), and [`FpValue`] carries the decomposed fields the pre-alignment
//! hardware operates on.

use sega_estimator::Precision;

/// A binary floating-point layout: 1 sign bit, `exp_bits` exponent bits,
/// `frac_bits` stored fraction bits (hidden leading one, IEEE-style bias).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpFormat {
    /// Exponent field width `BE`.
    pub exp_bits: u32,
    /// Stored fraction width (without the hidden bit).
    pub frac_bits: u32,
}

/// A decomposed floating-point value in some [`FpFormat`]:
/// `(-1)^sign · mantissa · 2^(exp − bias − frac_bits)` with
/// `mantissa = frac | hidden`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpValue {
    /// Sign bit.
    pub sign: bool,
    /// Biased exponent field (0 = subnormal/zero).
    pub exp: u32,
    /// Stored fraction field.
    pub frac: u64,
}

impl FpFormat {
    /// FP8 in E4M3 layout.
    pub const FP8_E4M3: FpFormat = FpFormat {
        exp_bits: 4,
        frac_bits: 3,
    };
    /// IEEE half precision (E5M10).
    pub const FP16: FpFormat = FpFormat {
        exp_bits: 5,
        frac_bits: 10,
    };
    /// bfloat16 (E8M7).
    pub const BF16: FpFormat = FpFormat {
        exp_bits: 8,
        frac_bits: 7,
    };
    /// IEEE single precision (E8M23).
    pub const FP32: FpFormat = FpFormat {
        exp_bits: 8,
        frac_bits: 23,
    };

    /// The format matching a floating-point [`Precision`], or `None` for
    /// integer precisions.
    pub fn from_precision(p: Precision) -> Option<FpFormat> {
        match p {
            Precision::Fp8 => Some(Self::FP8_E4M3),
            Precision::Fp16 => Some(Self::FP16),
            Precision::Bf16 => Some(Self::BF16),
            Precision::Fp32 => Some(Self::FP32),
            _ => None,
        }
    }

    /// Exponent bias `2^(BE−1) − 1`.
    pub const fn bias(&self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// MAC mantissa width `BM` = fraction + hidden bit.
    pub const fn mantissa_bits(&self) -> u32 {
        self.frac_bits + 1
    }

    /// Largest finite representable magnitude.
    pub fn max_value(&self) -> f64 {
        let max_exp = (1u32 << self.exp_bits) - 1; // all-ones reserved? we saturate below it
        let exp = max_exp as i32 - 1 - self.bias();
        let frac = (1u64 << self.frac_bits) - 1;
        let mant = ((1u64 << self.frac_bits) | frac) as f64;
        mant * 2f64.powi(exp - self.frac_bits as i32)
    }

    /// Quantizes `x` to the nearest representable value
    /// (round-to-nearest-even), saturating at `±max_value()`. Zero,
    /// subnormal-range values flush to zero (the paper's hardware aligns
    /// against `XEmax` and has no subnormal path).
    pub fn encode(&self, x: f64) -> FpValue {
        let sign = x.is_sign_negative();
        let mag = x.abs();
        if !mag.is_finite() || mag >= self.max_value() {
            let max_exp = (1u32 << self.exp_bits) - 2;
            return FpValue {
                sign,
                exp: max_exp,
                frac: (1u64 << self.frac_bits) - 1,
            };
        }
        if mag == 0.0 {
            return FpValue {
                sign,
                exp: 0,
                frac: 0,
            };
        }
        // Unbiased exponent of the leading one.
        let e = mag.log2().floor() as i32;
        let biased = e + self.bias();
        if biased <= 0 {
            // Subnormal range: flush to zero.
            return FpValue {
                sign,
                exp: 0,
                frac: 0,
            };
        }
        // Round the mantissa to frac_bits fractional bits.
        let scaled = mag * 2f64.powi(self.frac_bits as i32 - e);
        let mut mant = round_ties_even(scaled);
        let mut biased = biased as u32;
        if mant >= (1u64 << (self.frac_bits + 1)) {
            mant >>= 1;
            biased += 1;
            let max_exp = (1u32 << self.exp_bits) - 2;
            if biased > max_exp {
                return FpValue {
                    sign,
                    exp: max_exp,
                    frac: (1u64 << self.frac_bits) - 1,
                };
            }
        }
        FpValue {
            sign,
            exp: biased,
            frac: mant & ((1u64 << self.frac_bits) - 1),
        }
    }

    /// Decodes a value back to `f64`.
    pub fn decode(&self, v: FpValue) -> f64 {
        let mag = if v.exp == 0 {
            0.0
        } else {
            let mant = ((1u64 << self.frac_bits) | v.frac) as f64;
            mant * 2f64.powi(v.exp as i32 - self.bias() - self.frac_bits as i32)
        };
        if v.sign {
            -mag
        } else {
            mag
        }
    }

    /// Quantizes `x` through an encode/decode round trip — the value the
    /// hardware actually sees.
    pub fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }

    /// The full mantissa (hidden bit included) of an encoded value; zero
    /// for zero/flushed values.
    pub fn mantissa(&self, v: FpValue) -> u64 {
        if v.exp == 0 {
            0
        } else {
            (1u64 << self.frac_bits) | v.frac
        }
    }
}

fn round_ties_even(x: f64) -> u64 {
    let floor = x.floor();
    let diff = x - floor;
    let f = floor as u64;
    if diff > 0.5 || (diff == 0.5 && !f.is_multiple_of(2)) {
        f + 1
    } else {
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FORMATS: [FpFormat; 4] = [
        FpFormat::FP8_E4M3,
        FpFormat::FP16,
        FpFormat::BF16,
        FpFormat::FP32,
    ];

    #[test]
    fn biases_match_ieee() {
        assert_eq!(FpFormat::FP8_E4M3.bias(), 7);
        assert_eq!(FpFormat::FP16.bias(), 15);
        assert_eq!(FpFormat::BF16.bias(), 127);
        assert_eq!(FpFormat::FP32.bias(), 127);
    }

    #[test]
    fn mantissa_widths_match_estimator() {
        assert_eq!(FpFormat::FP8_E4M3.mantissa_bits(), 4);
        assert_eq!(FpFormat::FP16.mantissa_bits(), 11);
        assert_eq!(FpFormat::BF16.mantissa_bits(), 8);
        assert_eq!(FpFormat::FP32.mantissa_bits(), 24);
    }

    #[test]
    fn exact_values_round_trip() {
        for fmt in FORMATS {
            for x in [0.0, 1.0, -1.0, 0.5, 2.0, -3.5, 14.0, -0.25] {
                assert_eq!(fmt.quantize(x), x, "{fmt:?} {x}");
            }
        }
    }

    #[test]
    fn fp32_round_trips_f32_values() {
        for x in [1.234_567_f32, -9.75, 3.0e8, 1.5e-3] {
            let q = FpFormat::FP32.quantize(x as f64);
            assert_eq!(q as f32, x, "{x}");
        }
    }

    #[test]
    fn quantization_error_is_bounded() {
        for fmt in FORMATS {
            let ulp_rel = 2f64.powi(-(fmt.frac_bits as i32));
            // Sweep within the format's normal range only (subnormals flush).
            let mut x = 2f64.powi(1 - fmt.bias()) * 1.1;
            while x < 100.0 {
                let q = fmt.quantize(x);
                let rel = ((q - x) / x).abs();
                assert!(
                    rel <= ulp_rel / 2.0 * 1.0001,
                    "{fmt:?}: quantize({x}) = {q}, rel err {rel}"
                );
                x *= 1.7;
            }
        }
    }

    #[test]
    fn saturation_at_max() {
        for fmt in FORMATS {
            let max = fmt.max_value();
            assert_eq!(fmt.quantize(max * 8.0), max);
            assert_eq!(fmt.quantize(-max * 8.0), -max);
            assert_eq!(fmt.quantize(f64::INFINITY), max);
        }
    }

    #[test]
    fn subnormals_flush_to_zero() {
        let fmt = FpFormat::FP8_E4M3;
        // Smallest normal for E4M3: 2^(1-7) = 2^-6.
        let tiny = 2f64.powi(-9);
        assert_eq!(fmt.quantize(tiny), 0.0);
        assert_eq!(fmt.quantize(2f64.powi(-6)), 2f64.powi(-6));
    }

    #[test]
    fn sign_is_preserved() {
        for fmt in FORMATS {
            let v = fmt.encode(-2.5);
            assert!(v.sign);
            assert!(fmt.decode(v) < 0.0);
        }
    }

    #[test]
    fn mantissa_has_hidden_bit() {
        let fmt = FpFormat::BF16;
        let v = fmt.encode(1.0);
        assert_eq!(fmt.mantissa(v), 1 << fmt.frac_bits);
        assert_eq!(fmt.mantissa(fmt.encode(0.0)), 0);
    }

    #[test]
    fn round_ties_even_behaviour() {
        assert_eq!(round_ties_even(2.5), 2);
        assert_eq!(round_ties_even(3.5), 4);
        assert_eq!(round_ties_even(2.4), 2);
        assert_eq!(round_ties_even(2.6), 3);
    }

    #[test]
    fn from_precision_mapping() {
        assert_eq!(
            FpFormat::from_precision(Precision::Bf16),
            Some(FpFormat::BF16)
        );
        assert_eq!(FpFormat::from_precision(Precision::Int8), None);
    }

    #[test]
    fn e4m3_max_value() {
        // E4M3 with our saturate-below-all-ones convention: max biased
        // exponent 14 -> 2^7, mantissa 1.875 -> 240.
        assert_eq!(FpFormat::FP8_E4M3.max_value(), 240.0);
    }
}
