//! The `sega-dcim` command-line compiler.
//!
//! ```text
//! sega-dcim compile --wstore 8192 --precision int8 [--strategy knee]
//!                   [--population 100] [--generations 120] [--seed N]
//!                   [--threads N] [--no-cache] [--out DIR]
//! sega-dcim explore --wstore 8192 --precision bf16 [--threads N] [--no-cache] [--csv]
//! sega-dcim estimate --n 32 --h 128 --l 16 --k 4 --precision int8
//! ```
//!
//! `--threads` bounds the exploration's evaluation pipeline (`0` = all
//! hardware threads, the default; `1` = serial); batches run on a
//! persistent worker pool either way. `--no-cache` disables estimate
//! memoization (for pipeline A/B timing). The frontier is bit-identical
//! for every combination — the flags only trade wall-clock.
//!
//! `compile` runs the full pipeline and writes `macro.v`, `macro.def` and
//! `report.md` into `--out` (default `./sega-out`); `explore` prints the
//! Pareto frontier; `estimate` prints the cost model for one design point.

use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use sega_dcim::report::{csv_table, markdown_table};
use sega_dcim::{Compiler, DistillStrategy, UserSpec};
use sega_estimator::{estimate, DcimDesign, OperatingConditions, Precision};
use sega_layout::export::to_ascii;
use sega_moga::Nsga2Config;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sega-dcim compile  --wstore N --precision P [--strategy knee|min-area|max-throughput|max-efficiency]
                     [--population N] [--generations N] [--seed N] [--threads N] [--no-cache] [--out DIR]
  sega-dcim explore  --wstore N --precision P [--threads N] [--no-cache] [--csv]
  sega-dcim estimate --n N --h H --l L --k K --precision P
precisions: int2 int4 int8 int16 fp8 fp16 bf16 fp32
--threads:  evaluation pool width (0 = all hardware threads, 1 = serial)
--no-cache: disable estimate memoization (results are identical, only slower)";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "compile" => compile(&flags),
        "explore" => explore(&flags),
        "estimate" => estimate_cmd(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected `--flag`, got `{arg}`"))?;
        // Boolean flags take no value.
        if key == "csv" || key == "no-cache" {
            flags.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag `--{key}` needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(flags)
}

fn get_u64(flags: &HashMap<String, String>, key: &str) -> Result<u64, String> {
    flags
        .get(key)
        .ok_or_else(|| format!("missing --{key}"))?
        .parse()
        .map_err(|e| format!("--{key}: {e}"))
}

fn get_u32_opt(flags: &HashMap<String, String>, key: &str) -> Result<Option<u32>, String> {
    flags
        .get(key)
        .map(|v| v.parse().map_err(|e| format!("--{key}: {e}")))
        .transpose()
}

fn get_precision(flags: &HashMap<String, String>) -> Result<Precision, String> {
    let raw = flags.get("precision").ok_or("missing --precision")?;
    Precision::from_name(raw).ok_or_else(|| format!("unknown precision `{raw}`"))
}

fn get_strategy(flags: &HashMap<String, String>) -> Result<DistillStrategy, String> {
    Ok(match flags.get("strategy").map(String::as_str) {
        None | Some("knee") => DistillStrategy::Knee,
        Some("min-area") => DistillStrategy::MinArea,
        Some("max-throughput") => DistillStrategy::MaxThroughput,
        Some("max-efficiency") => DistillStrategy::MaxEfficiency,
        Some(other) => return Err(format!("unknown strategy `{other}`")),
    })
}

fn compiler_from(flags: &HashMap<String, String>) -> Result<Compiler, String> {
    let mut cfg = Nsga2Config::default();
    if let Some(p) = get_u32_opt(flags, "population")? {
        cfg.population = p as usize;
    }
    if let Some(g) = get_u32_opt(flags, "generations")? {
        cfg.generations = g as usize;
    }
    if let Some(s) = flags.get("seed") {
        cfg.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    let mut compiler = Compiler::new().with_nsga_config(cfg);
    let mut pipeline = sega_dcim::PipelineOptions::default();
    if let Some(t) = flags.get("threads") {
        pipeline.threads = t.parse().map_err(|e| format!("--threads: {e}"))?;
    }
    if flags.contains_key("no-cache") {
        pipeline.cache = false;
    }
    compiler = compiler.with_pipeline(pipeline);
    Ok(compiler)
}

fn compile(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = UserSpec::new(get_u64(flags, "wstore")?, get_precision(flags)?)
        .map_err(|e| e.to_string())?;
    let strategy = get_strategy(flags)?;
    let compiler = compiler_from(flags)?;
    println!("compiling {spec} (strategy {strategy:?}) …");
    let compiled = compiler
        .compile(&spec, strategy)
        .map_err(|e| e.to_string())?;

    let out: PathBuf = flags
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("sega-out"));
    fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    fs::write(out.join("macro.v"), &compiled.verilog).map_err(|e| e.to_string())?;
    fs::write(out.join("macro.def"), &compiled.def).map_err(|e| e.to_string())?;

    let mut report = String::new();
    report.push_str("# SEGA-DCIM compile report\n\n");
    report.push_str(&format!("* specification: {spec}\n"));
    report.push_str(&format!("* selected design: {}\n", compiled.design));
    report.push_str(&format!("* estimate: {}\n", compiled.estimate));
    report.push_str(&format!(
        "* audit: area err {:.2e}, energy err {:.2e}\n\n",
        compiled.audit.area_error(),
        compiled.audit.energy_error()
    ));
    report.push_str("## Pareto frontier\n\n");
    let rows: Vec<Vec<String>> = compiled
        .frontier
        .iter()
        .map(|s| {
            vec![
                s.design.to_string(),
                format!("{:.4}", s.estimate.area_mm2),
                format!("{:.3}", s.estimate.delay_ns),
                format!("{:.4}", s.estimate.energy_per_pass_nj),
                format!("{:.3}", s.estimate.tops),
            ]
        })
        .collect();
    report.push_str(&markdown_table(
        &["design", "area (mm²)", "delay (ns)", "energy (nJ)", "TOPS"],
        &rows,
    ));
    fs::write(out.join("report.md"), &report).map_err(|e| e.to_string())?;

    println!("selected: {}", compiled.design);
    println!("estimate: {}", compiled.estimate);
    println!();
    println!("{}", to_ascii(&compiled.layout, 56));
    println!("wrote {}/macro.v, macro.def, report.md", out.display());
    Ok(())
}

fn explore(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = UserSpec::new(get_u64(flags, "wstore")?, get_precision(flags)?)
        .map_err(|e| e.to_string())?;
    let compiler = compiler_from(flags)?;
    let result = compiler.explore(&spec);
    let rows: Vec<Vec<String>> = result
        .solutions
        .iter()
        .map(|s| {
            vec![
                s.design.to_string(),
                format!("{:.4}", s.estimate.area_mm2),
                format!("{:.3}", s.estimate.delay_ns),
                format!("{:.4}", s.estimate.energy_per_pass_nj),
                format!("{:.3}", s.estimate.tops),
                format!("{:.1}", s.estimate.tops_per_w()),
            ]
        })
        .collect();
    let header = [
        "design",
        "area_mm2",
        "delay_ns",
        "energy_nj",
        "tops",
        "tops_per_w",
    ];
    if flags.contains_key("csv") {
        print!("{}", csv_table(&header, &rows));
    } else {
        println!(
            "{} Pareto designs for {spec} ({} evaluations, {} distinct estimates, {} cache hits):\n",
            result.solutions.len(),
            result.evaluations,
            result.distinct_evaluations,
            result.cache_hits
        );
        print!("{}", markdown_table(&header, &rows));
    }
    Ok(())
}

fn estimate_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let n = get_u32_opt(flags, "n")?.ok_or("missing --n")?;
    let h = get_u32_opt(flags, "h")?.ok_or("missing --h")?;
    let l = get_u32_opt(flags, "l")?.ok_or("missing --l")?;
    let k = get_u32_opt(flags, "k")?.ok_or("missing --k")?;
    let precision = get_precision(flags)?;
    let design = DcimDesign::for_precision(precision, n, h, l, k).map_err(|e| e.to_string())?;
    let est = estimate(
        &design,
        &sega_cells::Technology::tsmc28(),
        &OperatingConditions::paper_default(),
    );
    println!("design   : {design}");
    println!("wstore   : {}", design.wstore());
    println!("estimate : {est}");
    println!("breakdown (NOR-gate area units):");
    for (name, cost) in est.breakdown.iter() {
        if cost.area > 0.0 {
            println!(
                "  {name:>18}: {:>12.0}  ({:4.1}%)",
                cost.area,
                100.0 * cost.area / est.unit.area
            );
        }
    }
    Ok(())
}
