//! The `sega-dcim` command-line compiler.
//!
//! ```text
//! sega-dcim compile --wstore 8192 --precision int8 [--strategy knee]
//!                   [--population 100] [--generations 120] [--seed N]
//!                   [--threads N] [--no-cache] [--out DIR]
//! sega-dcim explore --wstore 8192 --precision bf16 [--threads N] [--no-cache] [--csv | --json]
//! sega-dcim estimate --n 32 --h 128 --l 16 --k 4 --precision int8 [--json]
//! sega-dcim batch   --jobs FILE [--cache-file FILE] [--report FILE]
//!                   [--population N] [--generations N] [--seed N]
//!                   [--threads N] [--shards N] [--speculate]
//!                   [--backend macro|instrumented|remote] [--workers N]
//!                   [--worker-log-dir DIR] [--worker-deadline-ms N]
//!                   [--restart-budget N] [--backoff-ms N] [--backoff-seed N]
//!                   [--checkpoint FILE | --resume FILE] [--stop-after-jobs N]
//!                   [--checkpoint-generations N] [--stop-after-progress N]
//! sega-dcim serve   --listen ADDR [--cache-file FILE] [--threads N]
//!                   [--backend macro|remote] [--workers N] [--transport T]
//!                   [--hello-deadline-ms N] [--idle-timeout-ms N]
//!                   [--grace-ms N] [--log]
//! sega-dcim worker  --serve | --connect ADDR [--fail-after N]
//!                   [--corrupt-after N] [--hang-after N] [--stall-ms N]
//!                   [--truncate-after N] [--drop-conn-after N]
//!                   [--reconnect-after N] [--late-hello-ms N]
//!                   [--capacity N] [--worker-id N] [--log]
//! ```
//!
//! `--threads` bounds the exploration's evaluation pipeline (`0` = all
//! hardware threads, the default; `1` = serial); batches run on a
//! persistent worker pool either way. `--no-cache` disables estimate
//! memoization (for pipeline A/B timing). The frontier is bit-identical
//! for every combination — the flags only trade wall-clock.
//!
//! `compile` runs the full pipeline and writes `macro.v`, `macro.def` and
//! `report.md` into `--out` (default `./sega-out`); `explore` prints the
//! Pareto frontier; `estimate` prints the cost model for one design point
//! (both machine-readable with `--json`).
//!
//! `batch` is the service-shaped entry point: it reads a JSON job file of
//! many specifications, runs them over one worker pool and one shared
//! eval cache, and emits a wire-codec results report. `--cache-file`
//! loads the cache before the run and saves it after (binary snapshot,
//! or JSON when the path ends in `.json`), so an identical rerun
//! warm-starts to **0 distinct evaluations** with bit-identical fronts.
//! With `--backend remote` the batch dispatches cohorts to `--workers N`
//! worker **processes** (this same binary, re-invoked as `sega-dcim
//! worker --serve`) over the framed wire protocol; the fronts are
//! bit-identical to the in-process run for every worker count, and
//! remotely computed estimates land in the `--cache-file` like local
//! ones.
//!
//! The remote fleet is **supervised**: every outstanding request carries
//! a deadline (`--worker-deadline-ms`), a stalled or dead worker is
//! buried and its work requeued, and buried workers are respawned under
//! a per-worker `--restart-budget` with jittered exponential backoff
//! (`--backoff-ms` base, `--backoff-seed` jitter seed — deterministic
//! when seeded). `--checkpoint F` journals each completed batch job (and
//! its cache delta) to `F`; after a crash or an early stop,
//! `--resume F` skips the finished jobs, warm-starts the cache from the
//! journal, and produces a report **byte-identical** to an uninterrupted
//! run. `--stop-after-jobs N` stops after N executed jobs — the
//! deterministic stand-in for `kill -9` in the CI resume arm.
//! `--checkpoint-generations G` additionally journals the NSGA-II driver
//! state *inside* each job every G bred generations, so `--resume` picks
//! an interrupted exploration up at its last generation boundary instead
//! of re-running it; `--stop-after-progress N` abandons the run right
//! after the Nth such record — the mid-job kill stand-in.
//!
//! `--speculate` overlaps generations: while a cohort is in flight on
//! the backend, the next one is bred from cache-hit rows and predicted
//! misses, then re-bred if the real rows disagree — the committed
//! trajectory (and front) is bit-identical to the synchronous loop.
//!
//! `--transport stdio|unix|tcp` picks the fleet's link: stdio pipes
//! (the default), a Unix domain socket, or TCP on `127.0.0.1` — fronts
//! and accounting are bit-identical across all three. On the socket
//! transports a worker whose *connection* drops is buried + requeued
//! like a dead process, but the process may reconnect and **rejoin**
//! under the same `--restart-budget` (the ledger gains a `rejoins`
//! term).
//!
//! `serve` runs the long-lived daemon: it listens on `--listen
//! unix:/path.sock` or `tcp:host:port`, accepts framed batch jobs from
//! many concurrent clients, and multiplexes them onto one shared eval
//! cache (warm-started from and flushed to `--cache-file`), so a repeat
//! batch from a second client answers with **0 distinct evaluations**.
//! `batch --connect ADDR` is the matching client (`--drain` asks the
//! daemon to flush and exit after the batch); SIGTERM or a client's
//! `--drain` triggers the graceful drain: stop accepting, finish
//! in-flight jobs under `--grace-ms`, flush the snapshot, exit.
//!
//! `worker` is the serving half of the fleet protocol: it speaks frames
//! on stdio (`--serve`) or dials a coordinator's hub (`--connect ADDR`)
//! and is only useful when launched by a coordinator (or a test).
//! `--fail-after`/`--corrupt-after`/`--hang-after`/`--stall-ms`/
//! `--truncate-after`/`--drop-conn-after`/`--reconnect-after`/
//! `--late-hello-ms` are fault-injection knobs for the recovery test
//! matrix; `--capacity` sets the weight the hello advertises;
//! `--worker-id`/`--log` give every stderr line a
//! `[+elapsed-ms wID rREQ]` prefix.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use sega_dcim::batch::{parse_jobs, run_batch_with};
use sega_dcim::report::{csv_table, markdown_table};
use sega_dcim::{
    BatchJob, CacheKey, CacheStore, Compiler, DistillStrategy, ExplorationResult,
    InstrumentedBackend, PipelineOptions, RemoteBackend, RemoteOptions, SharedEvalCache, UserSpec,
};
use sega_estimator::{estimate, DcimDesign, MacroEstimate, OperatingConditions, Precision};
use sega_layout::export::to_ascii;
use sega_moga::Nsga2Config;
use sega_wire::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sega-dcim compile  --wstore N --precision P [--strategy knee|min-area|max-throughput|max-efficiency]
                     [--population N] [--generations N] [--seed N] [--threads N] [--no-cache] [--out DIR]
  sega-dcim explore  --wstore N --precision P [--threads N] [--no-cache] [--csv | --json]
  sega-dcim estimate --n N --h H --l L --k K --precision P [--json]
  sega-dcim batch    --jobs FILE [--cache-file FILE | --cache-dir DIR] [--report FILE]
                     [--cache-max-segments N]
                     [--population N] [--generations N] [--seed N]
                     [--threads N] [--shards N] [--speculate]
                     [--backend macro|instrumented|remote] [--workers N]
                     [--worker-log-dir DIR] [--worker-deadline-ms N]
                     [--restart-budget N] [--backoff-ms N] [--backoff-seed N]
                     [--transport stdio|unix|tcp]
                     [--inject-fault none|kill-one|corrupt-one|hang-one|stall-one|
                                     truncate-one|drop-conn-one|reconnect-one]
                     [--checkpoint FILE | --resume FILE] [--stop-after-jobs N]
                     [--checkpoint-generations N] [--stop-after-progress N]
  sega-dcim batch    --jobs FILE --connect ADDR [--drain] [--report FILE]
                     [--cache-file FILE | --cache-dir DIR] [--cache-max-segments N]
                     [--population N] [--generations N] [--seed N]
  sega-dcim serve    --listen ADDR [--cache-file FILE | --cache-dir DIR] [--threads N]
                     [--cache-max-segments N]
                     [--backend macro|remote] [--workers N] [--transport stdio|unix|tcp]
                     [--hello-deadline-ms N] [--idle-timeout-ms N] [--grace-ms N] [--log]
  sega-dcim worker   --serve | --connect ADDR [--fail-after N] [--corrupt-after N]
                     [--hang-after N] [--stall-ms N] [--truncate-after N]
                     [--drop-conn-after N] [--reconnect-after N] [--late-hello-ms N]
                     [--capacity N] [--worker-id N] [--log]
precisions:   int2 int4 int8 int16 fp8 fp16 bf16 fp32
--threads:    evaluation pool width (0 = all hardware threads, 1 = serial;
              batch requires an explicit width >= 1, or omit the flag)
--no-cache:   disable estimate memoization (results are identical, only slower)
--json:       emit the wire-codec JSON document instead of a table
--jobs:       JSON job file: {\"jobs\":[{\"wstore\":8192,\"precision\":\"int8\",
              \"population\":..,\"generations\":..,\"seed\":..}, ...]}
--cache-file: load the eval cache before the batch, save it after (warm start;
              binary snapshot, or JSON text when the path ends in .json)
--cache-dir:  like --cache-file, but an append-only directory of fingerprinted
              snapshot segments: a save appends only the delta, a load skips
              segments no job needs, and a crash-torn trailing segment is
              skipped with a warning instead of aborting; with --connect the
              local store anti-entropy-syncs missing entries from the daemon
--cache-max-segments: compaction budget for --cache-dir (default 8): a save
              past the budget folds every segment into one
--report:     write the batch results JSON here (default: stdout)
--backend:    estimator backend (default macro; instrumented = macro + counters;
              remote = a fleet of worker processes over the wire protocol)
--workers:    worker processes for --backend remote (default 2, must be >= 1)
--worker-log-dir: write each remote worker's stderr to DIR/worker-N.log
              (timestamped, created if missing, appended across respawns)
--worker-deadline-ms: per-request deadline before a worker counts as stalled
              (default 30000)
--restart-budget: respawn attempts per buried worker (default 2; 0 disables)
--backoff-ms: base of the jittered exponential respawn backoff (default 250)
--backoff-seed: seed of the deterministic backoff jitter (default 0)
--transport:  how the remote fleet links up (stdio pipes, unix socket, or tcp
              on 127.0.0.1); fronts are bit-identical across all three
--inject-fault: sabotage remote worker 0 (none|kill-one|corrupt-one|hang-one|
              stall-one|truncate-one|drop-conn-one|reconnect-one) — the CI
              fault matrix; results must stay bit-identical regardless
--speculate:  breed each generation speculatively while the previous cohort is
              still in flight (predicted rows for cache misses, re-bred on
              mismatch); fronts stay bit-identical to the synchronous loop
--checkpoint: journal completed jobs (and cache deltas) to FILE as they finish
--resume:     skip the jobs FILE already records and warm-start from its deltas;
              the finished report is byte-identical to an uninterrupted run
--stop-after-jobs: stop after N executed jobs (requires --checkpoint or
              --resume; the report is withheld — resume to finish the batch)
--checkpoint-generations: also journal the GA driver state inside each job
              every N bred generations, so --resume continues an interrupted
              exploration at its last journaled generation boundary
--stop-after-progress: abandon the run after the Nth mid-job progress record
              (requires --checkpoint-generations; the mid-job kill stand-in)
--connect:    batch: run the jobs on a `sega-dcim serve` daemon at ADDR
              (unix:/path.sock or tcp:host:port) instead of in-process;
              worker: dial a coordinator's socket hub at ADDR
--drain:      after the last job, ask the connected daemon to flush its cache
              snapshot and exit (requires --connect)
--listen:     the daemon's accept address (unix:/path.sock or tcp:host:port;
              tcp:host:0 picks a free port and logs it with --log)
--hello-deadline-ms / --idle-timeout-ms / --grace-ms:
              daemon connection-lifecycle knobs — how long a fresh connection
              may take to say hello, how long a quiet one is kept, and how
              long a drain waits for in-flight work
--capacity:   the weight a worker's hello advertises (>= 1); the coordinator
              partitions shards proportionally to the fleet's weights
--serve:      speak the framed eval protocol on stdio (workers are spawned by
              a coordinator, not run by hand)";

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().ok_or("missing command")?;
    let flags = parse_flags(&args[1..])?;
    match command.as_str() {
        "compile" => compile(&flags),
        "explore" => explore(&flags),
        "estimate" => estimate_cmd(&flags),
        "batch" => batch(&flags),
        "serve" => serve_cmd(&flags),
        "worker" => worker(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected `--flag`, got `{arg}`"))?;
        // Boolean flags take no value.
        if key == "csv"
            || key == "no-cache"
            || key == "json"
            || key == "serve"
            || key == "log"
            || key == "speculate"
            || key == "drain"
        {
            flags.insert(key.to_owned(), "true".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag `--{key}` needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
    }
    Ok(flags)
}

fn get_u64(flags: &HashMap<String, String>, key: &str) -> Result<u64, String> {
    flags
        .get(key)
        .ok_or_else(|| format!("missing --{key}"))?
        .parse()
        .map_err(|e| format!("--{key}: {e}"))
}

fn get_u32_opt(flags: &HashMap<String, String>, key: &str) -> Result<Option<u32>, String> {
    flags
        .get(key)
        .map(|v| v.parse().map_err(|e| format!("--{key}: {e}")))
        .transpose()
}

fn get_precision(flags: &HashMap<String, String>) -> Result<Precision, String> {
    let raw = flags.get("precision").ok_or("missing --precision")?;
    Precision::from_name(raw).ok_or_else(|| format!("unknown precision `{raw}`"))
}

fn get_strategy(flags: &HashMap<String, String>) -> Result<DistillStrategy, String> {
    Ok(match flags.get("strategy").map(String::as_str) {
        None | Some("knee") => DistillStrategy::Knee,
        Some("min-area") => DistillStrategy::MinArea,
        Some("max-throughput") => DistillStrategy::MaxThroughput,
        Some("max-efficiency") => DistillStrategy::MaxEfficiency,
        Some(other) => return Err(format!("unknown strategy `{other}`")),
    })
}

fn compiler_from(flags: &HashMap<String, String>) -> Result<Compiler, String> {
    let mut cfg = Nsga2Config::default();
    if let Some(p) = get_u32_opt(flags, "population")? {
        cfg.population = p as usize;
    }
    if let Some(g) = get_u32_opt(flags, "generations")? {
        cfg.generations = g as usize;
    }
    if let Some(s) = flags.get("seed") {
        cfg.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    let mut compiler = Compiler::new().with_nsga_config(cfg);
    let mut pipeline = sega_dcim::PipelineOptions::default();
    if let Some(t) = flags.get("threads") {
        pipeline.threads = t.parse().map_err(|e| format!("--threads: {e}"))?;
    }
    if flags.contains_key("no-cache") {
        pipeline.cache = false;
    }
    compiler = compiler.with_pipeline(pipeline);
    Ok(compiler)
}

fn compile(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = UserSpec::new(get_u64(flags, "wstore")?, get_precision(flags)?)
        .map_err(|e| e.to_string())?;
    let strategy = get_strategy(flags)?;
    let compiler = compiler_from(flags)?;
    println!("compiling {spec} (strategy {strategy:?}) …");
    let compiled = compiler
        .compile(&spec, strategy)
        .map_err(|e| e.to_string())?;

    let out: PathBuf = flags
        .get("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("sega-out"));
    fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    fs::write(out.join("macro.v"), &compiled.verilog).map_err(|e| e.to_string())?;
    fs::write(out.join("macro.def"), &compiled.def).map_err(|e| e.to_string())?;

    let mut report = String::new();
    report.push_str("# SEGA-DCIM compile report\n\n");
    report.push_str(&format!("* specification: {spec}\n"));
    report.push_str(&format!("* selected design: {}\n", compiled.design));
    report.push_str(&format!("* estimate: {}\n", compiled.estimate));
    report.push_str(&format!(
        "* audit: area err {:.2e}, energy err {:.2e}\n\n",
        compiled.audit.area_error(),
        compiled.audit.energy_error()
    ));
    report.push_str("## Pareto frontier\n\n");
    let rows: Vec<Vec<String>> = compiled
        .frontier
        .iter()
        .map(|s| {
            vec![
                s.design.to_string(),
                format!("{:.4}", s.estimate.area_mm2),
                format!("{:.3}", s.estimate.delay_ns),
                format!("{:.4}", s.estimate.energy_per_pass_nj),
                format!("{:.3}", s.estimate.tops),
            ]
        })
        .collect();
    report.push_str(&markdown_table(
        &["design", "area (mm²)", "delay (ns)", "energy (nJ)", "TOPS"],
        &rows,
    ));
    fs::write(out.join("report.md"), &report).map_err(|e| e.to_string())?;

    println!("selected: {}", compiled.design);
    println!("estimate: {}", compiled.estimate);
    println!();
    println!("{}", to_ascii(&compiled.layout, 56));
    println!("wrote {}/macro.v, macro.def, report.md", out.display());
    Ok(())
}

/// The wire-codec document of one exploration: spec, accounting, and the
/// front through the same per-solution schema as the batch report
/// ([`sega_dcim::batch::solution_json`] — readable metrics plus exact
/// objective bit patterns).
fn exploration_json(result: &ExplorationResult) -> Json {
    Json::obj([
        ("report", Json::from("sega-dcim-explore")),
        ("version", Json::from(sega_wire::FORMAT_VERSION)),
        ("wstore", Json::from(result.spec.wstore)),
        ("precision", Json::from(result.spec.precision.name())),
        ("evaluations", Json::from(result.evaluations)),
        (
            "distinct_evaluations",
            Json::from(result.distinct_evaluations),
        ),
        ("cache_hits", Json::from(result.cache_hits)),
        (
            "front",
            Json::Arr(
                result
                    .solutions
                    .iter()
                    .map(sega_dcim::batch::solution_json)
                    .collect(),
            ),
        ),
    ])
}

fn explore(flags: &HashMap<String, String>) -> Result<(), String> {
    let spec = UserSpec::new(get_u64(flags, "wstore")?, get_precision(flags)?)
        .map_err(|e| e.to_string())?;
    let compiler = compiler_from(flags)?;
    let result = compiler.explore(&spec);
    if flags.contains_key("json") {
        println!("{}", exploration_json(&result));
        return Ok(());
    }
    let rows: Vec<Vec<String>> = result
        .solutions
        .iter()
        .map(|s| {
            vec![
                s.design.to_string(),
                format!("{:.4}", s.estimate.area_mm2),
                format!("{:.3}", s.estimate.delay_ns),
                format!("{:.4}", s.estimate.energy_per_pass_nj),
                format!("{:.3}", s.estimate.tops),
                format!("{:.1}", s.estimate.tops_per_w()),
            ]
        })
        .collect();
    let header = [
        "design",
        "area_mm2",
        "delay_ns",
        "energy_nj",
        "tops",
        "tops_per_w",
    ];
    if flags.contains_key("csv") {
        print!("{}", csv_table(&header, &rows));
    } else {
        println!(
            "{} Pareto designs for {spec} ({} evaluations, {} distinct estimates, {} cache hits):\n",
            result.solutions.len(),
            result.evaluations,
            result.distinct_evaluations,
            result.cache_hits
        );
        print!("{}", markdown_table(&header, &rows));
    }
    Ok(())
}

fn estimate_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let n = get_u32_opt(flags, "n")?.ok_or("missing --n")?;
    let h = get_u32_opt(flags, "h")?.ok_or("missing --h")?;
    let l = get_u32_opt(flags, "l")?.ok_or("missing --l")?;
    let k = get_u32_opt(flags, "k")?.ok_or("missing --k")?;
    let precision = get_precision(flags)?;
    let design = DcimDesign::for_precision(precision, n, h, l, k).map_err(|e| e.to_string())?;
    let est = estimate(
        &design,
        &sega_cells::Technology::tsmc28(),
        &OperatingConditions::paper_default(),
    );
    if flags.contains_key("json") {
        println!("{}", estimate_json(&design, &est));
        return Ok(());
    }
    println!("design   : {design}");
    println!("wstore   : {}", design.wstore());
    println!("estimate : {est}");
    println!("breakdown (NOR-gate area units):");
    for (name, cost) in est.breakdown.iter() {
        if cost.area > 0.0 {
            println!(
                "  {name:>18}: {:>12.0}  ({:4.1}%)",
                cost.area,
                100.0 * cost.area / est.unit.area
            );
        }
    }
    Ok(())
}

/// The wire-codec document of one design-point estimate.
fn estimate_json(design: &DcimDesign, est: &MacroEstimate) -> Json {
    let (n, h, l, k) = design.geometry();
    Json::obj([
        ("report", Json::from("sega-dcim-estimate")),
        ("version", Json::from(sega_wire::FORMAT_VERSION)),
        ("design", Json::from(design.to_string())),
        (
            "geometry",
            Json::obj([
                ("n", Json::from(n)),
                ("h", Json::from(h)),
                ("l", Json::from(l)),
                ("k", Json::from(k)),
            ]),
        ),
        ("wstore", Json::from(design.wstore())),
        ("area_mm2", Json::from(est.area_mm2)),
        ("delay_ns", Json::from(est.delay_ns)),
        ("energy_per_cycle_nj", Json::from(est.energy_per_cycle_nj)),
        ("energy_per_pass_nj", Json::from(est.energy_per_pass_nj)),
        ("cycles_per_pass", Json::from(est.cycles_per_pass)),
        ("macs_per_pass", Json::from(est.macs_per_pass)),
        ("tops", Json::from(est.tops)),
        ("tops_per_w", Json::from(est.tops_per_w())),
        ("freq_ghz", Json::from(est.freq_ghz())),
        (
            "breakdown",
            Json::Obj(
                est.breakdown
                    .iter()
                    .map(|(name, cost)| {
                        (
                            name.to_owned(),
                            Json::obj([
                                ("area", Json::from(cost.area)),
                                ("delay", Json::from(cost.delay)),
                                ("energy", Json::from(cost.energy)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a batch flag that must be a **positive** count: the batch
/// runner rejects `0` (and non-numbers) up front with a clear message
/// instead of letting a zero-width pool or zero-shard cache surface as a
/// panic deep inside the pipeline.
fn get_positive(
    flags: &HashMap<String, String>,
    key: &str,
    hint: &str,
) -> Result<Option<usize>, String> {
    match flags.get(key) {
        None => Ok(None),
        Some(raw) => {
            let value: usize = raw
                .parse()
                .map_err(|e| format!("--{key}: {e} (got `{raw}`)"))?;
            if value == 0 {
                return Err(format!("--{key} must be >= 1 ({hint})"));
            }
            Ok(Some(value))
        }
    }
}

/// The persistent cache store the `--cache-file` / `--cache-dir` flags
/// describe: `None` when neither is given, and an error when both are
/// (one cache, one home) or when `--cache-max-segments` has no
/// directory to budget.
fn cache_store_of(flags: &HashMap<String, String>) -> Result<Option<CacheStore>, String> {
    let max_segments = get_positive(
        flags,
        "cache-max-segments",
        "a zero budget could never hold a segment",
    )?;
    match (flags.get("cache-dir"), flags.get("cache-file")) {
        (Some(_), Some(_)) => Err(
            "--cache-file and --cache-dir are mutually exclusive (one persistent \
             home per cache)"
                .to_owned(),
        ),
        (Some(dir), None) => {
            CacheStore::dir(dir, max_segments.unwrap_or(sega_dcim::DEFAULT_MAX_SEGMENTS)).map(Some)
        }
        (None, file) => {
            if max_segments.is_some() {
                return Err(
                    "--cache-max-segments requires --cache-dir (only the segment \
                     directory compacts)"
                        .to_owned(),
                );
            }
            Ok(file.map(CacheStore::file))
        }
    }
}

/// The key-space fingerprints a job list touches — the partial-load
/// filter: store segments holding none of these are skipped without
/// reading their payload.
fn job_space_fingerprints(jobs: &[BatchJob]) -> std::collections::HashSet<u64> {
    let tech = sega_cells::Technology::tsmc28();
    let conditions = OperatingConditions::paper_default();
    jobs.iter()
        .map(|job| {
            CacheKey::new(&tech, &conditions, job.spec.precision, job.spec.wstore)
                .to_record()
                .fingerprint()
        })
        .collect()
}

/// Warm-starts `cache` from `store`, printing any skipped-segment
/// warnings, restricted to the key spaces `jobs` can touch.
fn warm_start(
    store: &mut CacheStore,
    cache: &SharedEvalCache,
    jobs: &[BatchJob],
) -> Result<(), String> {
    let wanted = job_space_fingerprints(jobs);
    let outcome = store.load_filtered(Some(&wanted))?;
    for warning in &outcome.warnings {
        eprintln!("warning: {warning}");
    }
    if outcome.snapshot.is_empty() {
        eprintln!(
            "cache store {} holds nothing for these jobs, starting cold",
            store.path().display()
        );
    } else {
        let installed = cache.load(&outcome.snapshot).map_err(|e| e.to_string())?;
        eprintln!(
            "loaded {} cached estimates from {}",
            installed,
            store.path().display()
        );
    }
    Ok(())
}

/// Runs the batch against a `sega-dcim serve` daemon instead of
/// in-process: the daemon owns the backend, cache and checkpointing, so
/// every local-execution flag is rejected up front rather than silently
/// ignored. (`--cache-file`/`--cache-dir` stay *client-side*: a local
/// store is warm-started before the jobs and anti-entropy-synced with
/// the daemon, so a redial moves only missing entries.)
fn batch_connected(flags: &HashMap<String, String>, raw_addr: &str) -> Result<(), String> {
    let addr = sega_dcim::ListenAddr::parse(raw_addr)?;
    for flag in [
        "backend",
        "threads",
        "shards",
        "speculate",
        "workers",
        "worker-log-dir",
        "worker-deadline-ms",
        "restart-budget",
        "backoff-ms",
        "backoff-seed",
        "transport",
        "inject-fault",
        "checkpoint",
        "resume",
        "stop-after-jobs",
        "checkpoint-generations",
        "stop-after-progress",
    ] {
        if flags.contains_key(flag) {
            return Err(format!(
                "--{flag} does not apply with --connect (the daemon owns the \
                 backend, cache and checkpointing)"
            ));
        }
    }
    let jobs_path = flags.get("jobs").ok_or("missing --jobs")?;
    let jobs_text = fs::read_to_string(jobs_path)
        .map_err(|e| format!("cannot read job file `{jobs_path}`: {e}"))?;
    let mut defaults = Nsga2Config::default();
    if let Some(p) = get_u32_opt(flags, "population")? {
        defaults.population = p as usize;
    }
    if let Some(g) = get_u32_opt(flags, "generations")? {
        defaults.generations = g as usize;
    }
    if let Some(s) = flags.get("seed") {
        defaults.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    let jobs = parse_jobs(&jobs_text, &defaults)?;
    let mut store = cache_store_of(flags)?;
    let report = sega_dcim::run_batch_connected_with(
        &addr,
        &jobs,
        flags.contains_key("drain"),
        store.as_mut(),
    )?;
    let document = report.to_json().to_string();
    match flags.get("report") {
        Some(path) => {
            fs::write(Path::new(path), document + "\n")
                .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
            eprintln!("wrote batch report to {path}");
        }
        None => println!("{document}"),
    }
    eprintln!(
        "{} jobs on daemon {addr}: {} evaluations, {} distinct estimates, {} cache hits",
        report.outcomes.len(),
        report.evaluations,
        report.distinct_evaluations,
        report.cache_hits
    );
    if let Some(sync) = &report.sync {
        eprintln!(
            "cache sync: {} exchanges, {} entries pulled ({} of {} full-snapshot bytes)",
            sync.exchanges, sync.synced_entries, sync.bytes_synced, sync.full_snapshot_bytes
        );
    }
    Ok(())
}

fn batch(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(raw_addr) = flags.get("connect") {
        return batch_connected(flags, raw_addr);
    }
    if flags.contains_key("drain") {
        return Err("--drain requires --connect (only a daemon can be drained)".to_owned());
    }
    // Validate every scheduling knob before any file is read or worker
    // spawned, so a typo fails in microseconds with a precise message.
    let threads = get_positive(
        flags,
        "threads",
        "omit the flag to use all hardware threads",
    )?;
    let shards = get_positive(flags, "shards", "the cache needs at least one shard")?
        .unwrap_or(sega_dcim::cache::DEFAULT_SHARDS);
    let workers =
        get_positive(flags, "workers", "a remote fleet needs at least one worker")?.unwrap_or(2);
    let backend_name = flags.get("backend").map(String::as_str).unwrap_or("macro");
    if !matches!(backend_name, "macro" | "instrumented" | "remote") {
        return Err(format!(
            "unknown backend `{backend_name}` (expected macro, instrumented or remote)"
        ));
    }
    let fault = flags.get("inject-fault").map(String::as_str);
    if !matches!(
        fault,
        None | Some(
            "none"
                | "kill-one"
                | "corrupt-one"
                | "hang-one"
                | "stall-one"
                | "truncate-one"
                | "drop-conn-one"
                | "reconnect-one"
        )
    ) {
        return Err(format!(
            "unknown fault `{}` (expected none, kill-one, corrupt-one, hang-one, \
             stall-one, truncate-one, drop-conn-one or reconnect-one)",
            fault.unwrap_or_default()
        ));
    }
    let transport = flags
        .get("transport")
        .map(|raw| sega_dcim::TransportKind::parse(raw))
        .transpose()?
        .unwrap_or_default();
    let deadline_ms = get_positive(
        flags,
        "worker-deadline-ms",
        "a zero deadline would bury every worker instantly",
    )?;
    let parse_u64 = |key: &str| -> Result<Option<u64>, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|e| format!("--{key}: {e} (got `{v}`)")))
            .transpose()
    };
    let restart_budget = parse_u64("restart-budget")?; // 0 is valid: no respawns
    let backoff_ms = parse_u64("backoff-ms")?; // 0 is valid: immediate respawn
    let backoff_seed = parse_u64("backoff-seed")?;
    // Fleet-only flags on a non-remote backend would be silently inert —
    // which, for a fault-matrix run, means believing a fault path was
    // exercised when nothing was. Refuse instead.
    if backend_name != "remote" {
        for flag in [
            "workers",
            "worker-log-dir",
            "worker-deadline-ms",
            "restart-budget",
            "backoff-ms",
            "backoff-seed",
            "transport",
        ] {
            if flags.contains_key(flag) {
                return Err(format!("--{flag} requires --backend remote"));
            }
        }
        if !matches!(fault, None | Some("none")) {
            return Err("--inject-fault requires --backend remote".to_owned());
        }
    }
    // Checkpoint plumbing: --checkpoint starts a fresh journal, --resume
    // continues one; they cannot both apply to one run.
    if flags.contains_key("checkpoint") && flags.contains_key("resume") {
        return Err("--checkpoint and --resume are mutually exclusive \
                    (--resume keeps appending to the journal it resumes from)"
            .to_owned());
    }
    let checkpoint = match (flags.get("checkpoint"), flags.get("resume")) {
        (Some(path), None) => {
            // Fail (or mkdir) now, not after the first job has already
            // burned minutes of exploration: Journal::create would only
            // discover a missing directory when it opens the file.
            if let Some(parent) = Path::new(path).parent() {
                if !parent.as_os_str().is_empty() && !parent.exists() {
                    fs::create_dir_all(parent).map_err(|e| {
                        format!(
                            "cannot create checkpoint directory `{}`: {e}",
                            parent.display()
                        )
                    })?;
                }
            }
            Some(sega_dcim::CheckpointConfig::fresh(path))
        }
        (None, Some(path)) => Some(sega_dcim::CheckpointConfig::resume(path)),
        _ => None,
    };
    let stop_after_jobs = get_positive(
        flags,
        "stop-after-jobs",
        "stopping before the first job would journal nothing",
    )?;
    if stop_after_jobs.is_some() && checkpoint.is_none() {
        return Err(
            "--stop-after-jobs requires --checkpoint or --resume (an early stop \
             without a journal just loses work)"
                .to_owned(),
        );
    }
    let checkpoint_generations = get_positive(
        flags,
        "checkpoint-generations",
        "omit the flag for job-granular journaling only",
    )?
    .unwrap_or(0);
    if checkpoint_generations > 0 && checkpoint.is_none() {
        return Err(
            "--checkpoint-generations requires --checkpoint or --resume (mid-job \
             progress records need a journal to land in)"
                .to_owned(),
        );
    }
    let stop_after_progress = get_positive(
        flags,
        "stop-after-progress",
        "stopping before the first progress record would journal nothing",
    )?;
    if stop_after_progress.is_some() && checkpoint_generations == 0 {
        return Err(
            "--stop-after-progress requires --checkpoint-generations (without it \
             no progress record is ever written, so the run would never stop)"
                .to_owned(),
        );
    }

    let jobs_path = flags.get("jobs").ok_or("missing --jobs")?;
    let jobs_text = fs::read_to_string(jobs_path)
        .map_err(|e| format!("cannot read job file `{jobs_path}`: {e}"))?;
    let mut defaults = Nsga2Config::default();
    if let Some(p) = get_u32_opt(flags, "population")? {
        defaults.population = p as usize;
    }
    if let Some(g) = get_u32_opt(flags, "generations")? {
        defaults.generations = g as usize;
    }
    if let Some(s) = flags.get("seed") {
        defaults.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    let jobs = parse_jobs(&jobs_text, &defaults)?;

    // One shared cache for the whole batch, warm-started from the
    // persistent store (--cache-file blob or --cache-dir segments) when
    // present. The load is partial: only the key spaces this job list
    // touches come off disk.
    let cache = Arc::new(SharedEvalCache::with_shards(shards));
    let mut store = cache_store_of(flags)?;
    if let Some(store) = &mut store {
        warm_start(store, &cache, &jobs)?;
    }

    let mut pipeline = PipelineOptions::default().with_shared_cache(Arc::clone(&cache));
    if let Some(t) = threads {
        pipeline.threads = t;
    }
    if flags.contains_key("speculate") {
        pipeline.speculate = true;
    }
    let mut instrumented: Option<Arc<InstrumentedBackend>> = None;
    let mut remote: Option<Arc<RemoteBackend>> = None;
    match backend_name {
        "instrumented" => {
            let backend = Arc::new(InstrumentedBackend::macro_model());
            pipeline.backend = Some(Arc::clone(&backend) as _);
            instrumented = Some(backend);
        }
        "remote" => {
            let program = std::env::current_exe()
                .map_err(|e| format!("cannot locate the worker binary: {e}"))?;
            let mut options = RemoteOptions::fleet(program, workers).with_transport(transport);
            if let Some(ms) = deadline_ms {
                options = options.with_deadline(std::time::Duration::from_millis(ms as u64));
            }
            if let Some(budget) = restart_budget {
                options = options.with_restart_budget(budget as u32);
            }
            if backoff_ms.is_some() || backoff_seed.is_some() {
                let base = std::time::Duration::from_millis(
                    backoff_ms.unwrap_or(options.backoff_base.as_millis() as u64),
                );
                options = options.with_backoff(base, backoff_seed.unwrap_or(0));
            }
            // The CI fault matrix: sabotage worker 0 and demand the run
            // still complete with bit-identical fronts. (The value was
            // validated up front.) The stall is sized past the deadline
            // so the slow responder reliably counts as stalled.
            let stall_ms = 2 * options.deadline.as_millis().max(1);
            let sabotage = match fault {
                Some("kill-one") => Some(("--fail-after", "1".to_owned())),
                Some("corrupt-one") => Some(("--corrupt-after", "1".to_owned())),
                Some("hang-one") => Some(("--hang-after", "1".to_owned())),
                Some("stall-one") => Some(("--stall-ms", stall_ms.to_string())),
                Some("truncate-one") => Some(("--truncate-after", "1".to_owned())),
                Some("drop-conn-one") => Some(("--drop-conn-after", "1".to_owned())),
                Some("reconnect-one") => Some(("--reconnect-after", "1".to_owned())),
                _ => None,
            };
            if let Some((knob, value)) = sabotage {
                options.workers[0] = options.workers[0]
                    .clone()
                    .with_args([knob.to_owned(), value]);
            }
            if let Some(dir) = flags.get("worker-log-dir") {
                options = options.with_log_dir(dir);
            }
            // Worker snapshot deltas land in the batch cache, so the
            // saved --cache-file carries remotely computed estimates.
            let backend = Arc::new(RemoteBackend::spawn(options)?.with_sink(Arc::clone(&cache)));
            pipeline.backend = Some(Arc::clone(&backend) as _);
            remote = Some(backend);
        }
        _ => {}
    };

    let control = sega_dcim::BatchControl {
        checkpoint,
        stop_after_jobs,
        checkpoint_generations,
        stop_after_progress,
    };
    let mut report = run_batch_with(
        &jobs,
        &sega_cells::Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        pipeline,
        &control,
    )?;
    if let Some(backend) = &remote {
        report.remote = Some(backend.stats());
    }
    // Persist before emitting the report so its "cache" object carries
    // the save's append/compaction accounting too.
    if let Some(store) = &mut store {
        store.save(&cache.snapshot())?;
        report.store = Some(store.stats());
        eprintln!(
            "saved {} cached estimates to {}",
            cache.len(),
            store.path().display()
        );
    }

    if report.complete {
        let document = report.to_json().to_string();
        match flags.get("report") {
            Some(path) => {
                fs::write(Path::new(path), document + "\n")
                    .map_err(|e| format!("cannot write report `{path}`: {e}"))?;
                eprintln!("wrote batch report to {path}");
            }
            None => println!("{document}"),
        }
    } else {
        // A stopped run's report would cover only a prefix — withhold it
        // so nothing downstream mistakes it for the batch's results.
        eprintln!(
            "stopped after {} executed job(s) ({} of {} journaled); \
             resume with --resume to finish the batch",
            report.outcomes.len() - report.resumed_jobs,
            report.outcomes.len(),
            jobs.len()
        );
    }

    // Accumulate the whole stats block and emit it with ONE write_all:
    // per-line eprintln! takes and releases the stderr lock between
    // lines, so worker stderr (forwarded by the log pump threads under
    // --worker-log-dir) can interleave mid-block and garble the summary.
    use std::io::Write as _;
    let mut summary = format!(
        "{} jobs: {} evaluations, {} distinct estimates, {} cache hits ({} warm-start entries)\n",
        report.outcomes.len(),
        report.evaluations,
        report.distinct_evaluations,
        report.cache_hits,
        report.preloaded_entries
    );
    if report.speculation.speculated > 0 {
        summary.push_str(&format!(
            "speculation: {} cohorts bred ahead, {} confirmed, {} re-bred\n",
            report.speculation.speculated, report.speculation.confirmed, report.speculation.rebred,
        ));
    }
    if let Some(backend) = instrumented {
        summary.push_str(&format!(
            "backend traffic: {} cohorts, {} geometries\n",
            backend.cohorts(),
            backend.geometries()
        ));
    }
    if let Some(backend) = remote {
        let stats = backend.stats();
        summary.push_str(&format!(
            "remote fleet ({}): {}/{} workers alive, {} round-trips, {} geometries \
             ({} requeued sub-cohorts, {} timeouts, {} worker deaths, {} respawns, \
             {} rejoins, {} evaluated in-process), {} delta entries merged\n",
            stats.transport.name(),
            stats.workers_alive,
            stats.workers_spawned,
            stats.round_trips,
            stats.geometries,
            stats.requeues,
            stats.timeouts,
            stats.worker_deaths,
            stats.respawns,
            stats.rejoins,
            stats.fallback_geometries,
            stats.merged_entries,
        ));
        if stats.rejoin_syncs > 0 {
            summary.push_str(&format!(
                "rejoin sync: {} exchanges, {} entries restored ({} of {} full-snapshot bytes)\n",
                stats.rejoin_syncs, stats.sync_entries, stats.sync_bytes, stats.sync_full_bytes,
            ));
        }
    }
    if let Some(stats) = &report.store {
        summary.push_str(&format!(
            "cache store: {} segment(s) ({} loaded, {} filtered, {} skipped), \
             {} appended, {} compaction(s), {} B read, {} B written\n",
            stats.segments,
            stats.segments_loaded,
            stats.segments_filtered,
            stats.segments_skipped,
            stats.segments_appended,
            stats.compactions,
            stats.bytes_read,
            stats.bytes_written,
        ));
    }
    let _ = std::io::stderr().lock().write_all(summary.as_bytes());
    Ok(())
}

/// Bridges SIGTERM to the process-wide drain flag: the daemon's accept
/// loop polls [`sega_dcim::drain_flag`] and begins its graceful drain
/// (stop accepting, finish in-flight, flush, exit) when the flag flips.
/// The handler body is a single atomic store — async-signal-safe.
fn install_sigterm_drain() {
    extern "C" fn on_sigterm(_signum: i32) {
        sega_dcim::drain_flag().store(true, std::sync::atomic::Ordering::SeqCst);
    }
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// The long-lived daemon: accept framed batch jobs on `--listen` from
/// many concurrent clients, multiplexed onto one shared eval cache (and
/// optionally a remote worker fleet), until SIGTERM or a client's
/// shutdown frame drains it.
fn serve_cmd(flags: &HashMap<String, String>) -> Result<(), String> {
    let raw = flags.get("listen").ok_or("missing --listen")?;
    let listen = sega_dcim::ListenAddr::parse(raw)?;
    let mut options = sega_dcim::ServeOptions::new(listen);
    options.cache_file = flags.get("cache-file").map(PathBuf::from);
    options.cache_dir = flags.get("cache-dir").map(PathBuf::from);
    if options.cache_file.is_some() && options.cache_dir.is_some() {
        return Err(
            "--cache-file and --cache-dir are mutually exclusive (one persistent \
             home per cache)"
                .to_owned(),
        );
    }
    if let Some(n) = get_positive(
        flags,
        "cache-max-segments",
        "a zero budget could never hold a segment",
    )? {
        if options.cache_dir.is_none() {
            return Err(
                "--cache-max-segments requires --cache-dir (only the segment \
                 directory compacts)"
                    .to_owned(),
            );
        }
        options.cache_max_segments = n;
    }
    options.log = flags.contains_key("log");
    if let Some(t) = get_positive(
        flags,
        "threads",
        "omit the flag to use all hardware threads",
    )? {
        options.threads = t;
    }
    let knob_ms = |key: &str,
                   hint: &str,
                   default: std::time::Duration|
     -> Result<std::time::Duration, String> {
        Ok(get_positive(flags, key, hint)?
            .map(|ms| std::time::Duration::from_millis(ms as u64))
            .unwrap_or(default))
    };
    options.hello_deadline = knob_ms(
        "hello-deadline-ms",
        "a zero deadline would drop every connection instantly",
        options.hello_deadline,
    )?;
    options.idle_timeout = knob_ms(
        "idle-timeout-ms",
        "a zero timeout would close every quiet connection instantly",
        options.idle_timeout,
    )?;
    options.grace = knob_ms(
        "grace-ms",
        "a zero grace would abandon every in-flight job on drain",
        options.grace,
    )?;

    let backend_name = flags.get("backend").map(String::as_str).unwrap_or("macro");
    if backend_name != "remote" {
        for flag in ["workers", "transport"] {
            if flags.contains_key(flag) {
                return Err(format!("--{flag} requires --backend remote"));
            }
        }
    }
    let _fleet: Option<Arc<RemoteBackend>> = match backend_name {
        "macro" => None,
        "remote" => {
            let workers =
                get_positive(flags, "workers", "a remote fleet needs at least one worker")?
                    .unwrap_or(2);
            let transport = flags
                .get("transport")
                .map(|raw| sega_dcim::TransportKind::parse(raw))
                .transpose()?
                .unwrap_or_default();
            let program = std::env::current_exe()
                .map_err(|e| format!("cannot locate the worker binary: {e}"))?;
            let fleet_options = RemoteOptions::fleet(program, workers).with_transport(transport);
            // The fleet's snapshot deltas sink into the daemon's cache,
            // so remotely computed estimates warm later clients too.
            let cache = Arc::new(SharedEvalCache::new());
            let backend =
                Arc::new(RemoteBackend::spawn(fleet_options)?.with_sink(Arc::clone(&cache)));
            options.cache = Some(cache);
            options.backend = Some(Arc::clone(&backend) as _);
            Some(backend)
        }
        other => {
            return Err(format!(
                "unknown backend `{other}` (serve runs macro or remote)"
            ))
        }
    };

    install_sigterm_drain();
    let report = sega_dcim::serve(options)?;
    eprintln!(
        "serve: {} connections, {} jobs, {} hello timeouts, {} idle closes, \
         drained {}, {} cache entries flushed",
        report.connections,
        report.jobs,
        report.hello_timeouts,
        report.idle_closed,
        if report.drained_clean {
            "clean"
        } else {
            "dirty"
        },
        report.cache_entries,
    );
    Ok(())
}

/// The serving half of the remote protocol: frames on stdio (`--serve`,
/// the coordinator launched us on pipes) or over a dialed socket
/// (`--connect ADDR`, the coordinator runs a hub) until it shuts us
/// down or closes the link.
fn worker(flags: &HashMap<String, String>) -> Result<(), String> {
    let knob = |key: &str| -> Result<Option<u64>, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|e| format!("--{key}: {e}")))
            .transpose()
    };
    let options = sega_dcim::WorkerOptions {
        fail_after: knob("fail-after")?,
        corrupt_after: knob("corrupt-after")?,
        hang_after: knob("hang-after")?,
        truncate_after: knob("truncate-after")?,
        stall: knob("stall-ms")?.map(std::time::Duration::from_millis),
        drop_conn_after: knob("drop-conn-after")?,
        reconnect_after: knob("reconnect-after")?,
        late_hello: knob("late-hello-ms")?.map(std::time::Duration::from_millis),
        capacity: knob("capacity")?.unwrap_or(1).min(u64::from(u32::MAX)) as u32,
        worker_id: knob("worker-id")?.unwrap_or(0),
        log: flags.contains_key("log"),
    };
    if let Some(raw) = flags.get("connect") {
        let addr = sega_dcim::ListenAddr::parse(raw)?;
        return sega_dcim::run_connected_worker(&addr, &options);
    }
    if !flags.contains_key("serve") {
        return Err(
            "worker requires --serve or --connect ADDR (it is launched by a \
             coordinator, not run by hand)"
                .to_owned(),
        );
    }
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = std::io::BufWriter::new(stdout.lock());
    sega_dcim::remote::serve_worker(&mut input, &mut output, &options)
}
