//! Mixed-precision frontier merging (paper §III-B.2): "a classic NSGA-II
//! algorithm is performed for multiple architectures respectively.
//! Finally, a high-quality Pareto-frontier set containing both integer and
//! floating-point solutions can be obtained".
//!
//! [`explore_mixed`] runs one exploration per candidate precision (each on
//! its own architecture template) and Pareto-merges the per-precision
//! frontiers into a single cross-architecture front, so an application
//! that can tolerate either number format sees the genuinely best designs
//! of both.

use std::sync::Arc;

use sega_cells::Technology;
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::pareto::pareto_front_indices_matrix;
use sega_moga::{DominanceStats, Nsga2Config, ObjectiveMatrix};
use sega_parallel::{resolve_threads, Pool};

use crate::cache::SharedEvalCache;
use crate::explore::{explore_pareto_with, ParetoSolution, PipelineOptions};
use crate::spec::{SpecError, UserSpec};

/// The merged outcome of a multi-architecture exploration.
#[derive(Debug, Clone)]
pub struct MixedExploration {
    /// The cross-architecture Pareto frontier (sorted by area).
    pub front: Vec<ParetoSolution>,
    /// Per-precision frontier sizes before merging, in input order.
    pub per_precision: Vec<(Precision, usize)>,
    /// Total genome evaluations across all runs.
    pub evaluations: usize,
    /// Total estimator calls across all runs (see
    /// [`crate::ExplorationResult::distinct_evaluations`]).
    pub distinct_evaluations: usize,
    /// Total cache-served evaluations across all runs.
    pub cache_hits: usize,
    /// Total evaluations the GA's interning layer resolved across all
    /// runs (a subset of [`cache_hits`](Self::cache_hits)).
    pub interned: usize,
    /// Dominance-kernel counters summed across all runs' sorts.
    pub dominance: DominanceStats,
}

impl MixedExploration {
    /// How many merged-front members use each precision's architecture.
    pub fn survivors_of(&self, precision: Precision) -> usize {
        let bw = precision.weight_bits();
        let is_float = precision.is_float();
        self.front
            .iter()
            .filter(|s| {
                s.design.is_float() == is_float
                    && match s.design {
                        sega_estimator::DcimDesign::Int(p) => p.bw == bw,
                        sega_estimator::DcimDesign::Fp(p) => p.bm == bw,
                    }
            })
            .count()
    }
}

/// Explores each precision separately and merges the fronts into a single
/// cross-architecture Pareto set, with the default [`PipelineOptions`].
///
/// # Errors
///
/// Returns the first [`SpecError`] if `wstore` is invalid for any of the
/// requested precisions.
pub fn explore_mixed(
    wstore: u64,
    precisions: &[Precision],
    tech: &Technology,
    conditions: &OperatingConditions,
    config: &Nsga2Config,
) -> Result<MixedExploration, SpecError> {
    explore_mixed_with(
        wstore,
        precisions,
        tech,
        conditions,
        config,
        PipelineOptions::default(),
    )
}

/// [`explore_mixed`] with explicit [`PipelineOptions`].
///
/// The per-precision explorations are independent seeded runs, so they
/// execute **concurrently** on the persistent pool: the thread budget is
/// split between the per-precision fan-out and each exploration's inner
/// batch evaluation. All runs share one [`SharedEvalCache`] (a fresh one
/// per call unless the options inject their own), so estimates persist
/// across the fan-out and across repeated calls with a caller-provided
/// cache. Results are merged in input order, keeping the outcome
/// bit-identical to a serial sweep.
///
/// # Errors
///
/// Returns the first [`SpecError`] if `wstore` is invalid for any of the
/// requested precisions.
pub fn explore_mixed_with(
    wstore: u64,
    precisions: &[Precision],
    tech: &Technology,
    conditions: &OperatingConditions,
    config: &Nsga2Config,
    pipeline: PipelineOptions,
) -> Result<MixedExploration, SpecError> {
    // Validate every spec up front so errors surface in input order, then
    // fan the seeded runs out in parallel.
    let specs: Vec<UserSpec> = precisions
        .iter()
        .map(|&p| UserSpec::new(wstore, p))
        .collect::<Result<_, _>>()?;
    let runs: Vec<(UserSpec, Nsga2Config)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let mut cfg = config.clone();
            cfg.seed = config.seed.wrapping_add(i as u64);
            (spec, cfg)
        })
        .collect();
    // Split the budget: outer participants across precisions, the
    // remainder inside each exploration's batch evaluation. One pool and
    // one cache serve both levels — nested submissions are deadlock-free
    // by the pool's design, and the per-precision key spaces never alias.
    let total = resolve_threads(pipeline.threads);
    let outer = total.min(runs.len().max(1));
    let pool = pipeline
        .pool
        .clone()
        .unwrap_or_else(|| Pool::for_threads(total));
    let cache = pipeline
        .shared_cache
        .clone()
        .unwrap_or_else(|| Arc::new(SharedEvalCache::new()));
    let inner = PipelineOptions {
        threads: (total / outer).max(1),
        pool: Some(Arc::clone(&pool)),
        shared_cache: Some(cache),
        ..pipeline
    };
    let results = pool.par_map_bounded(&runs, outer, |(spec, cfg)| {
        explore_pareto_with(spec, tech, conditions, cfg, inner.clone())
    });

    let mut candidates: Vec<ParetoSolution> = Vec::new();
    let mut per_precision = Vec::new();
    let mut evaluations = 0;
    let mut distinct_evaluations = 0;
    let mut cache_hits = 0;
    let mut interned = 0;
    let mut dominance = DominanceStats::default();
    for (&precision, result) in precisions.iter().zip(results) {
        per_precision.push((precision, result.solutions.len()));
        evaluations += result.evaluations;
        distinct_evaluations += result.distinct_evaluations;
        cache_hits += result.cache_hits;
        interned += result.interned;
        dominance.merge(result.dominance);
        candidates.extend(result.solutions);
    }
    // Cross-architecture Pareto merge over one flat objective matrix.
    let mut objs = ObjectiveMatrix::with_capacity(4, candidates.len());
    for s in &candidates {
        objs.push_row(&s.objectives());
    }
    let mut keep = pareto_front_indices_matrix(&objs);
    keep.sort_unstable();
    let mut front: Vec<ParetoSolution> = keep.into_iter().map(|i| candidates[i].clone()).collect();
    front.sort_by(|a, b| {
        a.estimate
            .area_mm2
            .partial_cmp(&b.estimate.area_mm2)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(MixedExploration {
        front,
        per_precision,
        evaluations,
        distinct_evaluations,
        cache_hits,
        interned,
        dominance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> Nsga2Config {
        Nsga2Config {
            population: 24,
            generations: 15,
            seed,
            ..Default::default()
        }
    }

    fn run(precisions: &[Precision]) -> MixedExploration {
        explore_mixed(
            16384,
            precisions,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            &cfg(1),
        )
        .unwrap()
    }

    #[test]
    fn merged_front_is_non_dominated() {
        let m = run(&[Precision::Int8, Precision::Bf16]);
        assert!(!m.front.is_empty());
        for a in &m.front {
            for b in &m.front {
                let (oa, ob) = (a.objectives(), b.objectives());
                assert!(!sega_moga::pareto::dominates(&oa, &ob) || oa == ob);
            }
        }
    }

    #[test]
    fn both_architectures_can_survive_the_merge() {
        // INT8 and BF16 occupy nearby cost points with different
        // throughput trade-offs, so a healthy merge keeps members of both.
        let m = run(&[Precision::Int8, Precision::Bf16]);
        let int_count = m.front.iter().filter(|s| !s.design.is_float()).count();
        let fp_count = m.front.iter().filter(|s| s.design.is_float()).count();
        assert!(int_count > 0, "merge lost every integer design");
        assert!(fp_count > 0, "merge lost every floating-point design");
        assert_eq!(m.survivors_of(Precision::Int8), int_count);
        assert_eq!(m.survivors_of(Precision::Bf16), fp_count);
    }

    #[test]
    fn narrow_precision_dominates_wide_on_cost_axes() {
        // INT4 strictly beats INT16 on area/energy at equal Wstore, so in a
        // merged INT4+INT16 front, the minimum-area member must be INT4.
        let m = run(&[Precision::Int4, Precision::Int16]);
        let min_area = m
            .front
            .iter()
            .min_by(|a, b| {
                a.estimate
                    .area_mm2
                    .partial_cmp(&b.estimate.area_mm2)
                    .unwrap()
            })
            .unwrap();
        match min_area.design {
            sega_estimator::DcimDesign::Int(p) => assert_eq!(p.bw, 4),
            sega_estimator::DcimDesign::Fp(_) => panic!("expected integer design"),
        }
    }

    #[test]
    fn evaluation_budget_accumulates() {
        let m = run(&[Precision::Int8, Precision::Bf16, Precision::Fp8]);
        // 3 runs × (24 + 24·15) evals.
        assert_eq!(m.evaluations, 3 * (24 + 24 * 15));
        assert_eq!(m.per_precision.len(), 3);
    }

    #[test]
    fn invalid_wstore_propagates() {
        let err = explore_mixed(
            5000,
            &[Precision::Int8],
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            &cfg(1),
        );
        assert!(matches!(err, Err(SpecError::WstoreNotPowerOfTwo(5000))));
    }
}
