//! The batch job runner: many heterogeneous exploration requests through
//! **one** persistent pool and **one** shared, persistable eval cache —
//! the first scenario where the engine behaves like a service.
//!
//! A *job file* (JSON, parsed with the dependency-free `sega_wire`
//! parser) lists `UserSpec`s plus optional per-job NSGA-II budget
//! overrides. [`run_batch`] executes them in order against a shared
//! [`SharedEvalCache`], so later jobs reuse everything earlier jobs (or a
//! `--cache-file` warm start) already estimated, and returns a
//! [`BatchReport`] that serializes to a machine-readable results document
//! via the wire codec — including the exact objective bit patterns, so
//! CI can assert bit-identical fronts across runs, thread counts, shard
//! counts and backend choices.
//!
//! The cache round-trips through [`Snapshot`] files: load before, save
//! after. Rerunning an identical job file against the saved snapshot
//! reports **0 distinct evaluations** — every objective vector is served
//! from the warm cache, and the fronts are bit-identical to the cold run.

use std::collections::BTreeMap;
use std::sync::Arc;

use sega_cells::Technology;
use sega_estimator::{EstimatorStats, OperatingConditions, Precision};
use sega_moga::{Nsga2Config, SpeculationStats};
use sega_parallel::{resolve_threads, Pool};
use sega_wire::{Json, Snapshot};

use crate::cache::SharedEvalCache;
use crate::checkpoint::{
    jobs_fingerprint, load_journal, progress_record_of, reconstruct_outcome, record_of_outcome,
    resume_of_progress, CheckpointConfig, Header, Journal, ProgressRecord,
};
use crate::explore::{explore_pareto_resumable, ExplorationResult, PipelineOptions};
use crate::remote::RemoteStats;
use crate::spec::UserSpec;

/// One batch entry: a specification and the exploration budget to spend
/// on it.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// What to explore.
    pub spec: UserSpec,
    /// The NSGA-II budget and seed for this job.
    pub config: Nsga2Config,
}

/// One finished job: the budget it ran with and what came out.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The configuration the job ran with.
    pub config: Nsga2Config,
    /// The exploration result (front + accounting).
    pub result: ExplorationResult,
}

/// The outcome of a whole batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in job-file order.
    pub outcomes: Vec<BatchOutcome>,
    /// Total genome evaluations the GA requested across all jobs.
    pub evaluations: usize,
    /// Total evaluations that reached the estimator backend. `0` on a
    /// fully warm-started rerun of an identical job file.
    pub distinct_evaluations: usize,
    /// Total evaluations served from memory.
    pub cache_hits: usize,
    /// Total dominance comparisons/probes the selection kernel performed
    /// across all jobs — the batch-level perf receipt of the tiered sort.
    pub dominance_comparisons: u64,
    /// Total 64-lane mask words the blocked dominance tier produced
    /// across all jobs (the branchless complement of
    /// [`dominance_comparisons`](Self::dominance_comparisons)).
    pub dominance_word_ops: u64,
    /// Estimator-kernel totals across all jobs: designs estimated, and
    /// the vector/scalar split of their finish lanes.
    pub estimator: EstimatorStats,
    /// Speculative-loop ledger totals across all jobs; all-zero (and
    /// absent from the JSON report) on synchronous runs.
    pub speculation: SpeculationStats,
    /// Entries the shared cache held *before* the first job (the warm
    /// start, e.g. from a loaded `--cache-file`).
    pub preloaded_entries: usize,
    /// Entries the shared cache holds after the last job.
    pub cache_entries: usize,
    /// Name of the estimator backend the batch ran on.
    pub backend: &'static str,
    /// Fleet traffic stats when the batch ran on a remote backend (the
    /// CLI fills this in after the run); serialized as the `"remote"`
    /// object only when present, so in-process reports are unchanged.
    pub remote: Option<RemoteStats>,
    /// Persistent cache-store activity (segments loaded/skipped,
    /// appends, compactions, bytes) when the run used a cache file or
    /// segment directory; serialized as the `"cache"` object's nested
    /// `"store"` only when present, so storeless reports are unchanged.
    pub store: Option<crate::store::StoreStats>,
    /// Anti-entropy accounting when the run sync-pulled a daemon's
    /// cache (`--connect` with a local store); serialized as the
    /// `"cache"` object's nested `"sync"` only when present.
    pub sync: Option<CacheSyncStats>,
    /// `false` when [`BatchControl::stop_after_jobs`] ended the run
    /// before the job list did — the report covers only a prefix.
    pub complete: bool,
    /// Jobs reconstructed from a resume journal instead of executed.
    pub resumed_jobs: usize,
}

/// Anti-entropy accounting of a connected batch run: what the digest
/// exchanges against the daemon's cache actually moved, versus what
/// full-snapshot transfers would have cost in their place.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSyncStats {
    /// Digest exchanges completed (one per sync pull).
    pub exchanges: u64,
    /// Entries the digests proved both sides already shared (skipped).
    pub matched_entries: u64,
    /// Entries the syncs actually shipped and installed locally.
    pub synced_entries: u64,
    /// Bytes of encoded delta snapshot the syncs moved.
    pub bytes_synced: u64,
    /// Bytes the responder's full snapshots would have moved instead —
    /// `bytes_synced ≤ full_snapshot_bytes` is the saving, made visible.
    pub full_snapshot_bytes: u64,
}

/// Execution controls of [`run_batch_with`]: checkpointing and early
/// stop. The default is plain [`run_batch`] behaviour.
#[derive(Debug, Clone, Default)]
pub struct BatchControl {
    /// Journal completed jobs to (or resume them from) a sidecar file.
    pub checkpoint: Option<CheckpointConfig>,
    /// Stop after *executing* this many jobs (resumed jobs don't count)
    /// — the deterministic stand-in for a killed batch in resume tests
    /// and CI.
    pub stop_after_jobs: Option<usize>,
    /// With a journal: also checkpoint *inside* each job, every this
    /// many bred generations (`0` = job-granular journaling only). A
    /// resumed run picks the interrupted job up at the last journaled
    /// generation boundary instead of re-running it from scratch.
    pub checkpoint_generations: usize,
    /// Abandon the run right after writing this many mid-job progress
    /// records — the deterministic stand-in for a batch killed *inside*
    /// a long job.
    pub stop_after_progress: Option<usize>,
}

/// Parses a batch job file: either `{"jobs": [...]}` or a bare array,
/// each job `{"wstore": N, "precision": "int8"}` with optional
/// `"population"`, `"generations"` and `"seed"` overriding `defaults`.
///
/// # Errors
///
/// A human-readable message naming the offending job index and field.
pub fn parse_jobs(text: &str, defaults: &Nsga2Config) -> Result<Vec<BatchJob>, String> {
    let doc = Json::parse(text).map_err(|e| format!("job file: {e}"))?;
    let raw_jobs = doc
        .get("jobs")
        .or(Some(&doc))
        .and_then(Json::as_arr)
        .ok_or("job file must be a JSON array or an object with a `jobs` array")?;
    if raw_jobs.is_empty() {
        return Err("job file lists no jobs".to_owned());
    }
    raw_jobs
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let field = |name: &str| format!("job {i}: missing or invalid `{name}`");
            let wstore = raw
                .get("wstore")
                .and_then(Json::as_u64)
                .ok_or_else(|| field("wstore"))?;
            let precision_name = raw
                .get("precision")
                .and_then(Json::as_str)
                .ok_or_else(|| field("precision"))?;
            let precision = Precision::from_name(precision_name)
                .ok_or_else(|| format!("job {i}: unknown precision `{precision_name}`"))?;
            let spec = UserSpec::new(wstore, precision).map_err(|e| format!("job {i}: {e}"))?;
            let mut config = defaults.clone();
            let override_usize = |name: &str| -> Result<Option<usize>, String> {
                match raw.get(name) {
                    None => Ok(None),
                    Some(v) => v
                        .as_u64()
                        .map(|n| Some(n as usize))
                        .ok_or_else(|| field(name)),
                }
            };
            if let Some(p) = override_usize("population")? {
                config.population = p;
            }
            if let Some(g) = override_usize("generations")? {
                config.generations = g;
            }
            if let Some(seed) = raw.get("seed") {
                config.seed = seed.as_u64().ok_or_else(|| field("seed"))?;
            }
            Ok(BatchJob { spec, config })
        })
        .collect()
}

/// Runs every job over one pool, one shared cache and one backend.
///
/// Jobs execute in file order (each job's *inner* evaluation still fans
/// out on the pool), so the report — and the cache snapshot left behind
/// — is deterministic for a given job file, whatever the thread count.
/// If the pipeline options carry no shared cache, a fresh one is created
/// for the batch; pass one explicitly to warm-start (see
/// [`SharedEvalCache::load`]).
pub fn run_batch(
    jobs: &[BatchJob],
    tech: &Technology,
    conditions: &OperatingConditions,
    pipeline: PipelineOptions,
) -> BatchReport {
    run_batch_with(jobs, tech, conditions, pipeline, &BatchControl::default())
        .expect("an uncheckpointed batch run cannot fail")
}

/// [`run_batch`] plus execution controls: journal completed jobs to a
/// checkpoint file, resume a previously interrupted run, or stop early
/// after a fixed number of executed jobs.
///
/// On resume, the journal's cache deltas warm-start the shared cache and
/// the journaled jobs are reconstructed (not re-run) by re-materializing
/// their fronts through the deterministic macro model — so the finished
/// report is **byte-identical** to an uninterrupted run's.
///
/// # Errors
///
/// Checkpoint I/O failures, a journal whose fingerprint names a
/// different job list, or a backend mismatch between the journal and
/// this run. With no checkpoint configured this never fails.
pub fn run_batch_with(
    jobs: &[BatchJob],
    tech: &Technology,
    conditions: &OperatingConditions,
    pipeline: PipelineOptions,
    control: &BatchControl,
) -> Result<BatchReport, String> {
    let cache = pipeline
        .shared_cache
        .clone()
        .unwrap_or_else(|| Arc::new(SharedEvalCache::new()));
    let pool = pipeline
        .pool
        .clone()
        .unwrap_or_else(|| Pool::for_threads(resolve_threads(pipeline.threads)));
    let backend = pipeline
        .backend
        .as_ref()
        .map(|b| b.name())
        .unwrap_or("macro-model");
    let inner = PipelineOptions {
        pool: Some(pool),
        shared_cache: Some(Arc::clone(&cache)),
        ..pipeline
    };
    let mut preloaded_entries = cache.len();

    // Checkpoint setup: either replay an existing journal or start one.
    let mut finished: BTreeMap<u64, crate::checkpoint::JobRecord> = BTreeMap::new();
    let mut pending_progress: Option<ProgressRecord> = None;
    let mut journal = match &control.checkpoint {
        Some(cp) if cp.resume => {
            let bytes = std::fs::read(&cp.path)
                .map_err(|e| format!("cannot read checkpoint `{}`: {e}", cp.path.display()))?;
            let loaded = load_journal(&bytes)?;
            if loaded.header.fingerprint != jobs_fingerprint(jobs) {
                return Err(format!(
                    "checkpoint `{}` was written for a different job list",
                    cp.path.display()
                ));
            }
            if loaded.header.backend != backend {
                return Err(format!(
                    "checkpoint `{}` was written by the `{}` backend, this run uses `{backend}`",
                    cp.path.display(),
                    loaded.header.backend
                ));
            }
            // The original run's warm-start size, so totals reproduce.
            preloaded_entries = loaded.header.preloaded_entries as usize;
            for record in loaded.records {
                cache
                    .load(&record.delta)
                    .map_err(|e| format!("checkpoint delta: {e}"))?;
                finished.insert(record.index, record);
            }
            pending_progress = loaded.progress;
            Some(Journal::reopen(&cp.path, loaded.good_len)?)
        }
        Some(cp) => Some(Journal::create(
            &cp.path,
            &Header {
                fingerprint: jobs_fingerprint(jobs),
                preloaded_entries: preloaded_entries as u64,
                backend: backend.to_owned(),
            },
        )?),
        None => None,
    };

    // Snapshot baseline for per-job deltas (checkpoint mode only — the
    // snapshot walk is not free and buys nothing without a journal).
    let mut last_snapshot = journal.as_ref().map(|_| cache.snapshot());
    let resumed_jobs = finished.len();
    let mut outcomes: Vec<BatchOutcome> = Vec::with_capacity(jobs.len());
    let mut executed = 0usize;
    let mut progress_written = 0usize;
    let mut complete = true;
    for (index, job) in jobs.iter().enumerate() {
        if let Some(record) = finished.get(&(index as u64)) {
            outcomes.push(reconstruct_outcome(record, job, tech, conditions)?);
            continue;
        }
        if control.stop_after_jobs == Some(executed) {
            complete = false;
            break;
        }
        // A journaled mid-job checkpoint for this exact job resumes the
        // exploration at its last generation boundary: load the cache
        // delta the interrupted run had accumulated, then hand the
        // driver state to the explorer. (Replay order matters: finished
        // job deltas first — done above — then this progress delta.)
        let resume = match &pending_progress {
            Some(progress) if progress.index == index as u64 => {
                cache
                    .load(&progress.delta)
                    .map_err(|e| format!("checkpoint progress delta: {e}"))?;
                let resume = resume_of_progress(progress);
                pending_progress = None;
                Some(resume)
            }
            _ => None,
        };
        let result = match (&mut journal, control.checkpoint_generations) {
            (Some(journal), every) if every > 0 || resume.is_some() => {
                let baseline = last_snapshot.as_ref().expect("baseline set with journal");
                let mut checkpoint_error: Option<String> = None;
                let result = explore_pareto_resumable(
                    &job.spec,
                    tech,
                    conditions,
                    &job.config,
                    inner.clone(),
                    resume,
                    every,
                    &mut |state| {
                        let delta = cache.snapshot().diff(baseline);
                        if let Err(e) =
                            journal.append_progress(&progress_record_of(index, state, delta))
                        {
                            checkpoint_error = Some(e);
                            return false;
                        }
                        progress_written += 1;
                        control.stop_after_progress != Some(progress_written)
                    },
                );
                if let Some(e) = checkpoint_error {
                    return Err(e);
                }
                result
            }
            _ => explore_pareto_resumable(
                &job.spec,
                tech,
                conditions,
                &job.config,
                inner.clone(),
                None,
                0,
                &mut |_| true,
            ),
        };
        let Some(result) = result else {
            // Abandoned at a journaled generation boundary
            // (`stop_after_progress`): the report covers a prefix, and
            // the journal's progress record carries the rest.
            complete = false;
            break;
        };
        let outcome = BatchOutcome {
            config: job.config.clone(),
            result,
        };
        if let Some(journal) = &mut journal {
            let now = cache.snapshot();
            let delta = now.diff(last_snapshot.as_ref().expect("baseline set with journal"));
            journal.append(&record_of_outcome(index, &outcome, delta))?;
            last_snapshot = Some(now);
        }
        outcomes.push(outcome);
        executed += 1;
    }
    Ok(BatchReport {
        evaluations: outcomes.iter().map(|o| o.result.evaluations).sum(),
        distinct_evaluations: outcomes.iter().map(|o| o.result.distinct_evaluations).sum(),
        cache_hits: outcomes.iter().map(|o| o.result.cache_hits).sum(),
        dominance_comparisons: outcomes
            .iter()
            .map(|o| o.result.dominance.comparisons)
            .sum(),
        dominance_word_ops: outcomes.iter().map(|o| o.result.dominance.word_ops).sum(),
        estimator: outcomes
            .iter()
            .fold(EstimatorStats::default(), |mut acc, o| {
                acc.merge(o.result.estimator);
                acc
            }),
        speculation: outcomes
            .iter()
            .fold(SpeculationStats::default(), |acc, o| SpeculationStats {
                speculated: acc.speculated + o.result.speculation.speculated,
                confirmed: acc.confirmed + o.result.speculation.confirmed,
                rebred: acc.rebred + o.result.speculation.rebred,
            }),
        preloaded_entries,
        cache_entries: cache.len(),
        backend,
        remote: None,
        store: None,
        sync: None,
        complete,
        resumed_jobs,
        outcomes,
    })
}

impl BatchReport {
    /// The machine-readable results document. Objective vectors appear
    /// twice: as display-friendly decimal fields and as exact bit
    /// patterns (`"bits"`, 16-digit hex), so consumers can both read and
    /// byte-compare fronts.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("report", Json::from("sega-dcim-batch")),
            ("version", Json::from(sega_wire::FORMAT_VERSION)),
            ("backend", Json::from(self.backend)),
            (
                "totals",
                Json::obj([
                    ("jobs", Json::from(self.outcomes.len())),
                    ("evaluations", Json::from(self.evaluations)),
                    (
                        "distinct_evaluations",
                        Json::from(self.distinct_evaluations),
                    ),
                    ("cache_hits", Json::from(self.cache_hits)),
                    (
                        "dominance_comparisons",
                        Json::from(self.dominance_comparisons),
                    ),
                    ("dominance_word_ops", Json::from(self.dominance_word_ops)),
                    ("estimator_designs", Json::from(self.estimator.designs)),
                    ("estimator_batched", Json::from(self.estimator.batched)),
                    (
                        "estimator_scalar_fallbacks",
                        Json::from(self.estimator.scalar_fallbacks),
                    ),
                ]),
            ),
            ("cache", self.cache_json()),
        ];
        // The speculation ledger rides along only when the speculative
        // loop actually ran, so synchronous reports stay byte-stable.
        if self.speculation.speculated > 0 {
            fields.push((
                "speculation",
                Json::obj([
                    ("speculated", Json::from(self.speculation.speculated)),
                    ("confirmed", Json::from(self.speculation.confirmed)),
                    ("rebred", Json::from(self.speculation.rebred)),
                ]),
            ));
        }
        // The fleet ledger rides along only on remote runs, so
        // in-process reports stay byte-stable across this addition.
        if let Some(remote) = &self.remote {
            fields.push((
                "remote",
                Json::obj([
                    ("transport", Json::from(remote.transport.name())),
                    ("round_trips", Json::from(remote.round_trips)),
                    ("requeues", Json::from(remote.requeues)),
                    ("timeouts", Json::from(remote.timeouts)),
                    ("worker_deaths", Json::from(remote.worker_deaths)),
                    ("respawns", Json::from(remote.respawns)),
                    ("rejoins", Json::from(remote.rejoins)),
                    (
                        "fallback_geometries",
                        Json::from(remote.fallback_geometries),
                    ),
                    ("geometries", Json::from(remote.geometries)),
                    ("merged_entries", Json::from(remote.merged_entries)),
                    ("rejoin_syncs", Json::from(remote.rejoin_syncs)),
                    ("sync_entries", Json::from(remote.sync_entries)),
                    ("sync_bytes", Json::from(remote.sync_bytes)),
                    ("sync_full_bytes", Json::from(remote.sync_full_bytes)),
                    ("workers_alive", Json::from(remote.workers_alive)),
                    ("workers_spawned", Json::from(remote.workers_spawned)),
                    (
                        "capacities",
                        Json::Arr(remote.capacities.iter().map(|&c| Json::from(c)).collect()),
                    ),
                ]),
            ));
        }
        fields.push((
            "jobs",
            Json::Arr(self.outcomes.iter().map(outcome_json).collect()),
        ));
        Json::obj(fields)
    }

    /// The `"cache"` stats object: warm-start and final entry counts,
    /// the hit rate, and — only when a persistent store or an
    /// anti-entropy sync was active — their nested ledgers.
    fn cache_json(&self) -> Json {
        let hit_rate = if self.evaluations > 0 {
            self.cache_hits as f64 / self.evaluations as f64
        } else {
            0.0
        };
        let mut fields = vec![
            ("preloaded_entries", Json::from(self.preloaded_entries)),
            ("entries", Json::from(self.cache_entries)),
            ("hit_rate", Json::from(hit_rate)),
        ];
        if let Some(store) = &self.store {
            fields.push((
                "store",
                Json::obj([
                    ("segments", Json::from(store.segments)),
                    ("segments_loaded", Json::from(store.segments_loaded)),
                    ("segments_skipped", Json::from(store.segments_skipped)),
                    ("segments_filtered", Json::from(store.segments_filtered)),
                    ("entries_loaded", Json::from(store.entries_loaded)),
                    ("segments_appended", Json::from(store.segments_appended)),
                    ("compactions", Json::from(store.compactions)),
                    ("bytes_read", Json::from(store.bytes_read)),
                    ("bytes_written", Json::from(store.bytes_written)),
                ]),
            ));
        }
        if let Some(sync) = &self.sync {
            fields.push((
                "sync",
                Json::obj([
                    ("exchanges", Json::from(sync.exchanges)),
                    ("matched_entries", Json::from(sync.matched_entries)),
                    ("synced_entries", Json::from(sync.synced_entries)),
                    ("bytes_synced", Json::from(sync.bytes_synced)),
                    ("full_snapshot_bytes", Json::from(sync.full_snapshot_bytes)),
                ]),
            ));
        }
        Json::obj(fields)
    }
}

fn outcome_json(outcome: &BatchOutcome) -> Json {
    let result = &outcome.result;
    Json::obj([
        ("wstore", Json::from(result.spec.wstore)),
        ("precision", Json::from(result.spec.precision.name())),
        ("population", Json::from(outcome.config.population)),
        ("generations", Json::from(outcome.config.generations)),
        ("seed", Json::from(outcome.config.seed)),
        ("evaluations", Json::from(result.evaluations)),
        (
            "distinct_evaluations",
            Json::from(result.distinct_evaluations),
        ),
        ("cache_hits", Json::from(result.cache_hits)),
        (
            "front",
            Json::Arr(result.solutions.iter().map(solution_json).collect()),
        ),
    ])
}

/// The wire document of one front member — the **single** schema shared
/// by the batch report and the CLI's `explore --json`: the design point,
/// its readable metrics, and the exact objective bit patterns (`"bits"`,
/// 16-digit hex) consumers byte-compare.
pub fn solution_json(s: &crate::explore::ParetoSolution) -> Json {
    let (n, h, l, k) = s.design.geometry();
    Json::obj([
        ("design", Json::from(s.design.to_string())),
        (
            "geometry",
            Json::obj([
                ("n", Json::from(n)),
                ("h", Json::from(h)),
                ("l", Json::from(l)),
                ("k", Json::from(k)),
            ]),
        ),
        ("area_mm2", Json::from(s.estimate.area_mm2)),
        ("delay_ns", Json::from(s.estimate.delay_ns)),
        (
            "energy_per_pass_nj",
            Json::from(s.estimate.energy_per_pass_nj),
        ),
        ("tops", Json::from(s.estimate.tops)),
        ("tops_per_w", Json::from(s.estimate.tops_per_w())),
        (
            "bits",
            Json::Arr(
                s.objectives()
                    .iter()
                    .map(|o| Json::Str(format!("{:016x}", o.to_bits())))
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a cache file's bytes (binary or JSON, sniffed by magic) into
/// a [`Snapshot`].
///
/// # Errors
///
/// A human-readable message (for CLI surfaces).
pub fn decode_cache_file(bytes: &[u8]) -> Result<Snapshot, String> {
    Snapshot::decode(bytes).map_err(|e| format!("cache file: {e}"))
}

/// Encodes a snapshot for a cache file path: JSON text when the path
/// ends in `.json`, the compact binary form otherwise.
pub fn encode_cache_file(snapshot: &Snapshot, path: &std::path::Path) -> Vec<u8> {
    if path.extension().is_some_and(|e| e == "json") {
        let mut text = snapshot.to_json().to_string();
        text.push('\n');
        text.into_bytes()
    } else {
        snapshot.encode_binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Nsga2Config {
        Nsga2Config {
            population: 12,
            generations: 6,
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn job_files_parse_with_defaults_and_overrides() {
        let jobs = parse_jobs(
            r#"{"jobs":[
                {"wstore": 8192, "precision": "int8"},
                {"wstore": 16384, "precision": "BF16", "population": 30, "seed": 5}
            ]}"#,
            &quick(),
        )
        .unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].spec.wstore, 8192);
        assert_eq!(jobs[0].config.population, 12);
        assert_eq!(jobs[0].config.seed, 9);
        assert_eq!(jobs[1].spec.precision, Precision::Bf16);
        assert_eq!(jobs[1].config.population, 30);
        assert_eq!(jobs[1].config.generations, 6);
        assert_eq!(jobs[1].config.seed, 5);
        // A bare array works too.
        let bare = parse_jobs(r#"[{"wstore": 4096, "precision": "int4"}]"#, &quick()).unwrap();
        assert_eq!(bare.len(), 1);
    }

    #[test]
    fn job_file_errors_name_the_job() {
        let defaults = quick();
        for (text, needle) in [
            ("{}", "jobs"),
            ("[]", "no jobs"),
            (
                r#"[{"precision":"int8"}]"#,
                "job 0: missing or invalid `wstore`",
            ),
            (
                r#"[{"wstore":8192}]"#,
                "job 0: missing or invalid `precision`",
            ),
            (
                r#"[{"wstore":8192,"precision":"int3"}]"#,
                "unknown precision",
            ),
            (r#"[{"wstore":5000,"precision":"int8"}]"#, "power of two"),
            (
                r#"[{"wstore":8192,"precision":"int8","seed":"x"}]"#,
                "job 0: missing or invalid `seed`",
            ),
        ] {
            let err = parse_jobs(text, &defaults).unwrap_err();
            assert!(err.contains(needle), "`{err}` missing `{needle}`");
        }
    }

    #[test]
    fn batch_runs_share_one_cache_across_jobs() {
        let jobs = parse_jobs(
            r#"[{"wstore": 8192, "precision": "int8", "seed": 1},
                {"wstore": 8192, "precision": "int8", "seed": 2}]"#,
            &quick(),
        )
        .unwrap();
        let report = run_batch(
            &jobs,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            PipelineOptions::default(),
        );
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.preloaded_entries, 0);
        assert_eq!(report.backend, "macro-model");
        // Second job mines the first job's cache: strictly fewer distinct
        // evaluations than an isolated run of the same job.
        let isolated = run_batch(
            &jobs[1..],
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            PipelineOptions::default(),
        );
        assert!(
            report.outcomes[1].result.distinct_evaluations
                < isolated.outcomes[0].result.distinct_evaluations,
            "cross-job reuse must shrink the estimator bill"
        );
        // And the front is unaffected by where estimates came from.
        assert_eq!(
            report.outcomes[1].result.objective_matrix(),
            isolated.outcomes[0].result.objective_matrix()
        );
    }

    #[test]
    fn report_document_is_valid_json_with_exact_bits() {
        let jobs = parse_jobs(r#"[{"wstore": 8192, "precision": "int8"}]"#, &quick()).unwrap();
        let report = run_batch(
            &jobs,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            PipelineOptions::default(),
        );
        let text = report.to_json().to_string();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("report").and_then(Json::as_str),
            Some("sega-dcim-batch")
        );
        let job = &doc.get("jobs").and_then(Json::as_arr).unwrap()[0];
        let front = job.get("front").and_then(Json::as_arr).unwrap();
        assert_eq!(front.len(), report.outcomes[0].result.solutions.len());
        let bits = front[0].get("bits").and_then(Json::as_arr).unwrap();
        let expected = report.outcomes[0].result.solutions[0].objectives();
        for (b, o) in bits.iter().zip(expected) {
            assert_eq!(b.as_str().unwrap(), format!("{:016x}", o.to_bits()));
        }
    }

    #[test]
    fn cache_file_encoding_follows_the_extension() {
        let snapshot = Snapshot::default();
        let binary = encode_cache_file(&snapshot, std::path::Path::new("warm.bin"));
        assert!(sega_wire::Reader::looks_binary(&binary));
        let json = encode_cache_file(&snapshot, std::path::Path::new("warm.json"));
        assert!(json.starts_with(b"{"));
        decode_cache_file(&binary).unwrap();
        decode_cache_file(&json).unwrap();
        assert!(decode_cache_file(b"garbage").is_err());
    }
}
