//! The networked service layer: `sega-dcim serve` — a long-lived daemon
//! that accepts framed batch jobs from many concurrent client
//! connections and multiplexes them onto **one** shared eval cache and
//! one backend — plus the socket plumbing ([`ListenAddr`], stream and
//! listener adapters) shared by the daemon, the connected batch client
//! and the worker fleet's socket transports.
//!
//! # Connection lifecycle
//!
//! Every peer moves through the same supervised state machine:
//!
//! ```text
//! Connecting → Hello → Serving → Draining → Gone
//! ```
//!
//! *Connecting* is the raw TCP/Unix accept. *Hello* is the versioned
//! capability exchange ([`sega_wire::frame::Hello`]), bounded by a hello
//! deadline — a peer that connects and never identifies itself is
//! dropped and counted, never awaited indefinitely. *Serving* answers
//! framed requests under an idle timeout; [`Message::Heartbeat`] frames
//! keep a quiet connection alive. *Draining* begins on SIGTERM (the CLI
//! routes the signal through [`drain_flag`]) or a [`Message::Shutdown`]
//! frame from any client: the daemon stops accepting, lets in-flight
//! jobs finish under a bounded grace, flushes the cache to its
//! persistent store (`--cache-file` or the segmented `--cache-dir` —
//! see [`CacheStore`]), and only then exits. *Gone* closes the
//! connection and reclaims its thread.
//!
//! # Determinism
//!
//! A job executes through the exact same [`explore_pareto_with`]
//! pipeline a local batch run uses, so the front the daemon ships back
//! is **bit-identical** to an in-process run of the same job — and
//! because every connection shares one [`SharedEvalCache`], a second
//! client repeating a batch against a warm daemon reports **0 distinct
//! evaluations**. A client that disconnects mid-job changes nothing: the
//! job runs to completion on the daemon and its estimates stay in the
//! cache; only the response write is skipped.

use std::io::{self, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sega_cells::Technology;
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;
use sega_wire::frame::{
    self, FrameError, Hello, JobRequest, JobResponse, Message, SyncEntries, SyncRequest,
    SyncResponse, PROTOCOL_VERSION,
};
use sega_wire::{plan_delta, CacheDigest, GeometryRecord, Snapshot};

use crate::backend::EvalBackend;
use crate::batch::{BatchJob, BatchOutcome, BatchReport, CacheSyncStats};
use crate::cache::SharedEvalCache;
use crate::explore::{explore_pareto_with, ExplorationResult, Geometry, PipelineOptions};
use crate::store::{CacheStore, DEFAULT_MAX_SEGMENTS};

/// A parsed socket address: `unix:/path/to.sock` or `tcp:host:port`.
///
/// The single address vocabulary of the networked surfaces — `serve
/// --listen`, `batch --connect`, `worker --connect` — and of the fleet's
/// socket transports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListenAddr {
    /// A Unix domain socket at this filesystem path.
    Unix(PathBuf),
    /// A TCP socket at this `host:port`.
    Tcp(String),
}

impl ListenAddr {
    /// Parses `unix:PATH` or `tcp:HOST:PORT`.
    ///
    /// # Errors
    ///
    /// A human-readable message for any other shape.
    pub fn parse(raw: &str) -> Result<ListenAddr, String> {
        if let Some(path) = raw.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix address needs a socket path (`unix:/path/to.sock`)".to_owned());
            }
            return Ok(ListenAddr::Unix(PathBuf::from(path)));
        }
        if let Some(hostport) = raw.strip_prefix("tcp:") {
            if !hostport.contains(':') {
                return Err(format!(
                    "tcp address needs `host:port`, got `{hostport}` (`tcp:127.0.0.1:7800`)"
                ));
            }
            return Ok(ListenAddr::Tcp(hostport.to_owned()));
        }
        Err(format!(
            "address `{raw}` must start with `unix:` or `tcp:` \
             (`unix:/tmp/sega.sock`, `tcp:127.0.0.1:7800`)"
        ))
    }
}

impl std::fmt::Display for ListenAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListenAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            ListenAddr::Tcp(hostport) => write!(f, "tcp:{hostport}"),
        }
    }
}

/// One connected socket, Unix or TCP — a unified `Read + Write` the
/// frame codec runs over.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A Unix domain socket connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to `addr` once.
    pub(crate) fn connect(addr: &ListenAddr) -> io::Result<Stream> {
        match addr {
            ListenAddr::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            ListenAddr::Tcp(hostport) => TcpStream::connect(hostport.as_str()).map(Stream::Tcp),
        }
    }

    /// A second handle on the same socket (for a dedicated read half).
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    /// Bounds blocking reads on the socket (shared by every clone).
    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Hard-closes both directions: pending and future reads on every
    /// clone return immediately (the bury/drain primitive — dropping one
    /// clone would leave the other's reader blocked).
    pub(crate) fn disconnect(&self) {
        match self {
            Stream::Unix(s) => drop(s.shutdown(Shutdown::Both)),
            Stream::Tcp(s) => drop(s.shutdown(Shutdown::Both)),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// A bound accept socket. The Unix variant owns its socket file and
/// removes it on drop.
#[derive(Debug)]
pub(crate) enum Listener {
    /// A bound Unix domain socket and the path it occupies.
    Unix(UnixListener, PathBuf),
    /// A bound TCP socket.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`, returning the listener and the **resolved** address
    /// (a `tcp:host:0` request comes back with the real port, so workers
    /// and clients can be pointed at it).
    pub(crate) fn bind(addr: &ListenAddr) -> io::Result<(Listener, ListenAddr)> {
        match addr {
            ListenAddr::Unix(path) => {
                // A stale socket file from a dead daemon would fail the
                // bind with AddrInUse; connecting distinguishes a live
                // daemon (refuse to steal) from a leftover (remove).
                if path.exists() && UnixStream::connect(path).is_err() {
                    std::fs::remove_file(path)?;
                }
                let listener = UnixListener::bind(path)?;
                Ok((
                    Listener::Unix(listener, path.clone()),
                    ListenAddr::Unix(path.clone()),
                ))
            }
            ListenAddr::Tcp(hostport) => {
                let listener = TcpListener::bind(hostport.as_str())?;
                let resolved = listener.local_addr()?;
                Ok((
                    Listener::Tcp(listener),
                    ListenAddr::Tcp(resolved.to_string()),
                ))
            }
        }
    }

    /// Switches the listener to non-blocking accepts (the accept loops
    /// poll a drain flag between attempts).
    pub(crate) fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    /// Accepts one connection (non-blocking once
    /// [`set_nonblocking`](Self::set_nonblocking) ran).
    pub(crate) fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Connects to `addr`, retrying for up to `patience` (the peer may still
/// be binding its listener — daemon startup, fleet hub construction).
///
/// # Errors
///
/// The last connect error once patience runs out.
pub(crate) fn connect_with_retry(addr: &ListenAddr, patience: Duration) -> Result<Stream, String> {
    let deadline = Instant::now() + patience;
    loop {
        match Stream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(format!("cannot connect to `{addr}`: {e}")),
        }
    }
}

/// `true` when a frame error is a read-timeout surfacing through the
/// socket's `SO_RCVTIMEO` (idle peer), as opposed to a real transport
/// failure.
fn is_read_timeout(e: &FrameError) -> bool {
    matches!(
        e,
        FrameError::Io(io) if matches!(io.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
    )
}

/// The process-wide drain request flag: the CLI's SIGTERM handler sets
/// it, every running [`serve`] loop polls it. (A [`Message::Shutdown`]
/// frame drains only its own daemon; the signal drains all of them.)
pub fn drain_flag() -> &'static AtomicBool {
    static FLAG: AtomicBool = AtomicBool::new(false);
    &FLAG
}

/// Configuration of one [`serve`] daemon.
#[derive(Debug)]
pub struct ServeOptions {
    /// Where to accept client connections.
    pub listen: ListenAddr,
    /// Warm-start the cache from this snapshot at startup and flush the
    /// final snapshot here during drain.
    pub cache_file: Option<PathBuf>,
    /// Persist the cache as an append-only segment directory instead of
    /// a single file: warm-start from every readable segment at startup,
    /// append a delta segment after each served job, compact under
    /// [`cache_max_segments`](Self::cache_max_segments). Takes
    /// precedence over [`cache_file`](Self::cache_file).
    pub cache_dir: Option<PathBuf>,
    /// Compaction budget of the segment directory.
    pub cache_max_segments: usize,
    /// The shared eval cache jobs run against. `None` creates a private
    /// one; pass a handle to share it with a backend sink (the CLI wires
    /// a remote fleet's sink to the same cache).
    pub cache: Option<Arc<SharedEvalCache>>,
    /// The eval backend jobs run on. `None` = the in-process macro
    /// model; the CLI passes a [`RemoteBackend`](crate::RemoteBackend)
    /// here for a daemon that fronts its own worker fleet.
    pub backend: Option<Arc<dyn EvalBackend>>,
    /// Evaluation pipeline width per job (`0` = all hardware threads).
    pub threads: usize,
    /// How long a freshly accepted connection may take to say hello.
    pub hello_deadline: Duration,
    /// How long a helloed connection may stay silent before it is
    /// closed (heartbeats reset it).
    pub idle_timeout: Duration,
    /// How long the drain waits for in-flight connections before
    /// abandoning them.
    pub grace: Duration,
    /// Emit per-connection log lines on stderr.
    pub log: bool,
}

impl ServeOptions {
    /// A daemon on `listen` with the default supervision knobs: 10 s
    /// hello deadline, 10 min idle timeout, 5 s drain grace.
    pub fn new(listen: ListenAddr) -> ServeOptions {
        ServeOptions {
            listen,
            cache_file: None,
            cache_dir: None,
            cache_max_segments: DEFAULT_MAX_SEGMENTS,
            cache: None,
            backend: None,
            threads: 0,
            hello_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(600),
            grace: Duration::from_secs(5),
            log: false,
        }
    }
}

/// What one daemon lifetime served, returned by [`serve`] after drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections accepted.
    pub connections: u64,
    /// Jobs executed to completion.
    pub jobs: u64,
    /// Connections dropped for missing the hello deadline.
    pub hello_timeouts: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// `true` when every connection finished inside the drain grace;
    /// `false` when the grace expired with work still in flight.
    pub drained_clean: bool,
    /// Cache entries at drain time (what the snapshot flush persisted).
    pub cache_entries: usize,
}

/// Shared state of one daemon: the cache and backend every connection's
/// jobs run through, the drain/activity flags the accept loop and the
/// connection threads coordinate on, and the served counters.
#[derive(Debug)]
struct DaemonShared {
    cache: Arc<SharedEvalCache>,
    backend: Option<Arc<dyn EvalBackend>>,
    threads: usize,
    hello_deadline: Duration,
    idle_timeout: Duration,
    log: bool,
    draining: AtomicBool,
    active: AtomicUsize,
    jobs: AtomicU64,
    hello_timeouts: AtomicU64,
    idle_closed: AtomicU64,
    /// Jobs execute one at a time: every connection shares one cache and
    /// one backend, and serialized execution keeps the daemon's answer
    /// for any job history deterministic.
    job_lock: Mutex<()>,
    /// The persistent home of the cache, when configured. A segment
    /// directory gets a delta appended after every served job (so a
    /// daemon killed mid-lifetime loses at most the in-flight job's
    /// estimates); a single file is only rewritten at drain.
    store: Mutex<Option<CacheStore>>,
}

impl DaemonShared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || drain_flag().load(Ordering::SeqCst)
    }

    fn log(&self, text: &str) {
        if self.log {
            eprintln!("[serve] {text}");
        }
    }

    /// Appends the cache delta accumulated since the last save to a
    /// segmented store. Single-file stores are skipped here (rewriting
    /// the whole blob per job would be quadratic) and flushed at drain.
    fn persist_after_job(&self) {
        let mut store = self.store.lock().expect("store lock poisoned");
        let Some(store) = store.as_mut() else { return };
        if !store.is_segmented() {
            return;
        }
        if let Err(e) = store.save(&self.cache.snapshot()) {
            eprintln!("warning: cache segment append failed: {e}");
        }
    }
}

/// Runs the daemon until a drain request (SIGTERM via [`drain_flag`], or
/// a [`Message::Shutdown`] frame from any client) completes: stop
/// accepting, finish in-flight connections under
/// [`ServeOptions::grace`], flush the cache snapshot, report.
///
/// # Errors
///
/// Binding the listen address, loading the cache file, or flushing the
/// final snapshot.
pub fn serve(options: ServeOptions) -> Result<ServeReport, String> {
    let (listener, resolved) = Listener::bind(&options.listen)
        .map_err(|e| format!("cannot listen on `{}`: {e}", options.listen))?;
    listener
        .set_nonblocking()
        .map_err(|e| format!("cannot poll `{resolved}`: {e}"))?;
    let cache = options
        .cache
        .unwrap_or_else(|| Arc::new(SharedEvalCache::new()));
    let mut store = match (&options.cache_dir, &options.cache_file) {
        (Some(dir), _) => Some(CacheStore::dir(dir, options.cache_max_segments)?),
        (None, Some(path)) => Some(CacheStore::file(path)),
        (None, None) => None,
    };
    if let Some(store) = &mut store {
        let outcome = store.load()?;
        for warning in &outcome.warnings {
            eprintln!("warning: {warning}");
        }
        let installed = cache.load(&outcome.snapshot).map_err(|e| e.to_string())?;
        if options.log {
            eprintln!(
                "[serve] warm-started {installed} cache entries from {}",
                store.path().display()
            );
        }
    }
    let shared = Arc::new(DaemonShared {
        cache: Arc::clone(&cache),
        backend: options.backend,
        threads: options.threads,
        hello_deadline: options.hello_deadline,
        idle_timeout: options.idle_timeout,
        log: options.log,
        draining: AtomicBool::new(false),
        active: AtomicUsize::new(0),
        jobs: AtomicU64::new(0),
        hello_timeouts: AtomicU64::new(0),
        idle_closed: AtomicU64::new(0),
        job_lock: Mutex::new(()),
        store: Mutex::new(store),
    });
    shared.log(&format!("listening on {resolved}"));

    let mut connections: u64 = 0;
    while !shared.draining() {
        match listener.accept() {
            Ok(stream) => {
                connections += 1;
                let conn = connections;
                shared.active.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("sega-serve-conn-{conn}"))
                    .spawn(move || {
                        if let Err(e) = serve_connection(stream, conn, &conn_shared) {
                            conn_shared.log(&format!("connection {conn}: {e}"));
                        }
                        conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                    });
                if spawned.is_err() {
                    shared.active.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => return Err(format!("accept on `{resolved}` failed: {e}")),
        }
    }

    // Draining: the listener stops accepting (loop exited), in-flight
    // connections get a bounded grace to finish, then the daemon moves
    // on regardless — a wedged client must never pin a shutdown.
    shared.log("draining: no longer accepting, waiting for in-flight work");
    let deadline = Instant::now() + options.grace;
    while shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let drained_clean = shared.active.load(Ordering::SeqCst) == 0;
    {
        let mut store = shared.store.lock().expect("store lock poisoned");
        if let Some(store) = store.as_mut() {
            store.save(&cache.snapshot())?;
            shared.log(&format!(
                "flushed {} cache entries to {}",
                cache.len(),
                store.path().display()
            ));
        }
    }
    Ok(ServeReport {
        connections,
        jobs: shared.jobs.load(Ordering::Relaxed),
        hello_timeouts: shared.hello_timeouts.load(Ordering::Relaxed),
        idle_closed: shared.idle_closed.load(Ordering::Relaxed),
        drained_clean,
        cache_entries: cache.len(),
    })
}

/// One connection's lifecycle: hello under the deadline, then serve
/// frames under the idle timeout until the peer leaves, goes quiet, or
/// the daemon drains.
fn serve_connection(stream: Stream, conn: u64, shared: &DaemonShared) -> Result<(), String> {
    // Hello phase, bounded: a connected-but-silent peer is dropped at
    // the deadline, exactly like a stalled worker.
    stream
        .set_read_timeout(Some(shared.hello_deadline))
        .map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = stream;
    let hello = match frame::recv(&mut reader) {
        Ok(Message::Hello(hello)) => hello,
        Ok(_) => return Err("peer's first frame was not a hello".to_owned()),
        Err(e) if is_read_timeout(&e) => {
            shared.hello_timeouts.fetch_add(1, Ordering::Relaxed);
            writer.disconnect();
            return Ok(());
        }
        Err(e) => return Err(format!("hello: {e}")),
    };
    if hello.protocol != PROTOCOL_VERSION {
        return Err(format!(
            "peer speaks protocol {}, daemon speaks {PROTOCOL_VERSION}",
            hello.protocol
        ));
    }
    frame::send(&mut writer, &Message::Hello(Hello::daemon()))
        .map_err(|e| format!("hello: {e}"))?;
    shared.log(&format!(
        "connection {conn}: hello from role `{}` peer {}",
        hello.role, hello.peer_id
    ));

    // Serving phase, under the idle timeout.
    writer
        .set_read_timeout(Some(shared.idle_timeout))
        .map_err(|e| e.to_string())?;
    loop {
        if shared.draining() {
            writer.disconnect();
            return Ok(());
        }
        match frame::recv(&mut reader) {
            Ok(Message::Heartbeat) => continue,
            Ok(Message::JobRequest(job)) => {
                let response = run_job(shared, &job)?;
                shared.jobs.fetch_add(1, Ordering::Relaxed);
                shared.persist_after_job();
                // A client gone mid-job is not an error: the job ran to
                // completion and its estimates are in the cache — only
                // the write is skipped (deterministically, for any
                // disconnect timing).
                if let Err(e) = frame::send(&mut writer, &Message::JobResponse(response)) {
                    shared.log(&format!(
                        "connection {conn}: client left mid-job ({e}); cache delta retained"
                    ));
                    return Ok(());
                }
            }
            Ok(Message::SyncRequest(req)) => {
                // Anti-entropy pull: answer the client's digest with
                // only the entries it is provably missing, prefixed by
                // the plan summary so the client can account
                // bytes-synced against the full-snapshot cost.
                let mine = shared.cache.snapshot();
                let plan = plan_delta(&mine, &req.digest);
                let delta_bytes = plan.delta.encode_binary().len() as u64;
                let full_bytes = mine.encode_binary().len() as u64;
                let summary = SyncResponse {
                    id: req.id,
                    matched_entries: plan.matched_entries,
                    delta_entries: plan.delta.len() as u64,
                    delta_bytes,
                    full_bytes,
                };
                shared.log(&format!(
                    "connection {conn}: sync {} entries ({delta_bytes} of {full_bytes} \
                     full-snapshot bytes)",
                    summary.delta_entries
                ));
                let sent =
                    frame::send(&mut writer, &Message::SyncResponse(summary)).and_then(|()| {
                        frame::send(
                            &mut writer,
                            &Message::SyncEntries(SyncEntries {
                                id: req.id,
                                delta: plan.delta,
                            }),
                        )
                    });
                if let Err(e) = sent {
                    shared.log(&format!("connection {conn}: client left mid-sync ({e})"));
                    return Ok(());
                }
            }
            Ok(Message::Shutdown) => {
                shared.log(&format!("connection {conn}: shutdown frame, draining"));
                shared.draining.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Ok(_) => return Err("peer sent a frame the daemon does not serve".to_owned()),
            Err(FrameError::Eof) => return Ok(()),
            Err(e) if is_read_timeout(&e) => {
                shared.idle_closed.fetch_add(1, Ordering::Relaxed);
                shared.log(&format!("connection {conn}: idle timeout, closing"));
                writer.disconnect();
                return Ok(());
            }
            Err(e) => return Err(format!("transport: {e}")),
        }
    }
}

/// Executes one job through the standard exploration pipeline on the
/// daemon's shared cache and backend. Serialized across connections.
fn run_job(shared: &DaemonShared, job: &JobRequest) -> Result<JobResponse, String> {
    let precision = Precision::from_name(&job.precision)
        .ok_or_else(|| format!("job {} names unknown precision `{}`", job.id, job.precision))?;
    let spec = crate::spec::UserSpec::new(job.wstore, precision)
        .map_err(|e| format!("job {}: {e}", job.id))?;
    let config = Nsga2Config {
        population: job.population as usize,
        generations: job.generations as usize,
        seed: job.seed,
        ..Default::default()
    };
    let _serialized = shared.job_lock.lock().map_err(|_| "job lock poisoned")?;
    let pipeline = PipelineOptions {
        threads: shared.threads,
        shared_cache: Some(Arc::clone(&shared.cache)),
        backend: shared.backend.clone(),
        ..Default::default()
    };
    let result = explore_pareto_with(
        &spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &config,
        pipeline,
    );
    Ok(JobResponse {
        id: job.id,
        evaluations: result.evaluations as u64,
        distinct_evaluations: result.distinct_evaluations as u64,
        cache_hits: result.cache_hits as u64,
        front: result.solutions.iter().map(record_of_solution).collect(),
    })
}

/// The geometry record of a front member (the design's `H`/`L` are
/// powers of two by construction, so the log form is exact).
fn record_of_solution(s: &crate::explore::ParetoSolution) -> GeometryRecord {
    let (_, h, l, k) = s.design.geometry();
    GeometryRecord {
        log_h: h.trailing_zeros(),
        log_l: l.trailing_zeros(),
        k,
    }
}

/// Runs a batch job list against a remote daemon: one
/// [`Message::JobRequest`] per job over a single connection, fronts
/// rematerialized locally through the deterministic macro model (the
/// daemon ships geometry records; presentation needs no round-trip and
/// cannot diverge). With `drain`, a [`Message::Shutdown`] frame follows
/// the last job, asking the daemon to flush and exit.
///
/// # Errors
///
/// Connect/handshake failures, a daemon protocol violation, or the
/// daemon vanishing mid-batch.
pub fn run_batch_connected(
    addr: &ListenAddr,
    jobs: &[BatchJob],
    drain: bool,
) -> Result<BatchReport, String> {
    run_batch_connected_with(addr, jobs, drain, None)
}

/// [`run_batch_connected`] with a local persistent cache store: the
/// client anti-entropy-pulls the daemon's cache into the store — once
/// after the hello (so the store warms before any job runs) and once
/// after the last job (so the jobs' own estimates persist locally) —
/// exchanging digests first and moving **only the missing entries**,
/// never a whole snapshot. The report's `sync` ledger carries the
/// bytes-moved vs full-snapshot accounting; fronts and evaluation
/// accounting are bit-identical to a storeless connected run.
///
/// # Errors
///
/// As [`run_batch_connected`], plus store load/save failures.
pub fn run_batch_connected_with(
    addr: &ListenAddr,
    jobs: &[BatchJob],
    drain: bool,
    mut store: Option<&mut CacheStore>,
) -> Result<BatchReport, String> {
    let writer = connect_with_retry(addr, Duration::from_secs(5))?;
    let mut reader = BufReader::new(writer.try_clone().map_err(|e| e.to_string())?);
    let mut writer = writer;
    frame::send(&mut writer, &Message::Hello(Hello::client()))
        .map_err(|e| format!("hello: {e}"))?;
    match frame::recv(&mut reader) {
        Ok(Message::Hello(hello)) if hello.protocol == PROTOCOL_VERSION => {}
        Ok(Message::Hello(hello)) => {
            return Err(format!(
                "daemon speaks protocol {}, client speaks {PROTOCOL_VERSION}",
                hello.protocol
            ))
        }
        Ok(_) => return Err("daemon's first frame was not a hello".to_owned()),
        Err(e) => return Err(format!("hello: {e}")),
    }

    // Local store: load what we already hold, then pull the daemon's
    // surplus before any job runs.
    let mut local = Snapshot::default();
    let mut preloaded_entries = 0;
    let mut sync = CacheSyncStats::default();
    if let Some(store) = store.as_deref_mut() {
        let outcome = store.load()?;
        for warning in &outcome.warnings {
            eprintln!("warning: {warning}");
        }
        local = outcome.snapshot;
        preloaded_entries = local.len();
        sync_pull(&mut writer, &mut reader, &mut local, &mut sync)?;
    }

    let tech = Technology::tsmc28();
    let conditions = OperatingConditions::paper_default();
    let mut outcomes: Vec<BatchOutcome> = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.iter().enumerate() {
        let id = index as u64 + 1;
        let request = Message::JobRequest(JobRequest {
            id,
            wstore: job.spec.wstore,
            precision: job.spec.precision.name().to_owned(),
            population: job.config.population as u32,
            generations: job.config.generations as u32,
            seed: job.config.seed,
        });
        frame::send(&mut writer, &request).map_err(|e| format!("job {id}: {e}"))?;
        let response = loop {
            match frame::recv(&mut reader) {
                Ok(Message::JobResponse(response)) if response.id == id => break response,
                Ok(Message::Heartbeat) => continue,
                Ok(other) => {
                    return Err(format!(
                        "job {id}: daemon answered out of protocol: {other:?}"
                    ))
                }
                Err(e) => return Err(format!("job {id}: daemon lost mid-batch: {e}")),
            }
        };
        outcomes.push(BatchOutcome {
            config: job.config.clone(),
            result: materialize_result(job, &response, &tech, &conditions)?,
        });
    }
    // Second pull: the jobs just run (ours and any other client's) grew
    // the daemon's cache; persist the union locally so the *next* client
    // over this store syncs near zero bytes.
    if let Some(store) = store.as_deref_mut() {
        sync_pull(&mut writer, &mut reader, &mut local, &mut sync)?;
        store.save(&local)?;
    }
    if drain {
        frame::send(&mut writer, &Message::Shutdown).map_err(|e| format!("shutdown: {e}"))?;
    }

    let synced = store.is_some();
    Ok(BatchReport {
        evaluations: outcomes.iter().map(|o| o.result.evaluations).sum(),
        distinct_evaluations: outcomes.iter().map(|o| o.result.distinct_evaluations).sum(),
        cache_hits: outcomes.iter().map(|o| o.result.cache_hits).sum(),
        dominance_comparisons: 0,
        dominance_word_ops: 0,
        estimator: Default::default(),
        speculation: Default::default(),
        // The daemon owns the cache; a connected client sees what its
        // own jobs report — plus its local store, when it carries one.
        preloaded_entries,
        cache_entries: local.len(),
        backend: "daemon",
        remote: None,
        store: store.map(|s| s.stats()),
        sync: synced.then_some(sync),
        complete: true,
        resumed_jobs: 0,
        outcomes,
    })
}

/// One anti-entropy exchange from the client side: send the digest of
/// `local`, merge the entries the daemon proves us missing, accumulate
/// the ledger. Heartbeats between frames are tolerated.
fn sync_pull(
    writer: &mut Stream,
    reader: &mut BufReader<Stream>,
    local: &mut Snapshot,
    sync: &mut CacheSyncStats,
) -> Result<(), String> {
    let id = sync.exchanges + 1;
    frame::send(
        writer,
        &Message::SyncRequest(SyncRequest {
            id,
            digest: CacheDigest::of(local),
        }),
    )
    .map_err(|e| format!("sync {id}: {e}"))?;
    let summary = loop {
        match frame::recv(reader) {
            Ok(Message::SyncResponse(resp)) if resp.id == id => break resp,
            Ok(Message::Heartbeat) => continue,
            Ok(other) => {
                return Err(format!(
                    "sync {id}: daemon answered out of protocol: {other:?}"
                ))
            }
            Err(e) => return Err(format!("sync {id}: {e}")),
        }
    };
    let entries = loop {
        match frame::recv(reader) {
            Ok(Message::SyncEntries(entries)) if entries.id == id => break entries,
            Ok(Message::Heartbeat) => continue,
            Ok(other) => {
                return Err(format!(
                    "sync {id}: daemon answered out of protocol: {other:?}"
                ))
            }
            Err(e) => return Err(format!("sync {id}: {e}")),
        }
    };
    local.merge(&entries.delta);
    sync.exchanges += 1;
    sync.matched_entries += summary.matched_entries;
    sync.synced_entries += summary.delta_entries;
    sync.bytes_synced += summary.delta_bytes;
    sync.full_snapshot_bytes += summary.full_bytes;
    Ok(())
}

/// Rebuilds a full [`ExplorationResult`] from a daemon's job response:
/// the front's geometry records rematerialize through the in-process
/// macro model (bit-identical by the determinism contract), in the
/// daemon's order.
fn materialize_result(
    job: &BatchJob,
    response: &JobResponse,
    tech: &Technology,
    conditions: &OperatingConditions,
) -> Result<ExplorationResult, String> {
    let evaluator = crate::backend::MacroModelBackend.bind(&job.spec, tech, conditions);
    let mut solutions = Vec::with_capacity(response.front.len());
    for record in &response.front {
        let g = Geometry {
            log_h: record.log_h,
            log_l: record.log_l,
            k: record.k,
        };
        let solution = evaluator.materialize(&g).ok_or_else(|| {
            format!(
                "job {}: daemon front names a geometry outside the spec's design space",
                response.id
            )
        })?;
        solutions.push(solution);
    }
    Ok(ExplorationResult {
        spec: job.spec,
        solutions,
        evaluations: response.evaluations as usize,
        distinct_evaluations: response.distinct_evaluations as usize,
        cache_hits: response.cache_hits as usize,
        interned: 0,
        dominance: Default::default(),
        estimator: Default::default(),
        speculation: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::parse_jobs;

    fn scratch_addr(tag: &str) -> ListenAddr {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        ListenAddr::Unix(
            std::env::temp_dir().join(format!("sega-{tag}-{}-{n}.sock", std::process::id())),
        )
    }

    #[test]
    fn listen_addrs_parse_and_round_trip() {
        let unix = ListenAddr::parse("unix:/tmp/sega.sock").unwrap();
        assert_eq!(unix, ListenAddr::Unix(PathBuf::from("/tmp/sega.sock")));
        assert_eq!(unix.to_string(), "unix:/tmp/sega.sock");
        let tcp = ListenAddr::parse("tcp:127.0.0.1:7800").unwrap();
        assert_eq!(tcp, ListenAddr::Tcp("127.0.0.1:7800".to_owned()));
        assert_eq!(tcp.to_string(), "tcp:127.0.0.1:7800");
        for bad in [
            "",
            "unix:",
            "tcp:",
            "tcp:noport",
            "udp:127.0.0.1:1",
            "/tmp/x",
        ] {
            assert!(ListenAddr::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn tcp_port_zero_resolves_to_a_real_port() {
        let (listener, resolved) =
            Listener::bind(&ListenAddr::Tcp("127.0.0.1:0".to_owned())).expect("bind ephemeral");
        match &resolved {
            ListenAddr::Tcp(hostport) => assert!(!hostport.ends_with(":0"), "{resolved}"),
            other => panic!("expected tcp, got {other:?}"),
        }
        drop(listener);
    }

    /// The heart of the daemon acceptance: two clients in sequence over
    /// one warm daemon — the second client's repeat batch reports **0
    /// distinct evaluations** and a bit-identical front, and a shutdown
    /// frame drains the daemon cleanly.
    #[test]
    fn warm_daemon_answers_a_repeat_batch_from_cache() {
        let addr = scratch_addr("daemon");
        let mut options = ServeOptions::new(addr.clone());
        options.threads = 1;
        options.grace = Duration::from_secs(10);
        let daemon = std::thread::spawn(move || serve(options));

        let jobs = parse_jobs(
            r#"[{"wstore": 8192, "precision": "int8", "population": 10, "generations": 4, "seed": 5},
                {"wstore": 8192, "precision": "int4", "population": 10, "generations": 4, "seed": 6}]"#,
            &Nsga2Config::default(),
        )
        .unwrap();
        let cold = run_batch_connected(&addr, &jobs, false).expect("first client");
        assert_eq!(cold.outcomes.len(), 2);
        assert!(cold.distinct_evaluations > 0);
        assert_eq!(cold.backend, "daemon");
        assert_eq!(
            cold.distinct_evaluations + cold.cache_hits,
            cold.evaluations,
            "accounting must partition exactly"
        );

        // Local reference: the daemon's front must be bit-identical to
        // an in-process run of the same jobs.
        let local = crate::batch::run_batch(
            &jobs,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            PipelineOptions::default(),
        );
        for (remote, reference) in cold.outcomes.iter().zip(&local.outcomes) {
            assert_eq!(
                remote.result.objective_matrix(),
                reference.result.objective_matrix(),
                "daemon front diverged from the in-process reference"
            );
        }

        // Second client, same jobs, warm daemon: zero distinct
        // evaluations, identical front — then drain.
        let warm = run_batch_connected(&addr, &jobs, true).expect("second client");
        assert_eq!(
            warm.distinct_evaluations, 0,
            "warm daemon must serve from cache"
        );
        assert_eq!(warm.evaluations, cold.evaluations);
        for (w, c) in warm.outcomes.iter().zip(&cold.outcomes) {
            assert_eq!(w.result.objective_matrix(), c.result.objective_matrix());
        }

        let report = daemon.join().expect("daemon thread").expect("daemon exit");
        assert_eq!(report.connections, 2);
        assert_eq!(report.jobs, 4);
        assert!(report.drained_clean, "{report:?}");
        assert!(report.cache_entries > 0);
    }

    #[test]
    fn silent_peers_are_dropped_at_the_hello_deadline() {
        let addr = scratch_addr("hello");
        let mut options = ServeOptions::new(addr.clone());
        options.threads = 1;
        options.hello_deadline = Duration::from_millis(100);
        let daemon = std::thread::spawn(move || serve(options));

        // A peer that connects and never speaks: the daemon must cut it
        // loose at the deadline, not wait forever.
        let mute = connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
        std::thread::sleep(Duration::from_millis(400));
        drop(mute);

        // The daemon is still serving: a real client gets through, then
        // drains it.
        let jobs = parse_jobs(
            r#"[{"wstore": 8192, "precision": "int8", "population": 8, "generations": 2, "seed": 1}]"#,
            &Nsga2Config::default(),
        )
        .unwrap();
        let report = run_batch_connected(&addr, &jobs, true).expect("client after mute peer");
        assert_eq!(report.outcomes.len(), 1);
        let served = daemon.join().expect("daemon thread").expect("daemon exit");
        assert_eq!(served.hello_timeouts, 1, "{served:?}");
        assert_eq!(served.jobs, 1);
    }

    #[test]
    fn client_disconnect_mid_job_leaves_the_cache_delta() {
        let addr = scratch_addr("gone");
        let mut options = ServeOptions::new(addr.clone());
        options.threads = 1;
        let daemon = std::thread::spawn(move || serve(options));

        // Hand-rolled client: hello, submit a job, vanish immediately.
        let writer = connect_with_retry(&addr, Duration::from_secs(5)).expect("connect");
        let mut reader = BufReader::new(writer.try_clone().unwrap());
        let mut writer = writer;
        frame::send(&mut writer, &Message::Hello(Hello::client())).unwrap();
        assert!(matches!(
            frame::recv(&mut reader).unwrap(),
            Message::Hello(_)
        ));
        frame::send(
            &mut writer,
            &Message::JobRequest(JobRequest {
                id: 1,
                wstore: 8192,
                precision: "int8".to_owned(),
                population: 10,
                generations: 3,
                seed: 9,
            }),
        )
        .unwrap();
        writer.disconnect();
        drop((reader, writer));

        // A well-behaved client repeating the job finds it fully warm:
        // the abandoned job ran to completion and kept its delta.
        let jobs = parse_jobs(
            r#"[{"wstore": 8192, "precision": "int8", "population": 10, "generations": 3, "seed": 9}]"#,
            &Nsga2Config::default(),
        )
        .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        let warm = loop {
            let report = run_batch_connected(&addr, &jobs, false).expect("repeat client");
            if report.distinct_evaluations == 0 || Instant::now() >= deadline {
                break report;
            }
            std::thread::sleep(Duration::from_millis(50));
        };
        assert_eq!(
            warm.distinct_evaluations, 0,
            "the abandoned job's estimates must already be cached"
        );
        let _ = run_batch_connected(&addr, &[], true).expect("drain");
        let served = daemon.join().expect("daemon thread").expect("daemon exit");
        assert!(served.jobs >= 2, "{served:?}");
    }

    #[test]
    fn cache_file_round_trips_through_a_drain() {
        let dir = std::env::temp_dir().join(format!("sega-serve-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_path = dir.join("daemon-cache.bin");
        let _ = std::fs::remove_file(&cache_path);
        let jobs = parse_jobs(
            r#"[{"wstore": 8192, "precision": "int8", "population": 8, "generations": 2, "seed": 3}]"#,
            &Nsga2Config::default(),
        )
        .unwrap();

        // First daemon lifetime: run a job, drain, flush the snapshot.
        let addr = scratch_addr("flush");
        let mut options = ServeOptions::new(addr.clone());
        options.threads = 1;
        options.cache_file = Some(cache_path.clone());
        let daemon = std::thread::spawn(move || serve(options));
        let cold = run_batch_connected(&addr, &jobs, true).expect("cold client");
        assert!(cold.distinct_evaluations > 0);
        let report = daemon.join().unwrap().expect("daemon exit");
        assert!(report.cache_entries > 0);
        assert!(cache_path.is_file(), "drain must flush the snapshot");

        // Second daemon lifetime warm-starts from the flushed snapshot:
        // the same batch is served entirely from cache.
        let addr = scratch_addr("flush2");
        let mut options = ServeOptions::new(addr.clone());
        options.threads = 1;
        options.cache_file = Some(cache_path.clone());
        let daemon = std::thread::spawn(move || serve(options));
        let warm = run_batch_connected(&addr, &jobs, true).expect("warm client");
        assert_eq!(warm.distinct_evaluations, 0);
        daemon.join().unwrap().expect("daemon exit");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
