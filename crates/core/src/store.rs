//! The persistent cache store: where a [`Snapshot`] lives between
//! processes.
//!
//! Two layouts behind one [`CacheStore`]:
//!
//! * **Single file** (`--cache-file`, [`CacheStore::file`]) — the
//!   original whole-snapshot blob, byte-compatible with every earlier
//!   release: JSON when the path ends in `.json`, the compact binary
//!   codec otherwise. Loading is all-or-nothing; saving rewrites the
//!   file. This is exactly the degenerate one-segment case of the layout
//!   below.
//! * **Segment directory** (`--cache-dir`, [`CacheStore::dir`]) — an
//!   append-only directory of fingerprinted segments `seg-NNNNNNNN.seg`,
//!   each holding one canonical snapshot *delta*. A save appends only
//!   what changed since load (via [`Snapshot::diff`]) and `fsync`s the
//!   new segment — crash-safe by the same torn-write discipline as the
//!   checkpoint journal: a segment is two length-prefixed frames
//!   (fingerprinted header, then payload), and a torn or corrupt
//!   **trailing** segment is skipped with a warning on the next load
//!   instead of aborting the run. Because segments union-merge under the
//!   proven commutative/idempotent [`Snapshot::merge`] laws, load order,
//!   duplication between segments, and a compaction racing a crash all
//!   converge to the same facts.
//!
//! When the directory grows past its [`max_segments`](CacheStore::dir)
//! budget, a save **compacts**: the full current snapshot is written as
//! one new segment (fsync'd first), then the older segments are deleted
//! — a crash between the two steps leaves a superset, never a loss.
//!
//! The segment header lists each key space's fingerprint, so a load can
//! be **partial**: give [`CacheStore::load_filtered`] the fingerprints
//! of the key spaces a job list touches and segments containing none of
//! them are skipped without even reading their payload frame.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use sega_wire::frame::{read_frame, write_frame, FrameError};
use sega_wire::snapshot::fnv1a64;
use sega_wire::{Reader, Snapshot, WireError, Writer};

use crate::batch::{decode_cache_file, encode_cache_file};

/// Default compaction budget: how many segments may accumulate before a
/// save folds them into one.
pub const DEFAULT_MAX_SEGMENTS: usize = 8;

/// Document kind tag of a segment's header frame.
const SEGMENT_KIND: &str = "cache-segment";

/// Store traffic accounting, surfaced in the batch report's `"cache"`
/// object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live segments after the last operation (1 for a single file).
    pub segments: usize,
    /// Segments whose payload was decoded and merged by the last load.
    pub segments_loaded: usize,
    /// Torn/corrupt trailing segments skipped with a warning.
    pub segments_skipped: usize,
    /// Segments the partial-load filter rejected without reading their
    /// payload frame.
    pub segments_filtered: usize,
    /// Entries the last load yielded.
    pub entries_loaded: usize,
    /// Delta segments appended by saves.
    pub segments_appended: usize,
    /// Compactions performed by saves.
    pub compactions: usize,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

/// What a load produced: the merged snapshot plus any warnings about
/// segments it skipped (the caller decides where to print them).
#[derive(Debug, Default)]
pub struct LoadOutcome {
    /// The union of every readable segment (post-filter).
    pub snapshot: Snapshot,
    /// Human-readable warnings, one per skipped segment.
    pub warnings: Vec<String>,
}

/// A persistent home for cache snapshots — single file or segment
/// directory; see the module docs for the layouts.
#[derive(Debug)]
pub enum CacheStore {
    /// The classic whole-snapshot `--cache-file` blob.
    File {
        /// The snapshot file path.
        path: PathBuf,
        /// Traffic accounting.
        stats: StoreStats,
        /// Key spaces a filtered load left out of the returned snapshot.
        /// A save unions them back so a partial load never makes the
        /// whole-file rewrite lossy.
        residue: Snapshot,
    },
    /// The append-only `--cache-dir` segment directory.
    Dir(SegmentDir),
}

/// The segment-directory state: the path, the compaction budget, and
/// the loaded baseline a save diffs against.
#[derive(Debug)]
pub struct SegmentDir {
    dir: PathBuf,
    max_segments: usize,
    /// Next sequence number a save will use.
    next_seq: u64,
    /// What load() yielded **before** filtering, as the delta baseline —
    /// a save appends `current.diff(base)`.
    base: Snapshot,
    /// Sequence numbers of segments currently on disk.
    live: Vec<u64>,
    /// Segments the partial-load filter skipped without reading their
    /// payload. Their facts are absent from `base` and from the caller's
    /// snapshot, so a compaction must fold them back in before deleting.
    unread: Vec<u64>,
    stats: StoreStats,
}

impl CacheStore {
    /// A single-file store at `path` (created on first save).
    pub fn file(path: impl Into<PathBuf>) -> CacheStore {
        CacheStore::File {
            path: path.into(),
            stats: StoreStats::default(),
            residue: Snapshot::default(),
        }
    }

    /// A segment-directory store at `dir` (created if absent) with the
    /// given compaction budget (`0` is treated as 1).
    ///
    /// # Errors
    ///
    /// A human-readable message when the directory cannot be created.
    pub fn dir(dir: impl Into<PathBuf>, max_segments: usize) -> Result<CacheStore, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
        Ok(CacheStore::Dir(SegmentDir {
            dir,
            max_segments: max_segments.max(1),
            next_seq: 0,
            base: Snapshot::default(),
            live: Vec::new(),
            unread: Vec::new(),
            stats: StoreStats::default(),
        }))
    }

    /// `true` for the append-only segment-directory layout — the layout
    /// whose saves are cheap deltas rather than whole-file rewrites.
    pub fn is_segmented(&self) -> bool {
        matches!(self, CacheStore::Dir(_))
    }

    /// The store's path, for log lines.
    pub fn path(&self) -> &Path {
        match self {
            CacheStore::File { path, .. } => path,
            CacheStore::Dir(seg) => &seg.dir,
        }
    }

    /// Traffic accounting so far.
    pub fn stats(&self) -> StoreStats {
        match self {
            CacheStore::File { stats, .. } => *stats,
            CacheStore::Dir(seg) => seg.stats,
        }
    }

    /// Loads everything the store holds. A missing file/empty directory
    /// is an empty snapshot, not an error.
    ///
    /// # Errors
    ///
    /// A message naming the path, byte offset and segment fingerprint of
    /// the first unreadable piece (a torn **trailing** segment is
    /// downgraded to a [`LoadOutcome::warnings`] entry instead).
    pub fn load(&mut self) -> Result<LoadOutcome, String> {
        self.load_filtered(None)
    }

    /// [`CacheStore::load`], keeping only key spaces whose fingerprints
    /// appear in `keep` (`None` keeps everything). On a segment
    /// directory, segments containing none of the wanted spaces are
    /// skipped without reading their payload frame.
    pub fn load_filtered(&mut self, keep: Option<&HashSet<u64>>) -> Result<LoadOutcome, String> {
        match self {
            CacheStore::File {
                path,
                stats,
                residue,
            } => {
                let mut outcome = LoadOutcome::default();
                let bytes = match std::fs::read(&*path) {
                    Ok(bytes) => bytes,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(outcome),
                    Err(e) => {
                        return Err(format!("cannot read cache file `{}`: {e}", path.display()))
                    }
                };
                stats.bytes_read += bytes.len() as u64;
                stats.segments = 1;
                stats.segments_loaded = 1;
                let mut snapshot = decode_cache_file(&bytes).map_err(|e| {
                    format!(
                        "cache file `{}` (content fingerprint {:016x}): {e}",
                        path.display(),
                        fnv1a64(&bytes)
                    )
                })?;
                if let Some(keep) = keep {
                    // Hold back the spaces the caller does not want; a
                    // save unions them into the rewrite so the file
                    // never loses facts to a partial load.
                    *residue = Snapshot::default();
                    residue.spaces.extend(
                        snapshot
                            .spaces
                            .iter()
                            .filter(|s| !keep.contains(&s.key.fingerprint()))
                            .cloned(),
                    );
                    residue.canonicalize();
                    snapshot
                        .spaces
                        .retain(|s| keep.contains(&s.key.fingerprint()));
                }
                stats.entries_loaded = snapshot.len();
                outcome.snapshot = snapshot;
                Ok(outcome)
            }
            CacheStore::Dir(seg) => seg.load_filtered(keep),
        }
    }

    /// Persists `current`: a single file is rewritten whole; a segment
    /// directory appends only the delta since load and compacts past its
    /// budget. A no-op when nothing changed and no compaction is due.
    ///
    /// # Errors
    ///
    /// A human-readable I/O message.
    pub fn save(&mut self, current: &Snapshot) -> Result<(), String> {
        match self {
            CacheStore::File {
                path,
                stats,
                residue,
            } => {
                let bytes = if residue.is_empty() {
                    encode_cache_file(current, path)
                } else {
                    let mut full = residue.clone();
                    full.merge(current);
                    encode_cache_file(&full, path)
                };
                std::fs::write(&*path, &bytes)
                    .map_err(|e| format!("cannot write cache file `{}`: {e}", path.display()))?;
                stats.bytes_written += bytes.len() as u64;
                stats.segments = 1;
                Ok(())
            }
            CacheStore::Dir(seg) => seg.save(current),
        }
    }
}

impl SegmentDir {
    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("seg-{seq:08}.seg"))
    }

    /// Every `seg-NNNNNNNN.seg` in the directory, ascending by sequence
    /// number. Foreign files are ignored.
    fn scan(&self) -> Result<Vec<u64>, String> {
        let mut seqs = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot read cache dir `{}`: {e}", self.dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cache dir `{}`: {e}", self.dir.display()))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|rest| rest.strip_suffix(".seg"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn load_filtered(&mut self, keep: Option<&HashSet<u64>>) -> Result<LoadOutcome, String> {
        let seqs = self.scan()?;
        self.next_seq = seqs.last().map_or(0, |last| last + 1);
        self.live = seqs.clone();
        self.unread.clear();
        self.stats.segments = seqs.len();
        let mut outcome = LoadOutcome::default();
        let mut base = Snapshot::default();
        for (i, &seq) in seqs.iter().enumerate() {
            let trailing = i + 1 == seqs.len();
            let path = self.segment_path(seq);
            match read_segment(&path, keep) {
                Ok(ReadSegment {
                    snapshot: Some(snapshot),
                    bytes_read,
                    ..
                }) => {
                    self.stats.bytes_read += bytes_read;
                    self.stats.segments_loaded += 1;
                    base.merge(&snapshot);
                    outcome.snapshot.merge(&snapshot);
                }
                Ok(ReadSegment {
                    snapshot: None,
                    bytes_read,
                    ..
                }) => {
                    // The filter proved nothing wanted lives here; the
                    // payload frame was never read. Remember the
                    // sequence number: these facts are in no in-memory
                    // snapshot, so a compaction must read and fold them
                    // back in before it deletes the segment.
                    self.stats.bytes_read += bytes_read;
                    self.stats.segments_filtered += 1;
                    self.unread.push(seq);
                }
                Err(message) if trailing => {
                    self.stats.segments_skipped += 1;
                    // Drop the unreadable tail from the live set so a
                    // later compaction deletes it.
                    outcome
                        .warnings
                        .push(format!("skipping torn trailing {message}"));
                }
                Err(message) => return Err(message),
            }
        }
        self.stats.entries_loaded = outcome.snapshot.len();
        self.base = base;
        Ok(outcome)
    }

    fn save(&mut self, current: &Snapshot) -> Result<(), String> {
        let delta = current.diff(&self.base);
        if !delta.is_empty() {
            let seq = self.next_seq;
            self.stats.bytes_written += write_segment(&self.segment_path(seq), seq, &delta)?;
            self.next_seq += 1;
            self.live.push(seq);
            self.stats.segments_appended += 1;
            self.stats.segments = self.live.len();
            self.base = current.clone();
        }
        if self.live.len() > self.max_segments {
            self.compact(current)?;
        }
        Ok(())
    }

    /// Folds every live segment into one holding the full on-disk union:
    /// the replacement is written and fsync'd **before** the old segments
    /// are deleted, so a crash in between leaves a superset of the facts,
    /// never a loss. Segments a partial load skipped are read here first
    /// — their facts live nowhere else.
    fn compact(&mut self, current: &Snapshot) -> Result<(), String> {
        let mut full = current.clone();
        for &skipped in &self.unread {
            let path = self.segment_path(skipped);
            let read = read_segment(&path, None)?;
            self.stats.bytes_read += read.bytes_read;
            if let Some(snapshot) = &read.snapshot {
                full.merge(snapshot);
            }
        }
        let seq = self.next_seq;
        self.stats.bytes_written += write_segment(&self.segment_path(seq), seq, &full)?;
        self.next_seq += 1;
        for &old in &self.live {
            let path = self.segment_path(old);
            std::fs::remove_file(&path).map_err(|e| {
                format!("cannot remove compacted segment `{}`: {e}", path.display())
            })?;
        }
        self.live = vec![seq];
        self.unread.clear();
        self.base = full;
        self.stats.compactions += 1;
        self.stats.segments = 1;
        Ok(())
    }
}

/// One parsed segment header: the payload fingerprint and the `(space
/// fingerprint, entry count)` directory that powers partial load. (The
/// header also carries its sequence number on disk; readers trust the
/// filename, so it is skipped on decode.)
#[derive(Debug)]
struct SegmentHeader {
    payload_fingerprint: u64,
    spaces: Vec<(u64, u64)>,
}

struct ReadSegment {
    /// `None` when the filter skipped the payload frame.
    snapshot: Option<Snapshot>,
    bytes_read: u64,
}

fn write_segment(path: &Path, seq: u64, snapshot: &Snapshot) -> Result<u64, String> {
    let payload = snapshot.encode_binary();
    let mut header = Writer::with_header();
    header.put_str(SEGMENT_KIND);
    header.put_u64(seq);
    header.put_u64(fnv1a64(&payload));
    header.put_u32(snapshot.spaces.len() as u32);
    for space in &snapshot.spaces {
        header.put_u64(space.key.fingerprint());
        header.put_u64(space.entries.len() as u64);
    }
    let header = header.finish();
    let mut file = std::fs::File::create(path)
        .map_err(|e| format!("cannot create cache segment `{}`: {e}", path.display()))?;
    write_frame(&mut file, &header)
        .and_then(|()| write_frame(&mut file, &payload))
        .map_err(|e| format!("cache segment `{}` write: {e}", path.display()))?;
    file.sync_data()
        .map_err(|e| format!("cache segment `{}` sync: {e}", path.display()))?;
    Ok((header.len() + payload.len() + 8) as u64)
}

/// Reads one segment, skipping the payload frame when `keep` proves the
/// segment holds no wanted space. Errors name the path, the byte offset
/// where decoding stopped, and the header's payload fingerprint when it
/// was readable.
fn read_segment(path: &Path, keep: Option<&HashSet<u64>>) -> Result<ReadSegment, String> {
    let mut file = std::fs::File::open(path)
        .map_err(|e| format!("cache segment `{}`: {e}", path.display()))?;
    let header_frame =
        read_frame(&mut file).map_err(|e| describe_frame_error(path, 0, None, &e))?;
    // Byte layout: [u32 len][header doc][u32 len][payload doc].
    let header_end = 4 + header_frame.len() as u64;
    let header = parse_header(&header_frame).map_err(|e| describe_wire_error(path, 4, None, &e))?;
    let fingerprint = Some(header.payload_fingerprint);
    let wanted =
        keep.is_none_or(|keep| header.spaces.iter().any(|(space, _)| keep.contains(space)));
    if !wanted {
        return Ok(ReadSegment {
            snapshot: None,
            bytes_read: header_end,
        });
    }
    let payload = read_frame(&mut file)
        .map_err(|e| describe_frame_error(path, header_end, fingerprint, &e))?;
    let payload_start = header_end + 4;
    if fnv1a64(&payload) != header.payload_fingerprint {
        return Err(format!(
            "cache segment `{}` (fingerprint {:016x}): payload fingerprint mismatch (found {:016x})",
            path.display(),
            header.payload_fingerprint,
            fnv1a64(&payload)
        ));
    }
    let snapshot = Snapshot::decode_binary(&payload)
        .map_err(|e| describe_wire_error(path, payload_start, fingerprint, &e))?;
    Ok(ReadSegment {
        snapshot: Some(snapshot),
        bytes_read: payload_start + payload.len() as u64,
    })
}

fn parse_header(bytes: &[u8]) -> Result<SegmentHeader, WireError> {
    let mut r = Reader::open(bytes)?;
    let kind = r.take_str()?;
    if kind != SEGMENT_KIND {
        return Err(WireError::Malformed(format!(
            "expected a {SEGMENT_KIND} document, found `{kind}`"
        )));
    }
    let _seq = r.take_u64()?;
    let payload_fingerprint = r.take_u64()?;
    let space_count = r.take_u32()? as usize;
    let mut spaces = Vec::with_capacity(space_count.min(1 << 16));
    for _ in 0..space_count {
        let fingerprint = r.take_u64()?;
        let entries = r.take_u64()?;
        spaces.push((fingerprint, entries));
    }
    Ok(SegmentHeader {
        payload_fingerprint,
        spaces,
    })
}

fn describe_fingerprint(fingerprint: Option<u64>) -> String {
    fingerprint.map_or_else(
        || "header unread".to_owned(),
        |f| format!("fingerprint {f:016x}"),
    )
}

fn describe_frame_error(
    path: &Path,
    offset: u64,
    fingerprint: Option<u64>,
    e: &FrameError,
) -> String {
    let cause = match e {
        FrameError::Eof => "file ends before the frame".to_owned(),
        other => other.to_string(),
    };
    format!(
        "cache segment `{}` ({}) at byte offset {offset}: {cause}",
        path.display(),
        describe_fingerprint(fingerprint)
    )
}

fn describe_wire_error(
    path: &Path,
    frame_start: u64,
    fingerprint: Option<u64>,
    e: &WireError,
) -> String {
    let at = match e {
        WireError::Truncated { offset } => frame_start + *offset as u64,
        _ => frame_start,
    };
    format!(
        "cache segment `{}` ({}) at byte offset {at}: {e}",
        path.display(),
        describe_fingerprint(fingerprint)
    )
}

/// Reads only a segment's header directory — `(space fingerprint,
/// entry count)` pairs — without touching the payload frame. Used by
/// tooling and tests; load goes through [`CacheStore::load_filtered`].
pub fn read_segment_directory(path: &Path) -> Result<Vec<(u64, u64)>, String> {
    let mut file = std::fs::File::open(path)
        .map_err(|e| format!("cache segment `{}`: {e}", path.display()))?;
    let header_frame =
        read_frame(&mut file).map_err(|e| describe_frame_error(path, 0, None, &e))?;
    let header = parse_header(&header_frame).map_err(|e| describe_wire_error(path, 4, None, &e))?;
    Ok(header.spaces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_wire::snapshot::{EntryRecord, GeometryRecord, KeyRecord, SpaceRecord};

    fn key(wstore: u64) -> KeyRecord {
        KeyRecord {
            tech_name: "tsmc28-calibrated".to_owned(),
            node_bits: 28.0f64.to_bits(),
            gate_area_bits: 0.18f64.to_bits(),
            gate_delay_bits: 0.008f64.to_bits(),
            gate_energy_bits: 0.4f64.to_bits(),
            nominal_voltage_bits: 0.9f64.to_bits(),
            voltage_bits: 0.9f64.to_bits(),
            sparsity_bits: 0.1f64.to_bits(),
            activity_bits: 0.1f64.to_bits(),
            precision: "INT8".to_owned(),
            wstore,
        }
    }

    fn snapshot(wstore: u64, range: std::ops::Range<u32>) -> Snapshot {
        let mut s = Snapshot {
            spaces: vec![SpaceRecord {
                key: key(wstore),
                entries: range
                    .map(|i| EntryRecord {
                        geometry: GeometryRecord {
                            log_h: i,
                            log_l: 0,
                            k: 1,
                        },
                        objectives: [i as f64, 1.0, 2.0, -3.0],
                    })
                    .collect(),
            }],
        };
        s.canonicalize();
        s
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sega-store-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_store_round_trips_and_reports_missing_as_empty() {
        let dir = tempdir("file");
        let path = dir.join("warm.bin");
        let mut store = CacheStore::file(&path);
        assert!(store.load().unwrap().snapshot.is_empty());
        let s = snapshot(8192, 0..10);
        store.save(&s).unwrap();
        let mut again = CacheStore::file(&path);
        assert_eq!(again.load().unwrap().snapshot, s);
        assert_eq!(again.stats().segments, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_errors_name_path_offset_and_fingerprint() {
        let dir = tempdir("file-err");
        let path = dir.join("warm.bin");
        let mut bytes = snapshot(8192, 0..10).encode_binary();
        bytes.truncate(bytes.len() - 7);
        std::fs::write(&path, &bytes).unwrap();
        let err = CacheStore::file(&path).load().unwrap_err();
        assert!(err.contains("warm.bin"), "{err}");
        assert!(err.contains("fingerprint"), "{err}");
        assert!(err.contains("offset"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_appends_deltas_and_loads_their_union() {
        let dir = tempdir("dir");
        let mut store = CacheStore::dir(&dir, 8).unwrap();
        assert!(store.load().unwrap().snapshot.is_empty());
        let first = snapshot(8192, 0..5);
        store.save(&first).unwrap();
        let mut grown = first.clone();
        grown.merge(&snapshot(8192, 5..9));
        store.save(&grown).unwrap();
        // Saving the same snapshot again appends nothing.
        store.save(&grown).unwrap();
        assert_eq!(store.stats().segments_appended, 2);
        assert_eq!(store.stats().segments, 2);
        let mut again = CacheStore::dir(&dir, 8).unwrap();
        assert_eq!(again.load().unwrap().snapshot, grown);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_store_compacts_past_its_budget() {
        let dir = tempdir("compact");
        let mut store = CacheStore::dir(&dir, 2).unwrap();
        store.load().unwrap();
        let mut acc = Snapshot::default();
        for i in 0..4u32 {
            acc.merge(&snapshot(8192, i * 3..i * 3 + 3));
            store.save(&acc).unwrap();
        }
        assert!(store.stats().compactions >= 1, "{:?}", store.stats());
        assert!(
            store.stats().segments <= 2,
            "budget must bound growth: {:?}",
            store.stats()
        );
        let mut again = CacheStore::dir(&dir, 2).unwrap();
        let loaded = again.load().unwrap();
        assert_eq!(loaded.snapshot, acc);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_trailing_segment_is_skipped_with_a_warning() {
        let dir = tempdir("torn");
        let mut store = CacheStore::dir(&dir, 8).unwrap();
        store.load().unwrap();
        let first = snapshot(8192, 0..5);
        store.save(&first).unwrap();
        let mut grown = first.clone();
        grown.merge(&snapshot(8192, 5..9));
        store.save(&grown).unwrap();
        // Tear the trailing segment mid-payload.
        let tail = dir.join("seg-00000001.seg");
        let bytes = std::fs::read(&tail).unwrap();
        std::fs::write(&tail, &bytes[..bytes.len() - 9]).unwrap();
        let mut again = CacheStore::dir(&dir, 8).unwrap();
        let outcome = again.load().unwrap();
        assert_eq!(outcome.snapshot, first, "prefix survives the torn tail");
        assert_eq!(outcome.warnings.len(), 1);
        let warning = &outcome.warnings[0];
        assert!(warning.contains("seg-00000001.seg"), "{warning}");
        assert!(warning.contains("offset"), "{warning}");
        // A corrupt *non*-trailing segment is a hard, descriptive error.
        let mut more = grown.clone();
        more.merge(&snapshot(8192, 9..12));
        again.save(&more).unwrap();
        let err = CacheStore::dir(&dir, 8).unwrap().load().unwrap_err();
        assert!(err.contains("seg-00000001.seg"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partial_load_skips_unwanted_segments_without_their_payload() {
        let dir = tempdir("filter");
        let mut store = CacheStore::dir(&dir, 8).unwrap();
        store.load().unwrap();
        store.save(&snapshot(8192, 0..5)).unwrap();
        let mut both = snapshot(8192, 0..5);
        both.merge(&snapshot(16384, 0..4));
        // Separate segment holding only the 16384 space.
        store.save(&both).unwrap();
        let want: HashSet<u64> = [key(16384).fingerprint()].into_iter().collect();
        let mut filtered = CacheStore::dir(&dir, 8).unwrap();
        let outcome = filtered.load_filtered(Some(&want)).unwrap();
        assert_eq!(outcome.snapshot, snapshot(16384, 0..4));
        assert_eq!(filtered.stats().segments_filtered, 1);
        assert_eq!(filtered.stats().segments_loaded, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_directory_reads_without_payload() {
        let dir = tempdir("directory");
        let mut store = CacheStore::dir(&dir, 8).unwrap();
        store.load().unwrap();
        store.save(&snapshot(8192, 0..5)).unwrap();
        let spaces = read_segment_directory(&dir.join("seg-00000000.seg")).unwrap();
        assert_eq!(spaces, vec![(key(8192).fingerprint(), 5)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
