//! The MOGA-based design space explorer (paper §III-B).
//!
//! The genome is the array geometry `(log2 H, log2 L, k)`; the column count
//! `N = Wstore·Bw / (H·L)` is *derived*, which keeps every individual on
//! the capacity manifold `N·H·L/Bw = Wstore` by construction (Equations
//! 2/3's equality constraint). A repair operator clamps the genome into the
//! paper's exploration bounds (`N ≥ 4·Bw`, `L ≤ 64`, `H ≤ 2048`,
//! `1 ≤ k ≤ Bx`), and NSGA-II evolves the four objectives
//! `[area, delay, energy, −throughput]`.
//!
//! # The batched evaluation pipeline
//!
//! [`Nsga2`] breeds each generation completely before evaluating it and
//! hands the cohort to [`Problem::evaluate_batch`]. [`DcimProblem`]'s
//! implementation dedups the cohort, serves repeats from a sharded
//! [`SharedEvalCache`] key space — the discrete `(log2 H, log2 L, k)`
//! space has only a few hundred feasible points, so after the first few
//! generations almost every genome the GA proposes has already been
//! estimated — and hands the remaining misses as one cohort to the bound
//! [`EvalBackend`] (the in-process macro model by default), which fans
//! them out on a persistent [`sega_parallel::Pool`] (workers spawned once
//! per process, never per batch). The knobs live in [`PipelineOptions`];
//! none of them changes the result, only how fast it arrives (the
//! exploration is bit-identical for every pool width, shard count, cache
//! configuration and backend choice).

use std::sync::{Arc, Mutex};

use rand::Rng;

use sega_cells::Technology;
use sega_estimator::{DcimDesign, EstimatorStats, MacroEstimate, OperatingConditions};
use sega_moga::{
    DominanceStats, DriverPhase, DriverState, Nsga2Config, Nsga2Driver, Nsga2Result,
    ObjectiveMatrix, Problem, SpeculationStats,
};
use sega_parallel::{resolve_threads, Pool};

use crate::backend::{default_backend, CohortEvaluator, EvalBackend, EvalTicket, GeometryLens};
use crate::cache::{CacheKey, EvalStats, FxHashMap, KeySpace, SharedEvalCache};
use crate::spec::UserSpec;

/// How [`DcimProblem`] schedules and memoizes objective evaluations.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Concurrent evaluation participants: `0` = all hardware threads,
    /// `1` = fully serial.
    pub threads: usize,
    /// Memoize per-geometry estimates, so each distinct geometry is
    /// estimated exactly once per cache lifetime. (Even with this off,
    /// duplicate genomes *within one cohort* reach the estimator once —
    /// intra-batch dedup is unconditional.)
    pub cache: bool,
    /// Minimum batch items per worker before evaluation fans out
    /// (default 64; `0` is treated as 1, i.e. always fan out).
    ///
    /// The closed-form estimator costs tens of nanoseconds, so scattering
    /// a small miss list across threads loses to cross-thread traffic;
    /// once a batch carries real work per worker (large uncached cohorts,
    /// or a future expensive estimator backend feeding through the same
    /// seam) the fan-out pays. The default keeps the default explore
    /// budget (batches of ~100, nearly all cache hits after the first
    /// generations) on the fast serial path; tests and benches force it
    /// to 1 to genuinely exercise the multi-worker merge.
    pub min_batch_per_worker: usize,
    /// The persistent worker pool evaluation batches run on. `None`
    /// (default) resolves to the process-wide cached pool of the
    /// requested width ([`Pool::for_threads`]) — **no configuration ever
    /// spawns threads per batch**; set an explicit pool to isolate an
    /// exploration on dedicated workers.
    pub pool: Option<Arc<Pool>>,
    /// The estimate cache batches read and write. `None` (default) gives
    /// the problem a **private** cache, reproducing the per-exploration
    /// memoization of PR 1; set a [`SharedEvalCache`] to reuse estimates
    /// across explorations, sweep points and compiler runs (keyed by
    /// `(technology, conditions, precision, Wstore)`, so sharing can
    /// never alias unrelated estimates).
    pub shared_cache: Option<Arc<SharedEvalCache>>,
    /// Where objective vectors come from. `None` (default) resolves to
    /// the in-process [`MacroModelBackend`](crate::backend::MacroModelBackend);
    /// set a custom [`EvalBackend`] to swap the estimator implementation
    /// (the counting [`InstrumentedBackend`](crate::backend::InstrumentedBackend),
    /// a [`RemoteBackend`](crate::remote::RemoteBackend) worker fleet)
    /// without touching any caller. Every backend must be deterministic,
    /// so the choice can never change a front — only where and how fast
    /// estimates happen.
    pub backend: Option<Arc<dyn EvalBackend>>,
    /// Overlap evaluation with breeding: while a generation's cohort is
    /// in flight on the backend, breed the next generation against
    /// *predicted* rows (cache hits exact, misses pessimistically `+∞`)
    /// and reconcile when the true rows land — a mispredict rewinds and
    /// re-breeds, so the committed trajectory is **bit-identical** to
    /// the synchronous loop for every prediction outcome (see
    /// [`Nsga2Driver::speculate`]). The bet is accounted in
    /// [`ExplorationResult::speculation`]. Off by default: it only pays
    /// when evaluation has real latency to hide (a remote fleet).
    pub speculate: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            threads: 0,
            cache: true,
            min_batch_per_worker: 64,
            pool: None,
            shared_cache: None,
            backend: None,
            speculate: false,
        }
    }
}

impl PipelineOptions {
    /// The pre-refactor behaviour: one evaluation at a time, nothing
    /// memoized. The baseline the pipeline benches compare against.
    pub fn serial_uncached() -> Self {
        PipelineOptions {
            threads: 1,
            cache: false,
            ..Default::default()
        }
    }

    /// Full pipeline restricted to `threads` workers (`0` = all).
    pub fn with_threads(threads: usize) -> Self {
        PipelineOptions {
            threads,
            ..Default::default()
        }
    }

    /// Runs evaluation batches on an explicit persistent [`Pool`].
    #[must_use]
    pub fn on_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Reads and writes estimates through `cache` instead of a private
    /// per-problem table.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<SharedEvalCache>) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Shorthand: share the process-wide [`SharedEvalCache::global`].
    #[must_use]
    pub fn shared(self) -> Self {
        let cache = SharedEvalCache::global();
        self.with_shared_cache(cache)
    }

    /// Sources objective vectors from `backend` instead of the default
    /// in-process macro model.
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn EvalBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Enables the speculative breed-ahead loop (see
    /// [`PipelineOptions::speculate`]).
    #[must_use]
    pub fn speculative(mut self) -> Self {
        self.speculate = true;
        self
    }
}

/// Worker count for a batch of `items` evaluations: the requested thread
/// budget, capped so every worker gets at least
/// [`PipelineOptions::min_batch_per_worker`] items.
fn batch_workers(pipeline: &PipelineOptions, items: usize) -> usize {
    resolve_threads(pipeline.threads)
        .min(items / pipeline.min_batch_per_worker.max(1))
        .max(1)
}

/// The pool a pipeline's batches run on: the explicit handle if one was
/// injected, else the process-wide cached pool of the requested width.
fn resolve_pool(pipeline: &PipelineOptions) -> Arc<Pool> {
    pipeline
        .pool
        .clone()
        .unwrap_or_else(|| Pool::for_threads(resolve_threads(pipeline.threads)))
}

/// The cache a pipeline's batches read/write: the injected shared cache,
/// else a fresh private one (PR 1 semantics).
fn resolve_cache(pipeline: &PipelineOptions) -> Arc<SharedEvalCache> {
    pipeline
        .shared_cache
        .clone()
        .unwrap_or_else(|| Arc::new(SharedEvalCache::new()))
}

/// The backend a pipeline's cohorts evaluate on: the injected one, else
/// the process-wide macro-model default.
fn resolve_backend(pipeline: &PipelineOptions) -> Arc<dyn EvalBackend> {
    pipeline.backend.clone().unwrap_or_else(default_backend)
}

/// The explorer's genome: array geometry with powers-of-two `H` and `L`.
/// (The derived ordering — `log_h`, then `log_l`, then `k` — is the
/// canonical entry order of cache snapshots.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Geometry {
    /// `log2 H` (column height).
    pub log_h: u32,
    /// `log2 L` (weights per compute unit).
    pub log_l: u32,
    /// Input bits per cycle.
    pub k: u32,
}

/// One Pareto-optimal solution: the design point and its estimate.
#[derive(Debug, Clone)]
pub struct ParetoSolution {
    /// The design point (architecture + parameters).
    pub design: DcimDesign,
    /// Its performance estimate.
    pub estimate: MacroEstimate,
}

impl ParetoSolution {
    /// The four objective values `[area, delay, energy, −throughput]`.
    pub fn objectives(&self) -> [f64; 4] {
        self.estimate.objectives()
    }
}

impl std::fmt::Display for ParetoSolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -> {}", self.design, self.estimate)
    }
}

/// The outcome of a design space exploration.
#[derive(Debug, Clone)]
pub struct ExplorationResult {
    /// The specification that was explored.
    pub spec: UserSpec,
    /// The Pareto frontier (non-dominated, deduplicated, sorted by area).
    pub solutions: Vec<ParetoSolution>,
    /// Genome evaluations the GA requested (population + population ×
    /// generations, independent of caching).
    pub evaluations: usize,
    /// Evaluations that actually reached the estimator. With the cache on
    /// this is the number of **distinct** geometries visited — typically
    /// 20–60× smaller than [`evaluations`](Self::evaluations) at the
    /// default budget.
    pub distinct_evaluations: usize,
    /// Evaluations served without reaching the estimator — cache hits,
    /// intra-batch duplicates, and GA-interned genomes
    /// (`evaluations = distinct_evaluations + cache_hits`).
    pub cache_hits: usize,
    /// The subset of [`cache_hits`](Self::cache_hits) resolved by the
    /// GA's genome-interning layer before the cohort ever reached the
    /// problem's cache.
    pub interned: usize,
    /// Dominance-kernel counters of the run's selection sorts (also
    /// folded into the problem's [`EvalStats`]).
    pub dominance: DominanceStats,
    /// Estimator-kernel counters of the run's cohort evaluations:
    /// designs estimated and how many lanes went through the vector
    /// finish vs the scalar block.
    pub estimator: EstimatorStats,
    /// The speculative loop's ledger (all zero unless
    /// [`PipelineOptions::speculate`] was on):
    /// `speculated == confirmed + rebred` always holds, and the front is
    /// bit-identical to the synchronous loop either way.
    pub speculation: SpeculationStats,
}

impl ExplorationResult {
    /// Convenience: the objective vectors of all solutions as one flat
    /// [`ObjectiveMatrix`].
    pub fn objective_matrix(&self) -> ObjectiveMatrix {
        let mut matrix = ObjectiveMatrix::with_capacity(4, self.solutions.len());
        for s in &self.solutions {
            matrix.push_row(&s.objectives());
        }
        matrix
    }

    /// The wire/report-boundary adapter: the objective vectors as nested
    /// rows (hot paths should stay on
    /// [`objective_matrix`](Self::objective_matrix)).
    pub fn objective_rows(&self) -> Vec<Vec<f64>> {
        self.objective_matrix().to_rows()
    }
}

/// The genome box derived from the specification's `ExplorerLimits`: the
/// bounds every genetic operator works within, precomputed once per
/// problem so mutation never proposes a point repair must immediately
/// undo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct GenomeBounds {
    min_log_h: u32,
    max_log_h: u32,
    max_log_l: u32,
}

/// The multi-objective problem NSGA-II evolves for one `(Wstore,
/// precision)` specification.
#[derive(Debug, Clone)]
pub struct DcimProblem {
    spec: UserSpec,
    tech: Technology,
    conditions: OperatingConditions,
    /// Genome → design conversion, hoisted once per problem.
    lens: GeometryLens,
    /// The bound estimator backend cohorts evaluate on (resolved once
    /// from `pipeline.backend`, macro model by default).
    evaluator: Arc<dyn CohortEvaluator>,
    /// Serial input width (`Bx` or `BM`): the upper bound of `k`.
    serial_bits: u32,
    /// Genome bounds derived from `spec.limits`.
    bounds: GenomeBounds,
    /// Scheduling/memoization knobs for batch evaluation.
    pipeline: PipelineOptions,
    /// The persistent pool batches fan out on (resolved from
    /// `pipeline.pool` / `pipeline.threads`, never spawned per batch).
    pool: Arc<Pool>,
    /// The backing cache (private unless `pipeline.shared_cache` is set).
    cache: Arc<SharedEvalCache>,
    /// This problem's key space within [`Self::cache`], resolved once.
    space: Arc<KeySpace>,
    /// Per-run accounting, shared across clones of this problem.
    stats: Arc<EvalStats>,
    /// Reusable batch working memory (dedup tables, miss lists), shared
    /// across clones so the steady-state batch path allocates nothing.
    batch_scratch: Arc<Mutex<BatchScratch>>,
}

/// Reusable working memory of [`DcimProblem::evaluate_batch_into`]: one
/// instance serves every generation of a run, so batch evaluation does
/// O(1) allocations instead of O(N).
#[derive(Debug, Default)]
struct BatchScratch {
    /// genome → index into `distinct` (intra-batch dedup).
    index_of: FxHashMap<Geometry, usize>,
    /// The batch's distinct geometries, in first-appearance order.
    distinct: Vec<Geometry>,
    /// For every input genome, its index into `distinct`.
    slots: Vec<usize>,
    /// Resolved objectives per distinct geometry.
    resolved: Vec<Option<[f64; 4]>>,
    /// Cache misses headed for the estimator backend.
    missing: Vec<Geometry>,
    /// `missing[i]`'s index into `distinct`.
    missing_slots: Vec<usize>,
}

/// One cohort between [`DcimProblem::begin_cohort`] and
/// [`DcimProblem::finish_cohort`]: the dedup tables, what the cache
/// already knew, and the [`EvalTicket`] for the misses in flight on the
/// backend. Owns its buffers (unlike the synchronous path's shared
/// [`BatchScratch`]) because it outlives the call that created it.
pub struct PendingCohort {
    /// Input genomes in the cohort (pre-dedup).
    total: usize,
    /// For every input genome, its index into the distinct list.
    slots: Vec<usize>,
    /// Cache-resolved objectives per distinct geometry (`None` = in
    /// flight on the backend).
    resolved: Vec<Option<[f64; 4]>>,
    /// The cache misses submitted to the backend.
    missing: Vec<Geometry>,
    /// `missing[i]`'s index into the distinct list.
    missing_slots: Vec<usize>,
    /// The backend's handle on the in-flight misses.
    ticket: Box<dyn EvalTicket>,
    /// Estimator counters at submit time, so `finish_cohort` records the
    /// same delta the synchronous path would.
    before: EstimatorStats,
}

impl PendingCohort {
    /// How many of the cohort's distinct geometries are cache misses
    /// still in flight.
    pub fn in_flight(&self) -> usize {
        self.missing.len()
    }
}

impl DcimProblem {
    /// Builds the problem for a specification under a technology and
    /// operating conditions, with the default [`PipelineOptions`]
    /// (cached privately, all hardware threads).
    pub fn new(spec: UserSpec, tech: Technology, conditions: OperatingConditions) -> Self {
        Self::with_options(spec, tech, conditions, PipelineOptions::default())
    }

    /// Builds the problem with explicit [`PipelineOptions`], resolving
    /// the pool, cache and key-space bindings exactly once.
    pub fn with_options(
        spec: UserSpec,
        tech: Technology,
        conditions: OperatingConditions,
        pipeline: PipelineOptions,
    ) -> Self {
        debug_assert!(spec.wstore.is_power_of_two(), "validated by UserSpec");
        let limits = &spec.limits;
        let pool = resolve_pool(&pipeline);
        let cache = resolve_cache(&pipeline);
        let space = cache.space(&CacheKey::new(
            &tech,
            &conditions,
            spec.precision,
            spec.wstore,
        ));
        let evaluator = resolve_backend(&pipeline).bind(&spec, &tech, &conditions);
        DcimProblem {
            lens: GeometryLens::new(&spec),
            evaluator,
            spec,
            tech,
            conditions,
            serial_bits: spec.precision.input_bits(),
            bounds: GenomeBounds {
                min_log_h: limits.min_h.next_power_of_two().trailing_zeros(),
                max_log_h: limits.max_h.trailing_zeros(),
                max_log_l: limits.max_l.trailing_zeros(),
            },
            pipeline,
            pool,
            cache,
            space,
            stats: Arc::new(EvalStats::default()),
            batch_scratch: Arc::new(Mutex::new(BatchScratch::default())),
        }
    }

    /// Overrides the evaluation pipeline configuration, re-resolving the
    /// pool and cache bindings. (Prefer [`DcimProblem::with_options`]
    /// when the options are known up front — it binds once.)
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineOptions) -> Self {
        self.pool = resolve_pool(&pipeline);
        self.cache = resolve_cache(&pipeline);
        self.space = self.cache.space(&CacheKey::new(
            &self.tech,
            &self.conditions,
            self.spec.precision,
            self.spec.wstore,
        ));
        self.evaluator = resolve_backend(&pipeline).bind(&self.spec, &self.tech, &self.conditions);
        self.pipeline = pipeline;
        self
    }

    /// The backing estimate cache (private unless the pipeline options
    /// injected a shared one).
    pub fn cache(&self) -> &Arc<SharedEvalCache> {
        &self.cache
    }

    /// This run's evaluation accounting (shared by all clones of this
    /// problem).
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// The bound estimator backend this problem's cohorts evaluate on.
    pub fn evaluator(&self) -> &Arc<dyn CohortEvaluator> {
        &self.evaluator
    }

    /// The persistent pool this problem's batches run on.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The asynchronous half-open form of
    /// [`evaluate_batch_into`](Problem::evaluate_batch_into): dedup the
    /// cohort, resolve what the cache knows, and **submit** the misses
    /// to the backend without waiting — the caller gets a
    /// [`PendingCohort`] to finish later and may do useful work (breed
    /// the next speculative generation) in between. The dedup, probe and
    /// submit logic mirrors the synchronous path exactly, so
    /// `begin_cohort` + [`finish_cohort`](Self::finish_cohort) produces
    /// the same rows and the same accounting as one
    /// `evaluate_batch_into` call.
    pub fn begin_cohort(&self, genomes: &[Geometry]) -> PendingCohort {
        let mut index_of: FxHashMap<Geometry, usize> = FxHashMap::default();
        let mut distinct: Vec<Geometry> = Vec::new();
        let mut slots: Vec<usize> = Vec::with_capacity(genomes.len());
        for g in genomes {
            let slot = *index_of.entry(*g).or_insert_with(|| {
                distinct.push(*g);
                distinct.len() - 1
            });
            slots.push(slot);
        }
        let mut resolved: Vec<Option<[f64; 4]>> = vec![None; distinct.len()];
        let mut missing: Vec<Geometry> = Vec::new();
        let mut missing_slots: Vec<usize> = Vec::new();
        if self.pipeline.cache {
            for (i, g) in distinct.iter().enumerate() {
                match self.space.get(g) {
                    Some(objectives) => resolved[i] = Some(objectives),
                    None => {
                        missing.push(*g);
                        missing_slots.push(i);
                    }
                }
            }
        } else {
            missing.extend_from_slice(&distinct);
            missing_slots.extend(0..distinct.len());
        }
        let workers = batch_workers(&self.pipeline, missing.len());
        let before = self.evaluator.estimator_stats();
        let ticket = self.evaluator.submit_cohort(&missing, &self.pool, workers);
        PendingCohort {
            total: genomes.len(),
            slots,
            resolved,
            missing,
            missing_slots,
            ticket,
            before,
        }
    }

    /// The speculative survivor estimate for an in-flight cohort: cache
    /// hits answer with their exact rows, outstanding misses predict
    /// `+∞` on every objective (certainly dominated, so a predicted miss
    /// never displaces a real survivor). Deliberately **never** polls
    /// the ticket: the prediction is a pure function of the seed and the
    /// cache history, so [`ExplorationResult::speculation`] is
    /// reproducible run-over-run instead of depending on worker timing.
    pub fn predicted_rows(&self, pending: &PendingCohort) -> ObjectiveMatrix {
        let mut rows = ObjectiveMatrix::with_capacity(4, pending.total);
        for &slot in &pending.slots {
            rows.push_row(&pending.resolved[slot].unwrap_or([f64::INFINITY; 4]));
        }
        rows
    }

    /// Waits out a [`begin_cohort`](Self::begin_cohort) ticket and
    /// completes the batch exactly as the synchronous path would:
    /// estimator delta recorded, fresh rows installed into the cache,
    /// hit/miss accounting, and one objective row per input genome.
    pub fn finish_cohort(&self, pending: PendingCohort) -> ObjectiveMatrix {
        let PendingCohort {
            total,
            slots,
            mut resolved,
            missing,
            missing_slots,
            ticket,
            before,
        } = pending;
        let computed = ticket.wait();
        self.stats
            .record_estimator(self.evaluator.estimator_stats().since(before));
        for ((slot, genome), objectives) in missing_slots.iter().zip(&missing).zip(computed) {
            if self.pipeline.cache {
                self.space.insert(*genome, objectives);
            }
            resolved[*slot] = Some(objectives);
        }
        self.stats.record(total - missing.len(), missing.len());
        self.cache.record(total - missing.len(), missing.len());
        let mut rows = ObjectiveMatrix::with_capacity(4, total);
        for &slot in &slots {
            rows.push_row(&resolved[slot].expect("every distinct geometry resolved"));
        }
        rows
    }

    /// Evaluates one geometry through the backend, bypassing the cache.
    fn evaluate_raw(&self, genome: &Geometry) -> [f64; 4] {
        let before = self.evaluator.estimator_stats();
        let row = self
            .evaluator
            .evaluate_cohort(std::slice::from_ref(genome), &self.pool, 1)
            .pop()
            .expect("one objective vector per geometry");
        self.stats
            .record_estimator(self.evaluator.estimator_stats().since(before));
        row
    }

    /// The presentation-grade form of one geometry (design point + full
    /// estimate) through the bound backend; `None` when infeasible.
    pub fn materialize(&self, g: &Geometry) -> Option<ParetoSolution> {
        self.evaluator.materialize(g)
    }

    /// Converts a (repaired) genome into a design point:
    /// `N = (Wstore >> (log_h + log_l)) · Bw`, which keeps `N` a whole
    /// multiple of the weight width for every precision, including the
    /// non-power-of-two mantissa widths (FP16's 11 bits, FP32's 24).
    ///
    /// Returns `None` when the geometry is infeasible even after repair
    /// (cannot happen for specs accepted by [`UserSpec::new`], but kept
    /// total for safety).
    pub fn design_of(&self, g: &Geometry) -> Option<DcimDesign> {
        self.lens.design_of(g)
    }

    /// The paper's exploration bounds as genome bounds:
    /// `log_l ≤ log2(max_l)`, `min_h ≤ H ≤ max_h`, and
    /// `log_h + log_l ≤ log2(Wstore / n_factor)` so that
    /// `N ≥ n_factor·Bw`.
    fn max_log_sum(&self) -> u32 {
        let f = self.spec.limits.n_factor.next_power_of_two();
        self.lens.log_wstore().saturating_sub(f.trailing_zeros())
    }
}

impl Problem for DcimProblem {
    type Genome = Geometry;

    fn objectives(&self) -> usize {
        4
    }

    fn random_genome(&self, rng: &mut dyn rand::RngCore) -> Geometry {
        let b = &self.bounds;
        Geometry {
            log_h: rng.gen_range(b.min_log_h..=b.max_log_h),
            log_l: rng.gen_range(0..=b.max_log_l),
            k: rng.gen_range(1..=self.serial_bits),
        }
    }

    fn evaluate(&self, genome: &Geometry) -> Vec<f64> {
        if !self.pipeline.cache {
            self.stats.record(0, 1);
            self.cache.record(0, 1);
            return self.evaluate_raw(genome).to_vec();
        }
        if let Some(objectives) = self.space.get(genome) {
            self.stats.record(1, 0);
            self.cache.record(1, 0);
            return objectives.to_vec();
        }
        let objectives = self.evaluate_raw(genome);
        self.stats.record(0, 1);
        self.cache.record(0, 1);
        self.space.insert(*genome, objectives);
        objectives.to_vec()
    }

    /// Batch evaluation through the memoizing, data-parallel pipeline
    /// (the nested-vector boundary adapter over
    /// [`evaluate_batch_into`](Problem::evaluate_batch_into)).
    fn evaluate_batch(&self, genomes: &[Geometry]) -> Vec<Vec<f64>> {
        let mut out = ObjectiveMatrix::with_capacity(4, genomes.len());
        self.evaluate_batch_into(genomes, &mut out);
        out.to_rows()
    }

    /// The hot batch path: dedup the cohort (duplicate genomes reach the
    /// estimator once even with caching off), collect the distinct
    /// geometries' cache misses, estimate them on the persistent
    /// [`Pool`], install the results, then answer every genome from the
    /// resolved table — appending rows to the caller's flat
    /// [`ObjectiveMatrix`]. All working memory comes from the problem's
    /// reusable [`BatchScratch`], so a generation's evaluation performs
    /// O(1) allocations. Results are identical to the serial default for
    /// every pool width, shard count and cache configuration.
    fn evaluate_batch_into(&self, genomes: &[Geometry], out: &mut ObjectiveMatrix) {
        let mut scratch = self.batch_scratch.lock().expect("batch scratch poisoned");
        let s = &mut *scratch;
        // Intra-batch dedup, in first-appearance order: `distinct[i]`
        // and, for every genome, its index into `distinct`.
        s.index_of.clear();
        s.distinct.clear();
        s.slots.clear();
        for g in genomes {
            let distinct = &mut s.distinct;
            let slot = *s.index_of.entry(*g).or_insert_with(|| {
                distinct.push(*g);
                distinct.len() - 1
            });
            s.slots.push(slot);
        }

        // Resolve each distinct geometry: memoized value, or position in
        // the miss list headed for the estimator.
        s.resolved.clear();
        s.resolved.resize(s.distinct.len(), None);
        s.missing.clear();
        s.missing_slots.clear();
        if self.pipeline.cache {
            for (i, g) in s.distinct.iter().enumerate() {
                match self.space.get(g) {
                    Some(objectives) => s.resolved[i] = Some(objectives),
                    None => {
                        s.missing.push(*g);
                        s.missing_slots.push(i);
                    }
                }
            }
        } else {
            s.missing.extend_from_slice(&s.distinct);
            s.missing_slots.extend(0..s.distinct.len());
        }

        let workers = batch_workers(&self.pipeline, s.missing.len());
        let before = self.evaluator.estimator_stats();
        let computed = self
            .evaluator
            .evaluate_cohort(&s.missing, &self.pool, workers);
        self.stats
            .record_estimator(self.evaluator.estimator_stats().since(before));
        for ((slot, genome), objectives) in s.missing_slots.iter().zip(&s.missing).zip(computed) {
            if self.pipeline.cache {
                self.space.insert(*genome, objectives);
            }
            s.resolved[*slot] = Some(objectives);
        }
        self.stats
            .record(genomes.len() - s.missing.len(), s.missing.len());
        self.cache
            .record(genomes.len() - s.missing.len(), s.missing.len());
        for &i in &s.slots {
            out.push_row(&s.resolved[i].expect("every distinct geometry resolved"));
        }
    }

    /// Geometries intern by their [`FxHasher`] fingerprint, so the GA's
    /// interning layer dedups cohorts in O(N) before they reach the
    /// batch pipeline (the shared cache is no longer the only dedup
    /// layer).
    fn intern_key(&self, genome: &Geometry) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        let mut hasher = crate::cache::FxHasher::default();
        genome.hash(&mut hasher);
        Some(hasher.finish())
    }

    fn crossover(&self, a: &Geometry, b: &Geometry, rng: &mut dyn rand::RngCore) -> Geometry {
        Geometry {
            log_h: if rng.gen_bool(0.5) { a.log_h } else { b.log_h },
            log_l: if rng.gen_bool(0.5) { a.log_l } else { b.log_l },
            k: if rng.gen_bool(0.5) { a.k } else { b.k },
        }
    }

    fn mutate(&self, genome: &mut Geometry, rng: &mut dyn rand::RngCore) {
        // Steps stay inside the spec's feasible box (not a hard-coded
        // `2^16` ceiling), so mutation never wastes a move that repair
        // must immediately undo.
        let b = &self.bounds;
        match rng.gen_range(0..3u32) {
            0 => genome.log_h = step(genome.log_h, rng.gen_bool(0.5), b.min_log_h, b.max_log_h),
            1 => genome.log_l = step(genome.log_l, rng.gen_bool(0.5), 0, b.max_log_l),
            _ => genome.k = step(genome.k, rng.gen_bool(0.5), 1, self.serial_bits),
        }
    }

    fn repair(&self, genome: &mut Geometry) {
        let b = &self.bounds;
        genome.log_l = genome.log_l.min(b.max_log_l);
        genome.log_h = genome.log_h.clamp(b.min_log_h, b.max_log_h);
        genome.k = genome.k.clamp(1, self.serial_bits);
        // Keep N >= n_factor * Bw: shrink L first (cheapest), then H.
        let max_sum = self.max_log_sum();
        if genome.log_h + genome.log_l > max_sum {
            genome.log_l = genome.log_l.min(max_sum.saturating_sub(genome.log_h));
        }
        if genome.log_h + genome.log_l > max_sum {
            genome.log_h = max_sum
                .saturating_sub(genome.log_l)
                .clamp(b.min_log_h, b.max_log_h);
        }
    }
}

fn step(v: u32, up: bool, lo: u32, hi: u32) -> u32 {
    if up {
        (v + 1).min(hi)
    } else {
        v.saturating_sub(1).max(lo)
    }
}

/// Runs the MOGA-based design space exploration for a specification and
/// returns the Pareto frontier (paper Fig. 4, "MOGA-based Design Space
/// Explorer"), with the default pipeline (memoized, all hardware
/// threads).
pub fn explore_pareto(
    spec: &UserSpec,
    tech: &Technology,
    conditions: &OperatingConditions,
    config: &Nsga2Config,
) -> ExplorationResult {
    explore_pareto_with(spec, tech, conditions, config, PipelineOptions::default())
}

/// [`explore_pareto`] with explicit [`PipelineOptions`]. The returned
/// frontier is bit-identical across all pipeline configurations; only the
/// wall-clock and the [`ExplorationResult`] counters differ.
pub fn explore_pareto_with(
    spec: &UserSpec,
    tech: &Technology,
    conditions: &OperatingConditions,
    config: &Nsga2Config,
    pipeline: PipelineOptions,
) -> ExplorationResult {
    explore_pareto_resumable(
        spec,
        tech,
        conditions,
        config,
        pipeline,
        None,
        0,
        &mut |_| true,
    )
    .expect("an exploration without checkpoints cannot be interrupted")
}

/// Everything needed to continue an exploration from a generation
/// boundary in another process: the GA driver's complete state plus the
/// problem-level accounting recorded so far. The *cache contents*
/// accumulated since the exploration began travel separately (a
/// [`Snapshot`](sega_wire::Snapshot) delta in the batch checkpoint
/// journal) — with both restored, the resumed run's front and accounting
/// match the uninterrupted run exactly.
#[derive(Debug, Clone)]
pub struct ExploreResume {
    /// The GA state at a `Breed`-phase generation boundary.
    pub driver: DriverState<Geometry>,
    /// Cache hits the problem's stats had recorded.
    pub hits: usize,
    /// Distinct evaluations (misses) the problem's stats had recorded.
    pub misses: usize,
    /// Estimator-kernel counters recorded so far.
    pub estimator: EstimatorStats,
}

/// [`explore_pareto_with`] with mid-exploration checkpointing and
/// resume: every `checkpoint_every` generations (0 = never) the driver
/// state and accounting are offered to `on_checkpoint` at a generation
/// boundary; returning `false` abandons the run (the caller has
/// persisted the state and wants to stop — the interruption test path),
/// yielding `None`. Passing a previously captured [`ExploreResume`]
/// continues that run: the RNG stream, counters and (given the caller
/// also restored the cache) the front are exactly those of an
/// uninterrupted run — except the dominance `allocations` counter, which
/// measures scratch-buffer warmth the resumed process must rebuild.
///
/// Speculation ([`PipelineOptions::speculate`]) composes: a cohort whose
/// commit lands on a checkpoint boundary takes the synchronous path so
/// the driver passes through the `Breed` boundary where state export is
/// defined.
#[allow(clippy::too_many_arguments)]
pub fn explore_pareto_resumable(
    spec: &UserSpec,
    tech: &Technology,
    conditions: &OperatingConditions,
    config: &Nsga2Config,
    pipeline: PipelineOptions,
    resume: Option<ExploreResume>,
    checkpoint_every: usize,
    on_checkpoint: &mut dyn FnMut(&ExploreResume) -> bool,
) -> Option<ExplorationResult> {
    let speculate = pipeline.speculate;
    let problem = DcimProblem::with_options(*spec, tech.clone(), *conditions, pipeline);
    let mut driver = match resume {
        Some(resume) => {
            // Replay the accounting the interrupted run had already
            // recorded, so the final report matches an uninterrupted
            // run's.
            problem.stats().record(resume.hits, resume.misses);
            problem.cache().record(resume.hits, resume.misses);
            problem.stats().record_estimator(resume.estimator);
            Nsga2Driver::from_state(resume.driver)
        }
        None => Nsga2Driver::new(config.clone(), problem.objectives()),
    };
    let mut last_checkpoint = driver.bred();
    let result = loop {
        match driver.phase() {
            DriverPhase::Breed => {
                let bred = driver.bred();
                if checkpoint_every > 0
                    && bred > 0
                    && bred % checkpoint_every == 0
                    && bred != last_checkpoint
                {
                    last_checkpoint = bred;
                    let state = ExploreResume {
                        driver: driver.export_state(),
                        hits: problem.stats().hits(),
                        misses: problem.stats().distinct_evaluations(),
                        estimator: problem.stats().estimator(),
                    };
                    if !on_checkpoint(&state) {
                        return None;
                    }
                }
                driver.breed(&problem);
            }
            DriverPhase::Submitted => {
                // A cohort committing onto a checkpoint boundary stays
                // synchronous so the driver reaches the Breed boundary
                // where `export_state` is defined.
                let boundary = checkpoint_every > 0 && driver.bred() % checkpoint_every == 0;
                if speculate && !driver.is_final_cohort() && !boundary {
                    let pending = problem.begin_cohort(driver.pending());
                    let predicted = problem.predicted_rows(&pending);
                    driver.speculate(&problem, &predicted);
                    let actual = problem.finish_cohort(pending);
                    driver.resolve(&problem, &actual);
                } else {
                    let mut rows = ObjectiveMatrix::with_capacity(4, driver.pending().len());
                    let cohort = driver.pending().to_vec();
                    problem.evaluate_batch_into(&cohort, &mut rows);
                    driver.provide_rows(&rows);
                }
            }
            DriverPhase::Reconcile => driver.reconcile(),
            DriverPhase::Select => driver.select(),
            DriverPhase::Done => break driver.into_result(),
        }
    };
    Some(conclude(&problem, spec, result))
}

/// Materializes a finished GA run into the exploration report: front
/// solutions presented and deduplicated, accounting folded together.
fn conclude(
    problem: &DcimProblem,
    spec: &UserSpec,
    result: Nsga2Result<Geometry>,
) -> ExplorationResult {
    problem.stats().record_dominance(result.dominance);
    let mut solutions: Vec<ParetoSolution> = result
        .front
        .iter()
        .filter_map(|ind| {
            let solution = problem.materialize(&ind.genome)?;
            solution.estimate.area_mm2.is_finite().then_some(solution)
        })
        .collect();
    solutions.sort_by(|a, b| {
        a.estimate
            .area_mm2
            .partial_cmp(&b.estimate.area_mm2)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    solutions.dedup_by(|a, b| a.design == b.design);
    ExplorationResult {
        spec: *spec,
        solutions,
        evaluations: result.evaluations,
        distinct_evaluations: problem.stats().distinct_evaluations(),
        // Duplicates the GA interned away never reached the problem's
        // stats; they are still evaluations served from memory.
        cache_hits: problem.stats().hits() + result.interned,
        interned: result.interned,
        dominance: result.dominance,
        estimator: problem.stats().estimator(),
        speculation: result.speculation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sega_estimator::Precision;

    fn setup(precision: Precision, wstore: u64) -> DcimProblem {
        let spec = UserSpec::new(wstore, precision).unwrap();
        DcimProblem::new(
            spec,
            Technology::tsmc28(),
            OperatingConditions::paper_default(),
        )
    }

    fn small_config(seed: u64) -> Nsga2Config {
        Nsga2Config {
            population: 24,
            generations: 15,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn repaired_genomes_are_always_feasible() {
        let problem = setup(Precision::Int8, 65536);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let mut g = problem.random_genome(&mut rng);
            problem.mutate(&mut g, &mut rng);
            problem.mutate(&mut g, &mut rng);
            problem.repair(&mut g);
            let d = problem.design_of(&g).expect("repaired genome feasible");
            d.validate().unwrap();
            let (n, h, l, _) = d.geometry();
            assert_eq!(d.wstore(), 65536, "capacity constraint violated");
            assert!(l <= 64 && h <= 2048 && n >= 4 * 8, "paper bounds violated");
        }
    }

    #[test]
    fn exploration_returns_nonempty_front() {
        for precision in [Precision::Int8, Precision::Bf16, Precision::Fp32] {
            let spec = UserSpec::new(16384, precision).unwrap();
            let r = explore_pareto(
                &spec,
                &Technology::tsmc28(),
                &OperatingConditions::paper_default(),
                &small_config(1),
            );
            assert!(!r.solutions.is_empty(), "{precision}");
            for s in &r.solutions {
                assert_eq!(s.design.wstore(), 16384);
            }
        }
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let spec = UserSpec::new(16384, Precision::Int8).unwrap();
        let r = explore_pareto(
            &spec,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            &small_config(2),
        );
        let objs = r.objective_matrix();
        for a in objs.iter_rows() {
            for b in objs.iter_rows() {
                assert!(!sega_moga::pareto::dominates(a, b) || a == b);
            }
        }
    }

    #[test]
    fn front_spans_area_throughput_tradeoff() {
        let spec = UserSpec::new(65536, Precision::Int8).unwrap();
        let r = explore_pareto(
            &spec,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            &Nsga2Config {
                population: 48,
                generations: 30,
                seed: 3,
                ..Default::default()
            },
        );
        assert!(
            r.solutions.len() >= 3,
            "front too small: {}",
            r.solutions.len()
        );
        let areas: Vec<f64> = r.solutions.iter().map(|s| s.estimate.area_mm2).collect();
        let min = areas.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = areas.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min > 1.5,
            "front should span a real area trade-off: {min}..{max}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = UserSpec::new(8192, Precision::Bf16).unwrap();
        let run = || {
            explore_pareto(
                &spec,
                &Technology::tsmc28(),
                &OperatingConditions::paper_default(),
                &small_config(42),
            )
            .objective_matrix()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fp_problem_respects_mantissa_bound_on_k() {
        let problem = setup(Precision::Bf16, 8192);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let mut g = problem.random_genome(&mut rng);
            g.k = 31; // force out of range
            problem.repair(&mut g);
            assert!(g.k <= 8, "k must be clamped to BM for BF16");
        }
    }
}
