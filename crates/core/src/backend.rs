//! The pluggable estimator seam: **where objective vectors come from**.
//!
//! PR 2 made evaluation batch-first (dedup → cache → pool fan-out); this
//! module abstracts the step at the bottom of that pipeline — "given a
//! cohort of distinct, uncached geometries, produce their objective
//! vectors" — behind [`EvalBackend`], so the estimator implementation can
//! be swapped without touching [`DcimProblem`], `explore_*`, `mixed`,
//! `enumerate` or the `Compiler`:
//!
//! * [`MacroModelBackend`] is today's in-process path: the closed-form
//!   macro model through a hoisted [`EstimationContext`], fanned out on
//!   the persistent [`Pool`].
//! * [`InstrumentedBackend`] wraps any backend with cohort/geometry
//!   counters — the test double proving fronts are backend-invariant,
//!   and the accounting hook the batch runner reports.
//! * [`RemoteBackend`](crate::remote::RemoteBackend) ships the same
//!   cohorts (serialized with `sega_wire`) to a fleet of worker
//!   processes and merges their results back through the cache's
//!   snapshot/merge layer — the transport this trait was cut for, and
//!   the proof no caller had to change when it landed.
//!
//! The contract every backend must honor: **determinism**. For one bound
//! `(spec, technology, conditions)` the objective vector of a geometry is
//! a pure function — the cache memoizes it, snapshots persist it, and the
//! bit-identical-front guarantee of the whole pipeline rests on it.
//!
//! [`DcimProblem`]: crate::explore::DcimProblem

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use sega_cells::Technology;
use sega_estimator::{
    CohortScratch, DcimDesign, EstimationContext, EstimatorStats, OperatingConditions, Precision,
};
use sega_parallel::Pool;

use crate::explore::{Geometry, ParetoSolution};
use crate::spec::UserSpec;

/// The genome → design-point conversion of one specification, hoisted
/// out of [`DcimProblem`](crate::explore::DcimProblem) so backends and
/// the enumeration path share one implementation:
/// `N = (Wstore >> (log_h + log_l)) · Bw`, which keeps every geometry on
/// the capacity manifold `N·H·L/Bw = Wstore` by construction.
#[derive(Debug, Clone, Copy)]
pub struct GeometryLens {
    wstore: u64,
    weight_bits: u64,
    precision: Precision,
    log_wstore: u32,
}

impl GeometryLens {
    /// The lens of one (validated) specification.
    pub fn new(spec: &UserSpec) -> GeometryLens {
        debug_assert!(spec.wstore.is_power_of_two(), "validated by UserSpec");
        GeometryLens {
            wstore: spec.wstore,
            weight_bits: spec.weight_bits() as u64,
            precision: spec.precision,
            log_wstore: spec.wstore.trailing_zeros(),
        }
    }

    /// `log2 Wstore`.
    pub fn log_wstore(&self) -> u32 {
        self.log_wstore
    }

    /// Converts a (repaired) genome into a design point. `None` when the
    /// geometry is infeasible even after repair (cannot happen for specs
    /// accepted by [`UserSpec::new`], but kept total for safety).
    pub fn design_of(&self, g: &Geometry) -> Option<DcimDesign> {
        let denom = g.log_h + g.log_l;
        if denom > self.log_wstore {
            return None;
        }
        let n = (self.wstore >> denom) * self.weight_bits;
        if n > u32::MAX as u64 {
            return None;
        }
        DcimDesign::for_precision(
            self.precision,
            n as u32,
            1u32 << g.log_h,
            1u32 << g.log_l,
            g.k,
        )
        .ok()
    }
}

/// An estimator implementation: binds to one exploration's invariants
/// and evaluates geometry cohorts.
///
/// Backends are stateless factories (safe to share process-wide); the
/// per-exploration state — voltage-realized technology, genome lens,
/// remote session, … — lives in the [`CohortEvaluator`] that
/// [`EvalBackend::bind`] returns, resolved **once** per problem, never
/// per genome.
pub trait EvalBackend: Send + Sync + std::fmt::Debug {
    /// Short name for reports and diagnostics, e.g. `"macro-model"`.
    fn name(&self) -> &'static str;

    /// Binds the backend to one exploration's invariants.
    fn bind(
        &self,
        spec: &UserSpec,
        tech: &Technology,
        conditions: &OperatingConditions,
    ) -> Arc<dyn CohortEvaluator>;
}

/// A backend bound to one `(spec, technology, conditions)` triple: the
/// object the hot path actually calls.
pub trait CohortEvaluator: Send + Sync + std::fmt::Debug {
    /// Objective vectors `[area, delay, energy, −throughput]` for a
    /// cohort of geometries, element-wise in cohort order. The caller
    /// (the cache layer) guarantees the cohort is deduplicated and
    /// cache-missed — the GA interns duplicate genomes and the batch
    /// pipeline dedups within the cohort, so every geometry arriving
    /// here is estimated exactly once; `workers` bounds the parallelism
    /// the evaluation may use on `pool`. The `[f64; 4]` rows are already
    /// flat and are copied straight into the caller's
    /// [`sega_moga::ObjectiveMatrix`] without per-genome allocation.
    ///
    /// Infeasible geometries evaluate to `[+∞; 4]` — they participate in
    /// NSGA-II domination like any other vector and are memoized like
    /// any other result.
    fn evaluate_cohort(&self, cohort: &[Geometry], pool: &Pool, workers: usize) -> Vec<[f64; 4]>;

    /// Submits a cohort for evaluation without waiting for the rows —
    /// the asynchronous half of the seam. The returned [`EvalTicket`]
    /// is redeemed with [`EvalTicket::wait`] (or probed with
    /// [`EvalTicket::poll`]); the rows it yields are exactly what
    /// [`evaluate_cohort`](Self::evaluate_cohort) would have returned,
    /// so a caller may freely overlap its own work — speculative
    /// breeding, checkpointing — with the evaluation in flight.
    ///
    /// The default adapter evaluates synchronously and returns an
    /// already-complete ticket, so in-process backends are untouched
    /// semantically; [`RemoteBackend`](crate::remote::RemoteBackend)
    /// overrides it to leave the cohort genuinely in flight on the
    /// worker fleet.
    fn submit_cohort(
        &self,
        cohort: &[Geometry],
        pool: &Arc<Pool>,
        workers: usize,
    ) -> Box<dyn EvalTicket> {
        Box::new(ReadyTicket {
            rows: self.evaluate_cohort(cohort, pool, workers),
        })
    }

    /// The presentation-grade form of one geometry — the full design
    /// point and estimate a front member or enumeration point reports.
    /// `None` for infeasible geometries.
    fn materialize(&self, g: &Geometry) -> Option<ParetoSolution>;

    /// Cumulative estimator-kernel counters accumulated by this
    /// evaluator: designs estimated, how many went through the vector
    /// finish vs the scalar block, and scratch growth. Backends without
    /// an in-process kernel (remote workers account on their own side)
    /// report the zero default.
    fn estimator_stats(&self) -> EstimatorStats {
        EstimatorStats::default()
    }
}

/// A handle to one submitted cohort: the asynchronous half of the
/// [`CohortEvaluator::submit_cohort`] seam.
///
/// Redeeming the ticket yields exactly the rows
/// [`CohortEvaluator::evaluate_cohort`] would have returned for the same
/// cohort — submission changes *when* the rows arrive, never what they
/// are, so every determinism guarantee of the synchronous path carries
/// over.
pub trait EvalTicket: Send {
    /// The number of cohort rows already landed (monotonic; equals the
    /// cohort length once everything is in). Never blocks; a probe for
    /// callers deciding whether speculation is still worth placing.
    fn poll(&mut self) -> usize;

    /// Blocks until every row is available and returns them in cohort
    /// order.
    fn wait(self: Box<Self>) -> Vec<[f64; 4]>;
}

/// The blocking adapter behind the default
/// [`CohortEvaluator::submit_cohort`]: the work already happened at
/// submit time, the ticket just carries the rows.
struct ReadyTicket {
    rows: Vec<[f64; 4]>,
}

impl EvalTicket for ReadyTicket {
    fn poll(&mut self) -> usize {
        self.rows.len()
    }

    fn wait(self: Box<Self>) -> Vec<[f64; 4]> {
        self.rows
    }
}

/// The in-process macro-model backend: the paper's closed-form estimator
/// through a per-binding hoisted [`EstimationContext`], fanned out on the
/// persistent pool.
#[derive(Debug, Clone, Copy, Default)]
pub struct MacroModelBackend;

impl EvalBackend for MacroModelBackend {
    fn name(&self) -> &'static str {
        "macro-model"
    }

    fn bind(
        &self,
        spec: &UserSpec,
        tech: &Technology,
        conditions: &OperatingConditions,
    ) -> Arc<dyn CohortEvaluator> {
        Arc::new(MacroModelEvaluator {
            lens: GeometryLens::new(spec),
            ctx: EstimationContext::new(tech, conditions),
            counters: Arc::new(EstimatorCounters::default()),
        })
    }
}

/// The process-wide default backend instance (backends are stateless, so
/// one is enough).
pub fn default_backend() -> Arc<dyn EvalBackend> {
    static DEFAULT: std::sync::OnceLock<Arc<dyn EvalBackend>> = std::sync::OnceLock::new();
    Arc::clone(DEFAULT.get_or_init(|| Arc::new(MacroModelBackend)))
}

/// [`MacroModelBackend`] bound to one exploration.
#[derive(Debug)]
struct MacroModelEvaluator {
    lens: GeometryLens,
    /// Voltage-realized technology + energy factor, hoisted once per
    /// binding so the innermost estimate never clones a [`Technology`].
    ctx: EstimationContext,
    /// Kernel counters merged from every worker's thread-local scratch.
    counters: Arc<EstimatorCounters>,
}

/// Atomic mirror of [`EstimatorStats`], so pool workers can merge their
/// thread-local scratch counters without locking.
#[derive(Debug, Default)]
struct EstimatorCounters {
    designs: AtomicU64,
    batched: AtomicU64,
    scalar_fallbacks: AtomicU64,
    allocations: AtomicU64,
}

impl EstimatorCounters {
    fn add(&self, delta: EstimatorStats) {
        self.designs.fetch_add(delta.designs, Ordering::Relaxed);
        self.batched.fetch_add(delta.batched, Ordering::Relaxed);
        self.scalar_fallbacks
            .fetch_add(delta.scalar_fallbacks, Ordering::Relaxed);
        self.allocations
            .fetch_add(delta.allocations, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EstimatorStats {
        EstimatorStats {
            designs: self.designs.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            scalar_fallbacks: self.scalar_fallbacks.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    /// Per-worker cohort workspace: the dense design list, the slot map
    /// back into the chunk, the estimator's SoA lanes, and the row
    /// output — all reused across chunks so steady-state evaluation
    /// never allocates inside a worker.
    static COHORT_TLS: RefCell<CohortWorkspace> = RefCell::new(CohortWorkspace::default());
}

#[derive(Default)]
struct CohortWorkspace {
    designs: Vec<DcimDesign>,
    slots: Vec<usize>,
    rows: Vec<[f64; 4]>,
    scratch: CohortScratch,
}

impl MacroModelEvaluator {
    /// Runs the batched SoA estimator over one worker's chunk: map
    /// feasible geometries into a dense design list, estimate the whole
    /// list through [`EstimationContext::estimate_cohort`], then scatter
    /// the rows back — infeasible slots stay `[+∞; 4]`.
    fn evaluate_chunk(&self, chunk: &[Geometry]) -> Vec<[f64; 4]> {
        COHORT_TLS.with(|tls| {
            let ws = &mut *tls.borrow_mut();
            ws.designs.clear();
            ws.slots.clear();
            let mut out = vec![[f64::INFINITY; 4]; chunk.len()];
            for (slot, g) in chunk.iter().enumerate() {
                if let Some(design) = self.lens.design_of(g) {
                    ws.designs.push(design);
                    ws.slots.push(slot);
                }
            }
            self.ctx
                .estimate_cohort(&ws.designs, &mut ws.rows, &mut ws.scratch);
            for (&slot, &row) in ws.slots.iter().zip(&ws.rows) {
                out[slot] = row;
            }
            self.counters.add(ws.scratch.stats());
            ws.scratch.reset_stats();
            out
        })
    }
}

impl CohortEvaluator for MacroModelEvaluator {
    fn evaluate_cohort(&self, cohort: &[Geometry], pool: &Pool, workers: usize) -> Vec<[f64; 4]> {
        if cohort.is_empty() {
            return Vec::new();
        }
        // Chunk the cohort so each pool worker runs the batched kernel
        // over a contiguous claim (instead of one estimate per work
        // item). Four chunks per participant keeps the tail balanced
        // while leaving each chunk long enough to fill vector lanes.
        let participants = workers.max(1);
        let chunk_len = cohort.len().div_ceil(participants * 4).max(1);
        let chunks: Vec<&[Geometry]> = cohort.chunks(chunk_len).collect();
        let evaluated = pool.par_map_bounded(&chunks, workers, |chunk| self.evaluate_chunk(chunk));
        let mut out = Vec::with_capacity(cohort.len());
        for rows in evaluated {
            out.extend(rows);
        }
        out
    }

    fn materialize(&self, g: &Geometry) -> Option<ParetoSolution> {
        let design = self.lens.design_of(g)?;
        let estimate = self.ctx.estimate(&design);
        Some(ParetoSolution { design, estimate })
    }

    fn estimator_stats(&self) -> EstimatorStats {
        self.counters.snapshot()
    }
}

/// A pass-through backend that counts the traffic crossing the seam:
/// cohorts dispatched and geometries evaluated, across every evaluator
/// it has bound.
///
/// Two jobs: the **test double** proving the exploration result is
/// invariant in the backend choice (it perturbs scheduling metadata but
/// must not perturb fronts), and the **accounting hook** behind the batch
/// runner's per-backend statistics.
#[derive(Debug)]
pub struct InstrumentedBackend {
    inner: Arc<dyn EvalBackend>,
    counters: Arc<BackendCounters>,
}

/// The shared traffic counters of an [`InstrumentedBackend`] — `Arc`d so
/// evaluators can outlive the borrow that bound them.
#[derive(Debug, Default)]
struct BackendCounters {
    cohorts: AtomicUsize,
    geometries: AtomicUsize,
}

impl InstrumentedBackend {
    /// Wraps `inner`, starting all counters at zero.
    pub fn new(inner: Arc<dyn EvalBackend>) -> InstrumentedBackend {
        InstrumentedBackend {
            inner,
            counters: Arc::new(BackendCounters::default()),
        }
    }

    /// Wraps the default [`MacroModelBackend`].
    pub fn macro_model() -> InstrumentedBackend {
        InstrumentedBackend::new(default_backend())
    }

    /// Cohorts dispatched to the wrapped backend so far.
    pub fn cohorts(&self) -> usize {
        self.counters.cohorts.load(Ordering::Relaxed)
    }

    /// Geometries evaluated by the wrapped backend so far.
    pub fn geometries(&self) -> usize {
        self.counters.geometries.load(Ordering::Relaxed)
    }
}

impl EvalBackend for InstrumentedBackend {
    fn name(&self) -> &'static str {
        "instrumented"
    }

    fn bind(
        &self,
        spec: &UserSpec,
        tech: &Technology,
        conditions: &OperatingConditions,
    ) -> Arc<dyn CohortEvaluator> {
        Arc::new(InstrumentedEvaluator {
            inner: self.inner.bind(spec, tech, conditions),
            counters: Arc::clone(&self.counters),
        })
    }
}

#[derive(Debug)]
struct InstrumentedEvaluator {
    inner: Arc<dyn CohortEvaluator>,
    counters: Arc<BackendCounters>,
}

impl CohortEvaluator for InstrumentedEvaluator {
    fn evaluate_cohort(&self, cohort: &[Geometry], pool: &Pool, workers: usize) -> Vec<[f64; 4]> {
        if !cohort.is_empty() {
            self.counters.cohorts.fetch_add(1, Ordering::Relaxed);
            self.counters
                .geometries
                .fetch_add(cohort.len(), Ordering::Relaxed);
        }
        self.inner.evaluate_cohort(cohort, pool, workers)
    }

    fn materialize(&self, g: &Geometry) -> Option<ParetoSolution> {
        self.inner.materialize(g)
    }

    fn estimator_stats(&self) -> EstimatorStats {
        self.inner.estimator_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bind_default(spec: &UserSpec) -> Arc<dyn CohortEvaluator> {
        default_backend().bind(
            spec,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        )
    }

    #[test]
    fn macro_backend_matches_the_free_estimator() {
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let evaluator = bind_default(&spec);
        let lens = GeometryLens::new(&spec);
        let g = Geometry {
            log_h: 7,
            log_l: 4,
            k: 4,
        };
        let design = lens.design_of(&g).unwrap();
        let expected = sega_estimator::estimate(
            &design,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        );
        let pool = Pool::for_threads(1);
        let cohort = evaluator.evaluate_cohort(std::slice::from_ref(&g), &pool, 1);
        assert_eq!(cohort, vec![expected.objectives()]);
        let solution = evaluator.materialize(&g).unwrap();
        assert_eq!(solution.design, design);
        assert_eq!(solution.estimate, expected);
    }

    #[test]
    fn infeasible_geometries_evaluate_to_infinity_not_panic() {
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let evaluator = bind_default(&spec);
        let beyond = Geometry {
            log_h: 30,
            log_l: 30,
            k: 1,
        };
        let pool = Pool::for_threads(1);
        let out = evaluator.evaluate_cohort(std::slice::from_ref(&beyond), &pool, 1);
        assert_eq!(out, vec![[f64::INFINITY; 4]]);
        assert!(evaluator.materialize(&beyond).is_none());
    }

    #[test]
    fn instrumented_backend_counts_traffic_and_preserves_results() {
        let spec = UserSpec::new(8192, Precision::Bf16).unwrap();
        let instrumented = InstrumentedBackend::macro_model();
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let wrapped = instrumented.bind(&spec, &tech, &cond);
        let plain = bind_default(&spec);
        let cohort: Vec<Geometry> = (1..=4)
            .map(|k| Geometry {
                log_h: 5,
                log_l: 1,
                k,
            })
            .collect();
        let pool = Pool::for_threads(1);
        assert_eq!(
            wrapped.evaluate_cohort(&cohort, &pool, 1),
            plain.evaluate_cohort(&cohort, &pool, 1)
        );
        assert_eq!(instrumented.cohorts(), 1);
        assert_eq!(instrumented.geometries(), 4);
        // Empty cohorts don't count.
        wrapped.evaluate_cohort(&[], &pool, 1);
        assert_eq!(instrumented.cohorts(), 1);
        assert_eq!(instrumented.name(), "instrumented");
    }

    #[test]
    fn evaluator_accumulates_estimator_stats() {
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let evaluator = bind_default(&spec);
        assert_eq!(evaluator.estimator_stats(), EstimatorStats::default());
        let cohort: Vec<Geometry> = (1..=4)
            .map(|k| Geometry {
                log_h: 5,
                log_l: 1,
                k,
            })
            .collect();
        let pool = Pool::for_threads(1);
        let rows = evaluator.evaluate_cohort(&cohort, &pool, 1);
        assert_eq!(rows.len(), 4);
        let stats = evaluator.estimator_stats();
        assert_eq!(stats.designs, 4, "all four geometries are feasible");
        assert_eq!(stats.batched + stats.scalar_fallbacks, stats.designs);
        // A second cohort accumulates rather than resets.
        evaluator.evaluate_cohort(&cohort, &pool, 1);
        assert_eq!(evaluator.estimator_stats().designs, 8);
    }

    #[test]
    fn chunked_cohort_is_order_preserving_across_worker_counts() {
        let spec = UserSpec::new(16384, Precision::Fp16).unwrap();
        let evaluator = bind_default(&spec);
        // A cohort long enough to split into many chunks, with an
        // infeasible geometry buried mid-stream.
        let mut cohort = Vec::new();
        for log_h in 1..=6 {
            for log_l in 0..=2 {
                for k in 1..=4 {
                    cohort.push(Geometry { log_h, log_l, k });
                }
            }
        }
        cohort.insert(
            17,
            Geometry {
                log_h: 30,
                log_l: 30,
                k: 1,
            },
        );
        let pool = Pool::for_threads(4);
        let serial = evaluator.evaluate_cohort(&cohort, &pool, 1);
        let fanned = evaluator.evaluate_cohort(&cohort, &pool, 4);
        assert_eq!(serial.len(), cohort.len());
        assert_eq!(serial[17], [f64::INFINITY; 4]);
        let serial_bits: Vec<[u64; 4]> = serial.iter().map(|r| r.map(f64::to_bits)).collect();
        let fanned_bits: Vec<[u64; 4]> = fanned.iter().map(|r| r.map(f64::to_bits)).collect();
        assert_eq!(serial_bits, fanned_bits);
    }

    #[test]
    fn lens_keeps_capacity_exact_for_every_precision() {
        let precisions = [
            Precision::Int2,
            Precision::Int4,
            Precision::Int8,
            Precision::Int16,
            Precision::Fp8,
            Precision::Fp16,
            Precision::Bf16,
            Precision::Fp32,
        ];
        for precision in precisions {
            let spec = match UserSpec::new(16384, precision) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let lens = GeometryLens::new(&spec);
            for log_h in 1..=6 {
                for log_l in 0..=2 {
                    for k in 1..=2 {
                        let g = Geometry { log_h, log_l, k };
                        if let Some(d) = lens.design_of(&g) {
                            assert_eq!(d.wstore(), 16384, "{precision} {g:?}");
                        }
                    }
                }
            }
        }
    }
}
