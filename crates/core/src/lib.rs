//! # sega-dcim — design space exploration-guided automatic digital CIM compiler
//!
//! A faithful open-source reproduction of **SEGA-DCIM** (DATE 2025): an
//! automatic compiler for digital computing-in-memory (DCIM) macros with
//! multiple precision support (INT2–INT16, FP8, FP16, BF16, FP32).
//!
//! Given a [`UserSpec`] — the number of stored weights and the computing
//! precision — the compiler:
//!
//! 1. **explores** the design space `(N, H, L, k)` with an NSGA-II
//!    multi-objective genetic algorithm over `[area, delay, energy,
//!    −throughput]` under the capacity constraint `N·H·L/Bw = Wstore`
//!    ([`explore`]),
//! 2. **distills** the Pareto frontier to the user's preference
//!    ([`distill`]),
//! 3. **generates** the selected design: a structural Verilog netlist
//!    (template-based, via [`sega_netlist`]), a floorplanned layout with
//!    DRC checks (via [`sega_layout`]), and a gate-count audit proving the
//!    generated hardware matches the estimate the explorer optimized
//!    ([`compiler`]).
//!
//! The bit-accurate functional behaviour of the generated macros is
//! verified by [`sega_sim`].
//!
//! # The evaluation pipeline
//!
//! Exploration runs through a **batch-first, memoized, data-parallel
//! pipeline**: NSGA-II breeds each generation completely before
//! evaluating it, and [`explore::DcimProblem`] dedups the cohort, serves
//! repeats from a sharded [`SharedEvalCache`] key space (reusable across
//! explorations, sweep points and compiler runs — keyed by technology,
//! conditions, precision and capacity), and fans the remaining misses
//! out as one cohort to the bound [`EvalBackend`] (the in-process macro
//! model by default), which evaluates them on a persistent
//! `sega_parallel::Pool` whose workers are spawned once per process. The
//! [`PipelineOptions`] knobs — thread count, cache switch, pool,
//! shared-cache and backend handles — change wall-clock only: the
//! frontier is bit-identical for every configuration, and
//! [`ExplorationResult`] reports the accounting (`evaluations` vs
//! `distinct_evaluations` vs `cache_hits`).
//!
//! The cache persists and merges across processes
//! ([`SharedEvalCache::snapshot`]/[`load`](SharedEvalCache::load)/
//! [`merge`](SharedEvalCache::merge), via the dependency-free `sega_wire`
//! codecs), and the [`batch`] module runs whole job files of
//! specifications over one pool and one cache — the `sega-dcim batch`
//! subcommand with `--cache-file` warm-starts an identical rerun to zero
//! distinct evaluations.
//!
//! # Quickstart
//!
//! ```
//! use sega_dcim::{Compiler, DistillStrategy, UserSpec};
//! use sega_estimator::Precision;
//!
//! // 8K-weight INT8 macro (the paper's Fig. 6(a) scenario).
//! let spec = UserSpec::new(8192, Precision::Int8)?;
//! let compiler = Compiler::new().with_exploration_budget(24, 12);
//! let compiled = compiler.compile(&spec, DistillStrategy::Knee)?;
//! assert!(compiled.audit.is_consistent(1e-9));
//! println!("{}", compiled.estimate);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batch;
pub mod cache;
pub mod checkpoint;
pub mod compiler;
pub mod distill;
pub mod enumerate;
pub mod explore;
pub mod mixed;
pub mod remote;
pub mod report;
pub mod runtime;
pub mod serve;
mod spec;
pub mod store;
pub mod testbench;

pub use backend::{
    CohortEvaluator, EvalBackend, EvalTicket, GeometryLens, InstrumentedBackend, MacroModelBackend,
};
pub use batch::{
    run_batch, run_batch_with, BatchControl, BatchJob, BatchOutcome, BatchReport, CacheSyncStats,
};
pub use cache::{CacheKey, EvalStats, SharedEvalCache};
pub use checkpoint::CheckpointConfig;
pub use compiler::{CompileError, CompiledMacro, Compiler};
pub use distill::DistillStrategy;
pub use enumerate::{enumerate_design_space, enumerate_design_space_with, exhaustive_front};
pub use explore::{
    explore_pareto, explore_pareto_resumable, explore_pareto_with, ExplorationResult,
    ExploreResume, ParetoSolution, PipelineOptions,
};
pub use mixed::{explore_mixed, explore_mixed_with, MixedExploration};
pub use remote::{
    run_connected_worker, RemoteBackend, RemoteOptions, RemoteStats, TransportKind, WorkerCommand,
    WorkerOptions,
};
pub use serve::{
    drain_flag, run_batch_connected, run_batch_connected_with, serve, ListenAddr, ServeOptions,
    ServeReport,
};
pub use spec::{ExplorerLimits, SpecError, UserSpec};
pub use store::{CacheStore, LoadOutcome, StoreStats, DEFAULT_MAX_SEGMENTS};
pub use testbench::{generate_int_testbench, Testbench};

// Re-export the workspace layers under one roof for downstream users.
pub use sega_cells as cells;
pub use sega_estimator as estimator;
pub use sega_layout as layout;
pub use sega_moga as moga;
pub use sega_netlist as netlist;
pub use sega_sim as sim;
