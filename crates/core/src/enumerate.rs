//! Exhaustive enumeration of the DCIM design space.
//!
//! For one `(Wstore, precision)` specification the legal geometries are a
//! small discrete set (powers-of-two `H`, `L` within the paper's bounds ×
//! `k ≤ Bx`), so the *entire* space can be enumerated and Pareto-filtered
//! exactly. This serves two purposes:
//!
//! * a **ground truth** to measure the NSGA-II explorer against (the
//!   explorer must recover the true front — tested), and
//! * the data behind Fig. 7's full design-space clouds.

use sega_cells::Technology;
use sega_estimator::OperatingConditions;
use sega_moga::pareto::pareto_front_indices_matrix;
use sega_moga::ObjectiveMatrix;
use sega_parallel::par_map;

use crate::explore::{DcimProblem, Geometry, ParetoSolution, PipelineOptions};
use crate::spec::UserSpec;

/// Every legal geometry of the specification's design space, within the
/// paper's exploration bounds.
pub fn enumerate_geometries(spec: &UserSpec) -> Vec<Geometry> {
    let limits = &spec.limits;
    let max_log_l = limits.max_l.trailing_zeros();
    let min_log_h = limits.min_h.next_power_of_two().trailing_zeros();
    let max_log_h = limits.max_h.trailing_zeros();
    let log_wstore = spec.wstore.trailing_zeros();
    let max_sum = log_wstore.saturating_sub(limits.n_factor.next_power_of_two().trailing_zeros());
    let serial_bits = spec.precision.input_bits();

    let mut out = Vec::new();
    for log_h in min_log_h..=max_log_h {
        for log_l in 0..=max_log_l {
            if log_h + log_l > max_sum {
                continue;
            }
            for k in 1..=serial_bits {
                out.push(Geometry { log_h, log_l, k });
            }
        }
    }
    out
}

/// Evaluates the complete design space and returns every point
/// (design + estimate), unfiltered — Fig. 7's cloud.
///
/// Estimates run data-parallel over all hardware threads (the order of
/// the returned points is the enumeration order regardless).
pub fn enumerate_design_space(
    spec: &UserSpec,
    tech: &Technology,
    conditions: &OperatingConditions,
) -> Vec<ParetoSolution> {
    enumerate_design_space_with(spec, tech, conditions, 0)
}

/// [`enumerate_design_space`] with an explicit thread count (`0` = all
/// hardware threads, `1` = serial). Every point materializes through the
/// pipeline's bound [`crate::backend::EvalBackend`] (the macro model by
/// default, with its technology voltage-realized once for the whole
/// cloud, not once per point).
pub fn enumerate_design_space_with(
    spec: &UserSpec,
    tech: &Technology,
    conditions: &OperatingConditions,
    threads: usize,
) -> Vec<ParetoSolution> {
    // The problem is only used for its bound evaluator here, so bind it
    // to the serial pool rather than the hardware-width one (the
    // data-parallel fan-out below runs through `par_map` directly).
    let problem = DcimProblem::with_options(
        *spec,
        tech.clone(),
        *conditions,
        PipelineOptions::with_threads(1),
    );
    let geometries = enumerate_geometries(spec);
    par_map(&geometries, threads, |g| problem.materialize(g))
        .into_iter()
        .flatten()
        .collect()
}

/// The exact Pareto frontier of the full design space — ground truth for
/// the MOGA explorer.
pub fn exhaustive_front(
    spec: &UserSpec,
    tech: &Technology,
    conditions: &OperatingConditions,
) -> Vec<ParetoSolution> {
    let all = enumerate_design_space(spec, tech, conditions);
    // One flat matrix for the whole cloud — the dominance kernel's
    // canonical input, no per-point objective clones.
    let mut objs = ObjectiveMatrix::with_capacity(4, all.len());
    for s in &all {
        objs.push_row(&s.objectives());
    }
    let mut keep = pareto_front_indices_matrix(&objs);
    keep.sort_unstable();
    let mut front: Vec<ParetoSolution> = keep.into_iter().map(|i| all[i].clone()).collect();
    front.sort_by(|a, b| {
        a.estimate
            .area_mm2
            .partial_cmp(&b.estimate.area_mm2)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_estimator::Precision;

    fn setup() -> (Technology, OperatingConditions) {
        (Technology::tsmc28(), OperatingConditions::paper_default())
    }

    #[test]
    fn enumeration_respects_bounds() {
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let geoms = enumerate_geometries(&spec);
        assert!(!geoms.is_empty());
        for g in &geoms {
            assert!(g.log_l <= 6, "L bound");
            assert!(g.log_h >= 1 && g.log_h <= 11, "H bound");
            assert!(g.k >= 1 && g.k <= 8, "k bound");
        }
    }

    #[test]
    fn enumeration_counts_are_exact() {
        // Wstore=8192 (2^13), INT8: max_sum = 13 - 2 = 11.
        // Pairs (log_h in 1..=11, log_l in 0..=6, sum <= 11): for log_h=1..5
        // all 7 log_l fit (log_h+6 <= 11); for log_h=6..11, 12-log_h each.
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let pairs: u32 = (1..=11u32)
            .map(|h| (0..=6u32).filter(|l| h + l <= 11).count() as u32)
            .sum();
        assert_eq!(enumerate_geometries(&spec).len() as u32, pairs * 8);
    }

    #[test]
    fn every_enumerated_design_is_valid() {
        let (tech, cond) = setup();
        let spec = UserSpec::new(4096, Precision::Bf16).unwrap();
        let all = enumerate_design_space(&spec, &tech, &cond);
        assert!(!all.is_empty());
        for s in &all {
            s.design.validate().unwrap();
            assert_eq!(s.design.wstore(), 4096);
            assert!(s.estimate.area_mm2.is_finite());
        }
    }

    #[test]
    fn exhaustive_front_is_non_dominated_subset() {
        let (tech, cond) = setup();
        let spec = UserSpec::new(4096, Precision::Int4).unwrap();
        let all = enumerate_design_space(&spec, &tech, &cond);
        let front = exhaustive_front(&spec, &tech, &cond);
        assert!(!front.is_empty() && front.len() < all.len());
        // No point of the full space dominates a front member.
        for f in &front {
            for a in &all {
                assert!(
                    !sega_moga::pareto::dominates(&a.objectives(), &f.objectives()),
                    "{} dominates front member {}",
                    a.design,
                    f.design
                );
            }
        }
    }

    #[test]
    fn nsga2_recovers_most_of_the_true_front() {
        // The headline DSE quality check: with a realistic budget the GA
        // front must cover the exhaustive front's hypervolume closely.
        use sega_moga::pareto::hypervolume;
        let (tech, cond) = setup();
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let truth = exhaustive_front(&spec, &tech, &cond);
        let ga = crate::explore::explore_pareto(
            &spec,
            &tech,
            &cond,
            &sega_moga::Nsga2Config {
                population: 64,
                generations: 40,
                seed: 5,
                ..Default::default()
            },
        );
        let to_objs = |v: &[ParetoSolution]| -> Vec<Vec<f64>> {
            v.iter().map(|s| s.objectives().to_vec()).collect()
        };
        // Common reference comfortably dominating both fronts.
        let reference = vec![100.0, 100.0, 1000.0, 0.0];
        let hv_truth = hypervolume(&to_objs(&truth), &reference);
        let hv_ga = hypervolume(&to_objs(&ga.solutions), &reference);
        assert!(
            hv_ga >= 0.95 * hv_truth,
            "GA hypervolume {hv_ga:.4e} below 95% of ground truth {hv_truth:.4e}"
        );
    }
}
