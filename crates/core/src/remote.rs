//! The remote evaluation backend: cohorts shipped to a fleet of worker
//! **processes** over the `sega_wire` framed protocol — the transport +
//! async-dispatch layer the `EvalBackend` seam was built for.
//!
//! # Topology
//!
//! [`RemoteBackend::spawn`] launches N workers (`sega-dcim worker
//! --serve` by default); each worker answers [`sega_wire::frame`]
//! eval-requests until shutdown or transport EOF. One fleet serves every
//! binding the backend hands out, so a whole batch run — many specs,
//! many precisions — shares the same N processes, and each worker
//! memoizes its own [`SharedEvalCache`] across requests.
//!
//! # Transport
//!
//! The frame protocol is stream-agnostic, and the fleet link is a
//! pluggable [`TransportKind`] seam: **stdio** (piped child stdin/stdout,
//! the default), **unix-socket**, and **tcp** (loopback). Socket workers
//! are launched with `worker --connect ADDR` and dial back into the
//! coordinator's accept hub, where their capability hello
//! ([`sega_wire::frame::Hello`]: protocol version, capacity weight,
//! armed faults) is read under the same deadline as any request; the
//! negotiated capacity weights drive [`worker_of_weighted`], the
//! weighted shard partition that replaces static shard-mod when a
//! heterogeneous fleet reports uneven capacities (an all-ones fleet
//! partitions exactly like the historical `hash % N`). The front is
//! bit-identical across every transport and weighting — partitioning
//! only decides *where* a deterministic function is computed.
//!
//! # Dispatch
//!
//! [`CohortEvaluator::evaluate_cohort`] splits the (already
//! deduplicated) cohort by the same Fx-hash shard function the
//! [`KeySpace`](crate::cache::KeySpace) uses, writes **all** sub-cohort
//! requests before reading any response — the workers compute
//! concurrently while the coordinator is still dispatching — then
//! collects responses in order. Results merge back twice, and both
//! merges are order-insensitive by construction: the objective rows
//! scatter into cohort slots by index, and each response's snapshot
//! *delta* (the entries the worker computed fresh) folds into the
//! backend's sink cache through [`SharedEvalCache::load`], whose union
//! semantics are commutative and idempotent. That is why the front is
//! **bit-identical for every worker count**: partitioning only decides
//! *where* a deterministic function is computed.
//!
//! # Failure semantics: the worker lifecycle
//!
//! Every worker moves through a supervised lifecycle: **healthy** →
//! (**stalled** | **buried**) → **respawning** → **rejoined**. Each
//! outstanding request carries a deadline (worker I/O runs on a
//! reader-thread-per-worker, so the coordinator never blocks on a pipe):
//! a worker that misses it is *stalled* and treated exactly like a
//! death. A worker that dies (EOF/IO error), answers garbage (frame or
//! wire decode error), answers the wrong shape (id/row-count mismatch),
//! or stalls is **buried** — killed, reaped, its sub-cohort **requeued**
//! to a surviving worker — and, while its per-worker restart budget
//! lasts, scheduled for **respawn** under jittered exponential backoff
//! (deterministic for a given [`RemoteOptions::backoff_seed`]). A
//! respawned worker re-handshakes through the same versioned hello and
//! *rejoins* the [`FleetState::assign`] rotation. On a socket transport
//! a dropped worker has a second path back: the still-running process may
//! **reconnect** on its own and, while its retry window is open, be
//! *adopted* back into its rotation slot without a relaunch — counted in
//! [`RemoteStats::rejoins`], never double-counting in-flight work (the
//! buried connection's sub-cohort was already requeued at bury time).
//! The hello exchange itself runs under the per-request deadline, at
//! first spawn and on every reconnect: a worker that launches (or
//! connects) and never says hello is counted in
//! [`RemoteStats::timeouts`], buried like a stall, and fleet
//! construction proceeds without it. When the whole fleet is gone and no
//! respawn is due, the sub-cohort is evaluated in-process through the
//! bound macro-model fallback. Every path produces exactly one row per
//! requested geometry, so `EvalStats` accounting stays exact — and the
//! front stays bit-identical — under any fault schedule; the
//! [`RemoteStats`] ledger always satisfies
//! `workers_alive == workers_spawned − worker_deaths + respawns + rejoins`
//! and `timeouts ≤ worker_deaths`.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sega_cells::Technology;
use sega_estimator::{OperatingConditions, Precision};
use sega_parallel::Pool;
use sega_wire::frame::{
    self, EvalRequest, EvalResponse, FrameError, Hello, Message, SyncEntries, SyncRequest,
    SyncResponse, PROTOCOL_VERSION,
};
use sega_wire::snapshot::{EntryRecord, SpaceRecord};
use sega_wire::{plan_delta, CacheDigest, GeometryRecord, KeyRecord, Snapshot};

use crate::backend::{CohortEvaluator, EvalBackend, EvalTicket, MacroModelBackend};
use crate::cache::{CacheKey, FxHasher, SharedEvalCache};
use crate::explore::{Geometry, ParetoSolution};
use crate::serve::{connect_with_retry, ListenAddr, Listener, Stream};
use crate::spec::UserSpec;

/// The fleet link: how the coordinator and its worker processes talk.
/// The frame protocol, the supervision laws, and the resulting fronts
/// are identical on every variant — only the byte pipe differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Piped child stdin/stdout — the zero-configuration default.
    #[default]
    Stdio,
    /// A Unix domain socket under the temp dir; workers dial back in
    /// with `worker --connect`, which enables reconnect-and-rejoin.
    Unix,
    /// A loopback TCP socket (`127.0.0.1:0`, port negotiated at bind) —
    /// the machine-spanning transport, exercised here on localhost.
    Tcp,
}

impl TransportKind {
    /// The report/CLI name: `stdio`, `unix-socket` or `tcp`.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Stdio => "stdio",
            TransportKind::Unix => "unix-socket",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Parses a CLI `--transport` value.
    ///
    /// # Errors
    ///
    /// Names the accepted values.
    pub fn parse(raw: &str) -> Result<TransportKind, String> {
        match raw {
            "stdio" => Ok(TransportKind::Stdio),
            "unix" | "unix-socket" => Ok(TransportKind::Unix),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!(
                "unknown transport `{other}` (expected stdio, unix or tcp)"
            )),
        }
    }
}

/// How to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// The executable (normally the `sega-dcim` binary itself).
    pub program: PathBuf,
    /// Its arguments (normally `worker --serve`, plus fault-injection
    /// flags in tests).
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// The standard serving worker for `program`.
    pub fn serve(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: vec!["worker".to_owned(), "--serve".to_owned()],
        }
    }

    /// Appends extra arguments (fault-injection knobs, log verbosity).
    #[must_use]
    pub fn with_args(mut self, extra: impl IntoIterator<Item = String>) -> WorkerCommand {
        self.args.extend(extra);
        self
    }
}

/// Default per-request deadline: generous enough that a healthy worker
/// under CI load never trips it, small enough that a hung fleet member
/// cannot stall a batch for long.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(30);

/// Default per-worker respawn budget.
pub const DEFAULT_RESTART_BUDGET: u32 = 2;

/// Default base of the exponential respawn backoff.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(250);

/// Fleet configuration for [`RemoteBackend::spawn`].
///
/// The supervisor appends `--worker-id <index>` (and `--log` when
/// [`log_dir`](Self::log_dir) is set) to every worker launch, so log
/// lines carry stable identities across respawns.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// One launch command per worker.
    pub workers: Vec<WorkerCommand>,
    /// When set, each worker's stderr goes to
    /// `<log_dir>/worker-<index>.log` instead of being inherited (CI
    /// uploads these as artifacts). The directory is created if missing;
    /// log files are opened in append mode so a respawned worker
    /// continues its predecessor's log instead of erasing the evidence.
    pub log_dir: Option<PathBuf>,
    /// How long the coordinator waits for any single response before
    /// declaring the worker stalled and requeueing its sub-cohort.
    pub deadline: Duration,
    /// How many times a buried worker may be respawned. `0` disables
    /// respawning (the PR-5 shrink-only fleet behaviour).
    pub restart_budget: u32,
    /// Base delay of the exponential respawn backoff: attempt `n` waits
    /// `backoff_base · 2ⁿ · jitter` with jitter in `[1, 2)`. A zero base
    /// respawns immediately (deterministic tests).
    pub backoff_base: Duration,
    /// Seed of the deterministic backoff jitter — the same seed, worker
    /// index and attempt always yield the same delay.
    pub backoff_seed: u64,
    /// The fleet link. Socket transports additionally enable the
    /// reconnect-and-rejoin path (see [`RemoteStats::rejoins`]).
    pub transport: TransportKind,
}

impl Default for RemoteOptions {
    /// An empty fleet (which [`RemoteBackend::spawn`] rejects) with the
    /// default supervision knobs — the base for struct-update syntax.
    fn default() -> RemoteOptions {
        RemoteOptions {
            workers: Vec::new(),
            log_dir: None,
            deadline: DEFAULT_DEADLINE,
            restart_budget: DEFAULT_RESTART_BUDGET,
            backoff_base: DEFAULT_BACKOFF_BASE,
            backoff_seed: 0,
            transport: TransportKind::Stdio,
        }
    }
}

impl RemoteOptions {
    /// A homogeneous fleet of `workers` copies of
    /// [`WorkerCommand::serve`]`(program)`. A count of zero yields an
    /// empty fleet, which [`RemoteBackend::spawn`] rejects loudly — a
    /// miscomputed size should fail, not silently run single-worker.
    pub fn fleet(program: impl Into<PathBuf>, workers: usize) -> RemoteOptions {
        let command = WorkerCommand::serve(program.into());
        RemoteOptions {
            workers: vec![command; workers],
            ..RemoteOptions::default()
        }
    }

    /// Routes worker stderr to per-worker log files under `dir`.
    #[must_use]
    pub fn with_log_dir(mut self, dir: impl Into<PathBuf>) -> RemoteOptions {
        self.log_dir = Some(dir.into());
        self
    }

    /// Sets the per-request deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> RemoteOptions {
        self.deadline = deadline;
        self
    }

    /// Sets the per-worker respawn budget (`0` disables respawning).
    #[must_use]
    pub fn with_restart_budget(mut self, budget: u32) -> RemoteOptions {
        self.restart_budget = budget;
        self
    }

    /// Sets the backoff base and jitter seed.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, seed: u64) -> RemoteOptions {
        self.backoff_base = base;
        self.backoff_seed = seed;
        self
    }

    /// Sets the fleet link (default [`TransportKind::Stdio`]).
    #[must_use]
    pub fn with_transport(mut self, transport: TransportKind) -> RemoteOptions {
        self.transport = transport;
        self
    }
}

/// A point-in-time copy of the fleet's traffic counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemoteStats {
    /// Request/response exchanges completed successfully.
    pub round_trips: u64,
    /// Sub-cohorts re-dispatched after a worker failure.
    pub requeues: u64,
    /// Responses that missed the per-request deadline (the worker was
    /// declared stalled and buried; every timeout is also counted in
    /// [`worker_deaths`](Self::worker_deaths)).
    pub timeouts: u64,
    /// Workers that transitioned alive → dead.
    pub worker_deaths: u64,
    /// Buried workers successfully *relaunched* by the supervisor. The
    /// ledger `workers_alive == workers_spawned − worker_deaths +
    /// respawns + rejoins` holds at every quiescent point.
    pub respawns: u64,
    /// Buried socket workers whose still-running process reconnected on
    /// its own and was adopted back into its rotation slot — the
    /// relaunch-free half of the recovery ledger.
    pub rejoins: u64,
    /// Geometries evaluated in-process because no worker survived.
    pub fallback_geometries: u64,
    /// Geometries evaluated across the fleet (remote or fallback).
    pub geometries: u64,
    /// Cache entries installed into the sink from worker deltas.
    pub merged_entries: u64,
    /// Anti-entropy digest exchanges completed against rejoined workers
    /// (one per successful rejoin when a sink is attached).
    pub rejoin_syncs: u64,
    /// Cache entries the rejoin syncs installed into the sink — estimates
    /// the worker computed while its link was down, recovered without
    /// recomputation.
    pub sync_entries: u64,
    /// Bytes of encoded delta snapshot the rejoin syncs actually moved.
    pub sync_bytes: u64,
    /// Bytes a full-snapshot exchange would have moved in their place —
    /// `sync_bytes ≤ sync_full_bytes` is the anti-entropy saving.
    pub sync_full_bytes: u64,
    /// Workers still alive right now.
    pub workers_alive: usize,
    /// Workers the fleet was spawned with.
    pub workers_spawned: usize,
    /// The fleet link the stats describe.
    pub transport: TransportKind,
    /// Per-worker negotiated capacity weights (hello capability
    /// exchange), in worker-index order — the weights
    /// [`worker_of_weighted`] partitions by.
    pub capacities: Vec<u32>,
}

#[derive(Debug, Default)]
struct RemoteCounters {
    round_trips: AtomicU64,
    requeues: AtomicU64,
    timeouts: AtomicU64,
    worker_deaths: AtomicU64,
    respawns: AtomicU64,
    rejoins: AtomicU64,
    fallback_geometries: AtomicU64,
    geometries: AtomicU64,
    merged_entries: AtomicU64,
    rejoin_syncs: AtomicU64,
    sync_entries: AtomicU64,
    sync_bytes: AtomicU64,
    sync_full_bytes: AtomicU64,
}

/// `counters.round_trips.add(1)` — all counters are monotonic tallies.
trait Tally {
    fn add(&self, n: u64);
}

impl Tally for AtomicU64 {
    fn add(&self, n: u64) {
        self.fetch_add(n, Ordering::Relaxed);
    }
}

/// The coordinator's write half of one worker link.
#[derive(Debug)]
enum WriteHalf {
    /// The child's piped stdin (stdio transport).
    Stdio(ChildStdin),
    /// The accepted socket connection (unix/tcp transport).
    Socket(Stream),
}

impl Write for WriteHalf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WriteHalf::Stdio(stdin) => stdin.write(buf),
            WriteHalf::Socket(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            WriteHalf::Stdio(stdin) => stdin.flush(),
            WriteHalf::Socket(stream) => stream.flush(),
        }
    }
}

/// One fleet member: its framed write half plus the reader thread
/// draining its read half into a channel, so receives can carry a
/// deadline (`recv_timeout`) instead of blocking the coordinator on a
/// link a hung worker will never write to.
#[derive(Debug)]
struct WorkerHandle {
    /// The launched process. `None` only transiently, while a rejoin
    /// adoption moves the handle to the reconnected link — the process
    /// of a soft-buried socket worker stays owned (and is reaped at
    /// respawn or fleet drop) even while its connection is gone.
    child: Option<Child>,
    /// OS pid at spawn time — kept for the zombie audit after the child
    /// handle has been reaped.
    pid: u32,
    writer: Option<WriteHalf>,
    /// Frames (or the terminal transport error) from the reader thread.
    incoming: Receiver<Result<Message, FrameError>>,
    /// Responses drained off the channel while looking for a different
    /// correlation id — with multiple cohorts in flight (the async
    /// submit/wait seam), worker responses can arrive interleaved, and a
    /// ticket collecting its own id must park the others here rather
    /// than drop them.
    stash: HashMap<u64, EvalResponse>,
    /// A terminal frame/transport error drained by a non-blocking
    /// harvest, replayed to the next collect against this worker.
    pending_error: Option<FrameError>,
    reader: Option<JoinHandle<()>>,
    alive: bool,
    /// The partition weight this worker's hello negotiated (≥ 1).
    capacity: u32,
}

impl WorkerHandle {
    fn send(&mut self, message: &Message) -> Result<(), FrameError> {
        match &mut self.writer {
            Some(writer) => frame::send(writer, message),
            None => Err(FrameError::Eof),
        }
    }

    /// The next frame, or [`FrameError::Timeout`] after `deadline` — the
    /// hang-detection primitive. A disconnected channel means the reader
    /// thread exited after forwarding its terminal error, so whatever
    /// remains is an orderly EOF.
    fn recv_deadline(&mut self, deadline: Duration) -> Result<Message, FrameError> {
        match self.incoming.recv_timeout(deadline) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(FrameError::Timeout { waited: deadline }),
            Err(RecvTimeoutError::Disconnected) => Err(FrameError::Eof),
        }
    }

    /// `true` when the link is a socket — the transports whose buried
    /// workers may reconnect and rejoin.
    fn is_socket(&self) -> bool {
        matches!(self.writer, Some(WriteHalf::Socket(_)))
    }

    /// Tears down the transport link and joins the reader thread. The
    /// socket shutdown wakes a reader blocked on a socket; a stdio
    /// reader blocked on the child's stdout only wakes at pipe EOF, so
    /// `kill` must reap the process *before* calling this.
    fn close_link(&mut self) {
        self.alive = false;
        if let Some(WriteHalf::Socket(stream)) = &self.writer {
            stream.disconnect();
        }
        self.writer = None;
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }

    /// Soft bury (socket transports): the link dies, the process keeps
    /// running — it may reconnect and rejoin while the retry window is
    /// open, and is reaped at respawn or fleet drop otherwise.
    fn disconnect(&mut self) {
        self.close_link();
    }

    /// Hard bury: marks the worker dead, reaps the process and joins the
    /// reader thread. The process dies first: a hung stdio worker's
    /// reader is blocked on its stdout pipe and only the EOF from the
    /// child's death can wake it for the join in `close_link`.
    fn kill(&mut self) {
        self.alive = false;
        if let Some(child) = &mut self.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        self.close_link();
    }
}

/// Per-worker supervision bookkeeping.
#[derive(Debug, Clone, Copy, Default)]
struct Supervision {
    /// Respawn attempts consumed (successful or not).
    restarts: u32,
    /// When the next respawn attempt is due; `None` when none is
    /// scheduled (healthy, or budget exhausted).
    retry_at: Option<Instant>,
}

/// The supervision knobs, copied out of [`RemoteOptions`] at spawn.
#[derive(Debug, Clone, Copy)]
struct SupervisionConfig {
    deadline: Duration,
    restart_budget: u32,
    backoff_base: Duration,
    backoff_seed: u64,
    transport: TransportKind,
}

/// The socket accept hub: the listener the fleet's workers dial back
/// into, and the parking lot where their capability hellos wait for the
/// supervisor. The accept thread reads each connection's hello under the
/// per-request deadline (a connected-but-mute peer is cut loose, never
/// awaited), then parks the identified link by its `peer_id` — the
/// worker index whose rotation slot it claims. Both initial spawns and
/// reconnecting workers arrive through the same lot; the spawn loop and
/// [`Fleet::maintain`]'s rejoin pass are the only consumers.
#[derive(Debug)]
struct HubShared {
    /// Identified links waiting for adoption, by claimed worker index.
    /// A worker reconnecting twice replaces its stale parked link.
    pending: Mutex<HashMap<u64, (Stream, Hello)>>,
    stop: AtomicBool,
    /// Live connections whose hello is still being read — counted so a
    /// spawn poll can distinguish "not yet connected" from "connected,
    /// hello in flight" near the deadline edge.
    greeting: AtomicUsize,
}

#[derive(Debug)]
struct SocketHub {
    addr: ListenAddr,
    shared: Arc<HubShared>,
    thread: Option<JoinHandle<()>>,
}

impl SocketHub {
    /// Binds a fresh coordinator listen address for `transport` and
    /// starts the accept thread.
    fn start(transport: TransportKind, hello_deadline: Duration) -> Result<SocketHub, String> {
        static NEXT_HUB: AtomicU64 = AtomicU64::new(0);
        let requested = match transport {
            TransportKind::Unix => ListenAddr::Unix(std::env::temp_dir().join(format!(
                "sega-fleet-{}-{}.sock",
                std::process::id(),
                NEXT_HUB.fetch_add(1, Ordering::Relaxed)
            ))),
            TransportKind::Tcp => ListenAddr::Tcp("127.0.0.1:0".to_owned()),
            TransportKind::Stdio => return Err("stdio transport has no socket hub".to_owned()),
        };
        let (listener, addr) = Listener::bind(&requested)
            .map_err(|e| format!("cannot bind fleet hub `{requested}`: {e}"))?;
        listener
            .set_nonblocking()
            .map_err(|e| format!("cannot poll fleet hub `{addr}`: {e}"))?;
        let shared = Arc::new(HubShared {
            pending: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            greeting: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("sega-fleet-hub".to_owned())
            .spawn(move || {
                while !accept_shared.stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok(mut stream) => {
                            accept_shared.greeting.fetch_add(1, Ordering::SeqCst);
                            // The hello runs under the same deadline as
                            // any request: a mute peer is dropped here.
                            let _ = stream.set_read_timeout(Some(hello_deadline));
                            if let Ok(Message::Hello(hello)) = frame::recv(&mut stream) {
                                if hello.role == "worker" {
                                    let _ = stream.set_read_timeout(None);
                                    accept_shared
                                        .pending
                                        .lock()
                                        .expect("hub lot poisoned")
                                        .insert(hello.peer_id, (stream, hello));
                                }
                            }
                            accept_shared.greeting.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .map_err(|e| format!("cannot start fleet hub thread: {e}"))?;
        Ok(SocketHub {
            addr,
            shared,
            thread: Some(thread),
        })
    }

    /// Waits up to `deadline` for the link claiming worker index `index`
    /// to finish its hello and park. `None` is the hello timeout.
    fn claim(&self, index: usize, deadline: Duration) -> Option<(Stream, Hello)> {
        let due = Instant::now() + deadline;
        loop {
            if let Some(parked) = self
                .shared
                .pending
                .lock()
                .expect("hub lot poisoned")
                .remove(&(index as u64))
            {
                return Some(parked);
            }
            // Grace past the nominal deadline while a hello is actively
            // in flight, so a worker that connected in time is not
            // tombstoned over scheduler jitter in the accept thread.
            if Instant::now() >= due && self.shared.greeting.load(Ordering::SeqCst) == 0 {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Discards a stale parked link for worker `index`, if any.
    fn evict(&self, index: usize) {
        self.shared
            .pending
            .lock()
            .expect("hub lot poisoned")
            .remove(&(index as u64));
    }
}

impl Drop for SocketHub {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[derive(Debug)]
struct FleetState {
    workers: Vec<WorkerHandle>,
    supervise: Vec<Supervision>,
    /// The launch commands, kept so a buried worker can be respawned
    /// with its original configuration.
    commands: Vec<WorkerCommand>,
    log_dir: Option<PathBuf>,
    next_id: u64,
}

impl FleetState {
    /// The worker to dispatch shard `preferred` to: itself when alive,
    /// else the next alive worker scanning upward (deterministic, so a
    /// degraded fleet still partitions stably). `None` when every worker
    /// is dead.
    fn assign(&self, preferred: usize) -> Option<usize> {
        let n = self.workers.len();
        (0..n)
            .map(|offset| (preferred + offset) % n)
            .find(|&w| self.workers[w].alive)
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }
}

/// SplitMix64 — the deterministic jitter generator (self-contained, no
/// RNG dependency; good dispersion from sequential seeds).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The delay before respawn attempt `attempt` of worker `w`:
/// `base · 2^attempt · jitter`, jitter deterministically in `[1, 2)`
/// from `(seed, worker, attempt)` — so colliding respawns of different
/// workers spread out, yet a seeded test replays the exact schedule.
fn backoff_delay(config: &SupervisionConfig, worker: usize, attempt: u32) -> Duration {
    let doubled = config.backoff_base.saturating_mul(1u32 << attempt.min(16));
    let bits = splitmix64(config.backoff_seed ^ ((worker as u64) << 32) ^ u64::from(attempt));
    let jitter = 1.0 + (bits >> 11) as f64 / (1u64 << 53) as f64;
    doubled.mul_f64(jitter)
}

/// How long [`Fleet::drop`] waits for workers to exit after the shutdown
/// frame before force-killing them — a dead coordinator must never hang
/// on a hung worker.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(2);

/// The spawned worker fleet: shared by every evaluator the backend
/// binds. The transport exchange of one cohort holds the fleet lock, so
/// concurrent explorations serialize at the pipe (the workers themselves
/// still compute one cohort's sub-cohorts concurrently).
#[derive(Debug)]
struct Fleet {
    state: Mutex<FleetState>,
    counters: RemoteCounters,
    spawned: usize,
    config: SupervisionConfig,
    /// The socket accept hub (`None` on stdio) — reconnecting workers
    /// park here until the rejoin pass adopts them.
    hub: Option<SocketHub>,
}

impl Fleet {
    /// Buries worker `w` (counted once per transition) and, while the
    /// restart budget lasts, schedules a backed-off respawn. On stdio
    /// the process is killed and reaped with its link; on a socket
    /// transport only the *link* dies — the process may reconnect and
    /// rejoin inside the retry window (the rejoin pass), and is reaped
    /// at respawn or fleet drop otherwise. Either way the sub-cohort was
    /// already requeued by the caller, so a later rejoin can never
    /// double-count in-flight work.
    fn bury(&self, state: &mut FleetState, w: usize) {
        if !state.workers[w].alive {
            return;
        }
        if state.workers[w].is_socket() {
            state.workers[w].disconnect();
        } else {
            state.workers[w].kill();
        }
        self.counters.worker_deaths.add(1);
        let sup = &mut state.supervise[w];
        if sup.restarts < self.config.restart_budget {
            sup.retry_at = Some(Instant::now() + backoff_delay(&self.config, w, sup.restarts));
        }
    }

    /// The recovery pass, two halves. **Rejoin** (socket transports):
    /// a buried worker whose still-running process has reconnected and
    /// parked in the hub is adopted back into its rotation slot — no
    /// relaunch, counted in `rejoins`, budget charged like a respawn.
    /// **Respawn**: every buried worker whose backoff has elapsed is
    /// relaunched with its original command and re-handshaken; on
    /// success it rejoins the [`FleetState::assign`] rotation. Called at
    /// cohort start and inside the recovery loop — never from a timer,
    /// so a quiet backend spawns nothing behind the caller's back.
    ///
    /// With a `sink`, every adopted rejoin is followed by an
    /// anti-entropy digest exchange ([`Fleet::sync_rejoined`]): the
    /// worker may hold estimates it computed while its link was down
    /// (the response that died with the link), and the sync recovers
    /// them into the sink without recomputation — moving only the
    /// entries the digests prove missing, never a whole snapshot.
    fn maintain(&self, state: &mut FleetState, sink: Option<&SharedEvalCache>) {
        if let Some(hub) = &self.hub {
            for w in 0..state.workers.len() {
                if state.workers[w].alive || state.supervise[w].retry_at.is_none() {
                    // Healthy, or retry budget closed: any parked link
                    // for this slot is stale — drop it.
                    hub.evict(w);
                    continue;
                }
                let Some((stream, hello)) = hub
                    .shared
                    .pending
                    .lock()
                    .expect("hub lot poisoned")
                    .remove(&(w as u64))
                else {
                    continue;
                };
                if hello.protocol != PROTOCOL_VERSION {
                    continue;
                }
                // The reconnecting process IS the child this handle
                // already owns — move it into the adopted handle, never
                // kill it.
                let child = state.workers[w].child.take();
                let pid = state.workers[w].pid;
                match adopt_link(child, pid, stream, &hello, w) {
                    Ok(handle) => {
                        state.workers[w] = handle;
                        state.supervise[w].restarts += 1;
                        state.supervise[w].retry_at = None;
                        self.counters.rejoins.add(1);
                        // Recover what the worker computed while its
                        // link was down. A failed exchange re-buries:
                        // the link just proved itself unreliable, and
                        // the next maintain pass can try again.
                        if let Some(sink) = sink {
                            if let Err(e) = self.sync_rejoined(&mut state.workers[w], sink) {
                                eprintln!("warning: rejoin sync of worker {w} failed: {e}");
                                self.bury(state, w);
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("warning: rejoin of worker {w} failed: {e}");
                    }
                }
            }
        }
        let now = Instant::now();
        for w in 0..state.workers.len() {
            if state.workers[w].alive || !matches!(state.supervise[w].retry_at, Some(t) if t <= now)
            {
                continue;
            }
            state.supervise[w].retry_at = None;
            let attempt = state.supervise[w].restarts;
            // A fresh launch replaces whatever is left of the old
            // incarnation: reap its (soft-buried) process and discard
            // any stale parked reconnect, so the hub key is free for the
            // relaunch's hello.
            if let Some(child) = state.workers[w].child.as_mut() {
                let _ = child.kill();
                let _ = child.wait();
            }
            if let Some(hub) = &self.hub {
                hub.evict(w);
            }
            let respawned = spawn_worker_on(
                &state.commands[w],
                w,
                state.log_dir.as_deref(),
                &self.config,
                self.hub.as_ref(),
            );
            match respawned {
                Ok(worker) => {
                    state.workers[w] = worker;
                    state.supervise[w].restarts = attempt + 1;
                    self.counters.respawns.add(1);
                }
                Err(SpawnError::HelloTimeout(tombstone)) => {
                    // The relaunch came up but never said hello inside
                    // the deadline: it was killed and entombed. Count
                    // the full cycle — respawn, timeout, death — so the
                    // ledger stays balanced (net-zero on `alive`) and
                    // `timeouts ≤ worker_deaths` still holds.
                    state.workers[w] = *tombstone;
                    self.counters.respawns.add(1);
                    self.counters.timeouts.add(1);
                    self.counters.worker_deaths.add(1);
                    let sup = &mut state.supervise[w];
                    sup.restarts = attempt + 1;
                    if sup.restarts < self.config.restart_budget {
                        sup.retry_at =
                            Some(Instant::now() + backoff_delay(&self.config, w, sup.restarts));
                    }
                }
                Err(SpawnError::Fatal(e)) => {
                    eprintln!("warning: respawn of worker {w} failed: {e}");
                    let sup = &mut state.supervise[w];
                    sup.restarts = attempt + 1;
                    if sup.restarts < self.config.restart_budget {
                        sup.retry_at =
                            Some(Instant::now() + backoff_delay(&self.config, w, sup.restarts));
                    }
                }
            }
        }
    }

    /// One anti-entropy exchange against a just-rejoined worker: send
    /// the sink's digest, receive the plan summary and the missing
    /// entries, union-merge them into the sink. Runs synchronously on a
    /// fresh link with nothing in flight, bounded by the per-request
    /// deadline — a silent worker fails the exchange instead of pinning
    /// the maintenance pass.
    fn sync_rejoined(
        &self,
        worker: &mut WorkerHandle,
        sink: &SharedEvalCache,
    ) -> Result<(), String> {
        let id = self.counters.rejoins.load(Ordering::Relaxed);
        let digest = CacheDigest::of(&sink.snapshot());
        worker
            .send(&Message::SyncRequest(SyncRequest { id, digest }))
            .map_err(|e| format!("sync request: {e}"))?;
        let deadline = self.config.deadline;
        let summary = match worker.recv_deadline(deadline) {
            Ok(Message::SyncResponse(resp)) if resp.id == id => resp,
            Ok(other) => return Err(format!("expected a sync summary, got {other:?}")),
            Err(e) => return Err(format!("sync summary: {e}")),
        };
        let entries = match worker.recv_deadline(deadline) {
            Ok(Message::SyncEntries(entries)) if entries.id == id => entries,
            Ok(other) => return Err(format!("expected sync entries, got {other:?}")),
            Err(e) => return Err(format!("sync entries: {e}")),
        };
        let installed = sink
            .load(&entries.delta)
            .map_err(|e| format!("sync delta rejected: {e}"))?;
        self.counters.rejoin_syncs.add(1);
        self.counters.sync_entries.add(installed as u64);
        self.counters.sync_bytes.add(summary.delta_bytes);
        self.counters.sync_full_bytes.add(summary.full_bytes);
        Ok(())
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Ask every live worker to exit, then close its link — a
        // healthy worker leaves on either signal.
        for worker in &mut state.workers {
            if worker.alive {
                let _ = worker.send(&Message::Shutdown);
                if let Some(WriteHalf::Socket(stream)) = &worker.writer {
                    stream.disconnect();
                }
                worker.writer = None;
            }
        }
        // Bounded wait: a worker that ignores the shutdown (hung fault
        // injection, wedged estimator) is force-killed at the grace
        // deadline, so dropping a backend can never hang the process —
        // and every child is reaped, so none is left a zombie. Dead
        // workers are reaped too: a soft-buried socket worker's process
        // outlives its link on purpose (the rejoin window), and this is
        // where that purpose ends.
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        for worker in &mut state.workers {
            if let Some(child) = worker.child.as_mut() {
                if worker.alive {
                    loop {
                        match child.try_wait() {
                            Ok(Some(_)) | Err(_) => break,
                            Ok(None) => {
                                if Instant::now() >= deadline {
                                    let _ = child.kill();
                                    let _ = child.wait();
                                    break;
                                }
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                } else {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
            worker.alive = false;
            if let Some(reader) = worker.reader.take() {
                let _ = reader.join();
            }
        }
    }
}

/// [`EvalBackend`] over a fleet of worker processes. See the module docs
/// for the protocol and failure semantics.
#[derive(Debug)]
pub struct RemoteBackend {
    fleet: Arc<Fleet>,
    /// Worker snapshot deltas are union-merged here. Defaults to a
    /// private cache; [`RemoteBackend::with_sink`] points it at a shared
    /// one so a batch run's `--cache-file` persists remote results.
    sink: Arc<SharedEvalCache>,
    /// The in-process estimator used when the whole fleet is dead, and
    /// for [`CohortEvaluator::materialize`] (presentation is local).
    fallback: MacroModelBackend,
}

impl RemoteBackend {
    /// Spawns the fleet and completes the hello handshake with every
    /// worker.
    ///
    /// A worker that launches but misses the hello **deadline** (the
    /// per-request deadline applies to the handshake too) does *not*
    /// fail the spawn: it is killed, entombed, counted in
    /// [`RemoteStats::timeouts`] and [`RemoteStats::worker_deaths`], and
    /// scheduled for respawn under the budget — a never-helloing peer
    /// must not stall fleet construction.
    ///
    /// # Errors
    ///
    /// An empty fleet, the launch error, a garbage/EOF handshake, or a
    /// protocol-version mismatch of the first worker that fails —
    /// failing the whole spawn keeps configuration mistakes loud (a
    /// *later* death is handled by requeueing instead).
    pub fn spawn(options: RemoteOptions) -> Result<RemoteBackend, String> {
        if options.workers.is_empty() {
            return Err("a remote fleet needs at least one worker command".to_owned());
        }
        let config = SupervisionConfig {
            deadline: options.deadline,
            restart_budget: options.restart_budget,
            backoff_base: options.backoff_base,
            backoff_seed: options.backoff_seed,
            transport: options.transport,
        };
        let hub = match options.transport {
            TransportKind::Stdio => None,
            TransportKind::Unix | TransportKind::Tcp => {
                Some(SocketHub::start(options.transport, options.deadline)?)
            }
        };
        let mut workers: Vec<WorkerHandle> = Vec::with_capacity(options.workers.len());
        let mut supervise = vec![Supervision::default(); options.workers.len()];
        let mut timeouts: u64 = 0;
        for (index, command) in options.workers.iter().enumerate() {
            let spawned = spawn_worker_on(
                command,
                index,
                options.log_dir.as_deref(),
                &config,
                hub.as_ref(),
            );
            match spawned {
                Ok(worker) => workers.push(worker),
                Err(SpawnError::HelloTimeout(tombstone)) => {
                    // Buried like a stall: counted, entombed, respawn
                    // scheduled under the budget — construction proceeds.
                    timeouts += 1;
                    if config.restart_budget > 0 {
                        supervise[index].retry_at =
                            Some(Instant::now() + backoff_delay(&config, index, 0));
                    }
                    workers.push(*tombstone);
                }
                Err(SpawnError::Fatal(e)) => {
                    // Reap the part of the fleet that did spawn — a
                    // failed spawn must not leak zombie processes.
                    for worker in &mut workers {
                        worker.kill();
                    }
                    return Err(e);
                }
            }
        }
        let spawned = workers.len();
        let counters = RemoteCounters::default();
        counters.timeouts.add(timeouts);
        counters.worker_deaths.add(timeouts);
        Ok(RemoteBackend {
            fleet: Arc::new(Fleet {
                state: Mutex::new(FleetState {
                    workers,
                    supervise,
                    commands: options.workers,
                    log_dir: options.log_dir,
                    next_id: 0,
                }),
                counters,
                spawned,
                config,
                hub,
            }),
            sink: Arc::new(SharedEvalCache::new()),
            fallback: MacroModelBackend,
        })
    }

    /// Merges worker snapshot deltas into `cache` instead of the
    /// backend's private sink — point it at a batch run's shared cache
    /// so remotely computed estimates persist with `--cache-file`.
    #[must_use]
    pub fn with_sink(mut self, cache: Arc<SharedEvalCache>) -> RemoteBackend {
        self.sink = cache;
        self
    }

    /// The cache worker deltas merge into.
    pub fn sink(&self) -> &Arc<SharedEvalCache> {
        &self.sink
    }

    /// The fleet's traffic counters, now.
    pub fn stats(&self) -> RemoteStats {
        let c = &self.fleet.counters;
        let state = self.fleet.state.lock().expect("fleet state poisoned");
        RemoteStats {
            round_trips: c.round_trips.load(Ordering::Relaxed),
            requeues: c.requeues.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            worker_deaths: c.worker_deaths.load(Ordering::Relaxed),
            respawns: c.respawns.load(Ordering::Relaxed),
            rejoins: c.rejoins.load(Ordering::Relaxed),
            fallback_geometries: c.fallback_geometries.load(Ordering::Relaxed),
            geometries: c.geometries.load(Ordering::Relaxed),
            merged_entries: c.merged_entries.load(Ordering::Relaxed),
            rejoin_syncs: c.rejoin_syncs.load(Ordering::Relaxed),
            sync_entries: c.sync_entries.load(Ordering::Relaxed),
            sync_bytes: c.sync_bytes.load(Ordering::Relaxed),
            sync_full_bytes: c.sync_full_bytes.load(Ordering::Relaxed),
            workers_alive: state.alive_count(),
            workers_spawned: self.fleet.spawned,
            transport: self.fleet.config.transport,
            capacities: state.workers.iter().map(|w| w.capacity).collect(),
        }
    }

    /// The OS pids of every worker the fleet currently holds (alive or
    /// buried) — the zombie audit in the spawned-process tests reads
    /// `/proc/<pid>` through this.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.fleet
            .state
            .lock()
            .expect("fleet state poisoned")
            .workers
            .iter()
            .map(|w| w.pid)
            .collect()
    }
}

/// How one worker spawn failed.
enum SpawnError {
    /// Configuration-grade failure (launch error, garbage/EOF handshake,
    /// protocol skew): the whole spawn fails loudly.
    Fatal(String),
    /// The worker launched but missed the hello **deadline**: it was
    /// killed, and construction continues with this tombstone in the
    /// slot — the caller counts the timeout+death and schedules respawn.
    HelloTimeout(Box<WorkerHandle>),
}

/// Starts the reader thread for one worker link and assembles its live
/// handle.
fn live_handle(
    child: Option<Child>,
    pid: u32,
    writer: WriteHalf,
    mut read_half: Box<dyn Read + Send>,
    index: usize,
    capacity: u32,
) -> Result<WorkerHandle, String> {
    let (tx, incoming) = mpsc::channel();
    let reader = std::thread::Builder::new()
        .name(format!("sega-worker-{index}-reader"))
        .spawn(move || loop {
            let result = frame::recv(&mut read_half);
            let stop = result.is_err();
            if tx.send(result).is_err() || stop {
                break;
            }
        })
        .map_err(|e| format!("worker {index} reader thread: {e}"))?;
    Ok(WorkerHandle {
        child,
        pid,
        writer: Some(writer),
        incoming,
        stash: HashMap::new(),
        pending_error: None,
        reader: Some(reader),
        alive: true,
        capacity: capacity.max(1),
    })
}

/// Kills and entombs a worker that never said hello: a dead handle
/// (closed channel, capacity 1) holding the reaped child for the audit
/// trail.
fn entomb(mut child: Child) -> Box<WorkerHandle> {
    let pid = child.id();
    let _ = child.kill();
    let _ = child.wait();
    let (_closed, incoming) = mpsc::channel();
    Box::new(WorkerHandle {
        child: Some(child),
        pid,
        writer: None,
        incoming,
        stash: HashMap::new(),
        pending_error: None,
        reader: None,
        alive: false,
        capacity: 1,
    })
}

/// Adopts an identified socket link (initial hello or reconnect) into a
/// live handle for rotation slot `index`.
fn adopt_link(
    child: Option<Child>,
    pid: u32,
    stream: Stream,
    hello: &Hello,
    index: usize,
) -> Result<WorkerHandle, String> {
    let read_half = stream
        .try_clone()
        .map_err(|e| format!("worker {index} link clone: {e}"))?;
    // Clones share the socket's read timeout; clear the hub's hello
    // deadline so in-service reads block until the coordinator's own
    // channel deadline decides.
    read_half
        .set_read_timeout(None)
        .map_err(|e| format!("worker {index} link timeout reset: {e}"))?;
    live_handle(
        child,
        pid,
        WriteHalf::Socket(stream),
        Box::new(BufReader::new(read_half)),
        index,
        hello.capacity,
    )
}

fn spawn_worker_on(
    command: &WorkerCommand,
    index: usize,
    log_dir: Option<&std::path::Path>,
    config: &SupervisionConfig,
    hub: Option<&SocketHub>,
) -> Result<WorkerHandle, SpawnError> {
    let fatal = SpawnError::Fatal;
    let mut args = command.args.clone();
    if let Some(hub) = hub {
        // Socket transport: the worker dials back into the hub instead
        // of serving its stdio (`--connect` takes precedence over
        // `--serve` in the worker CLI, so the standard serve command
        // works unchanged on every transport).
        args.push("--connect".to_owned());
        args.push(hub.addr.to_string());
    }
    args.push("--worker-id".to_owned());
    args.push(index.to_string());
    let stderr = match log_dir {
        Some(dir) => {
            // Created here (not once at spawn) so respawns survive a CI
            // step deleting the directory between arms; append mode so a
            // respawned worker continues its predecessor's log instead
            // of erasing the evidence.
            std::fs::create_dir_all(dir).map_err(|e| {
                fatal(format!(
                    "cannot create worker log dir `{}`: {e}",
                    dir.display()
                ))
            })?;
            let path = dir.join(format!("worker-{index}.log"));
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| fatal(format!("cannot open worker log `{}`: {e}", path.display())))?;
            args.push("--log".to_owned());
            Stdio::from(file)
        }
        None => Stdio::inherit(),
    };
    let stdio = hub.is_none();
    let mut child = Command::new(&command.program)
        .args(&args)
        .stdin(if stdio { Stdio::piped() } else { Stdio::null() })
        .stdout(if stdio { Stdio::piped() } else { Stdio::null() })
        .stderr(stderr)
        .spawn()
        .map_err(|e| {
            fatal(format!(
                "cannot spawn worker `{}`: {e}",
                command.program.display()
            ))
        })?;

    if let Some(hub) = hub {
        // Socket handshake: the hub's accept thread reads the hello
        // under the deadline and parks the identified link by worker
        // index; claim it here.
        return match hub.claim(index, config.deadline) {
            Some((stream, hello)) if hello.protocol == PROTOCOL_VERSION => {
                let pid = child.id();
                adopt_link(Some(child), pid, stream, &hello, index).map_err(fatal)
            }
            Some((_, hello)) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(fatal(format!(
                    "worker {index} speaks protocol {}, coordinator speaks {PROTOCOL_VERSION}",
                    hello.protocol
                )))
            }
            None => Err(SpawnError::HelloTimeout(entomb(child))),
        };
    }

    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let pid = child.id();
    // Hello handshake under the per-request deadline: the reader thread
    // starts first and the hello arrives through its channel, so a
    // worker that never says hello costs one deadline, not forever.
    let mut handle = live_handle(
        Some(child),
        pid,
        WriteHalf::Stdio(stdin),
        Box::new(stdout),
        index,
        1,
    )
    .map_err(fatal)?;
    match handle.incoming.recv_timeout(config.deadline) {
        Ok(Ok(Message::Hello(hello))) if hello.protocol == PROTOCOL_VERSION => {
            handle.capacity = hello.capacity.max(1);
            Ok(handle)
        }
        Ok(Ok(Message::Hello(hello))) => {
            handle.kill();
            Err(fatal(format!(
                "worker {index} speaks protocol {}, coordinator speaks {PROTOCOL_VERSION}",
                hello.protocol
            )))
        }
        Ok(Ok(_)) => {
            handle.kill();
            Err(fatal(format!(
                "worker {index} sent a non-hello first frame"
            )))
        }
        Ok(Err(e)) => {
            handle.kill();
            Err(fatal(format!("worker {index} handshake failed: {e}")))
        }
        Err(_) => {
            handle.kill();
            let child = handle.child.take().expect("spawned child");
            Err(SpawnError::HelloTimeout(entomb(child)))
        }
    }
}

impl EvalBackend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn bind(
        &self,
        spec: &UserSpec,
        tech: &Technology,
        conditions: &OperatingConditions,
    ) -> Arc<dyn CohortEvaluator> {
        Arc::new(RemoteEvaluator {
            key: CacheKey::new(tech, conditions, spec.precision, spec.wstore).to_record(),
            fleet: Arc::clone(&self.fleet),
            sink: Arc::clone(&self.sink),
            fallback: self.fallback.bind(spec, tech, conditions),
        })
    }
}

/// [`RemoteBackend`] bound to one exploration's invariants: the key
/// record every request carries, plus the shared fleet. `Clone` is
/// cheap (a key record and three `Arc`s) — a [`RemoteTicket`] carries a
/// clone so an in-flight cohort can outlive the borrow that submitted
/// it.
#[derive(Debug, Clone)]
struct RemoteEvaluator {
    key: KeyRecord,
    fleet: Arc<Fleet>,
    sink: Arc<SharedEvalCache>,
    fallback: Arc<dyn CohortEvaluator>,
}

/// The worker a geometry belongs to under the negotiated capacity
/// weights: the same Fx-hash the cache's
/// [`KeySpace`](crate::cache::KeySpace) shards by, reduced into one of
/// `Σ capacities` shares and mapped to the worker owning that share —
/// a worker advertising capacity `c` owns `c` consecutive shares. With
/// all-ones capacities (every stdio fleet, and any socket fleet that
/// does not opt in) this is exactly the historical `hash % N`, so the
/// partition — and every worker's memoized shard — is unchanged. The
/// function is deterministic per `(geometry, capacities)`, so one
/// geometry always lands on the same (alive) worker and worker-side
/// memoization actually hits.
pub fn worker_of_weighted(g: &Geometry, capacities: &[u32]) -> usize {
    use std::hash::{Hash, Hasher};
    let total: u64 = capacities.iter().map(|&c| u64::from(c.max(1))).sum();
    let mut h = FxHasher::default();
    g.hash(&mut h);
    let mut share = h.finish() % total.max(1);
    for (w, &c) in capacities.iter().enumerate() {
        let owned = u64::from(c.max(1));
        if share < owned {
            return w;
        }
        share -= owned;
    }
    capacities.len().saturating_sub(1)
}

fn record_of(g: &Geometry) -> GeometryRecord {
    GeometryRecord {
        log_h: g.log_h,
        log_l: g.log_l,
        k: g.k,
    }
}

/// A response with the right correlation id but the wrong number of rows
/// is malformed — the id already matched, so only the shape can lie.
fn validate_shape(
    resp: EvalResponse,
    id: u64,
    expected_rows: usize,
) -> Result<EvalResponse, FrameError> {
    if resp.rows.len() == expected_rows {
        Ok(resp)
    } else {
        Err(FrameError::Wire(sega_wire::WireError::Malformed(format!(
            "response shape mismatch: id {} rows {} (expected id {id} rows {expected_rows})",
            resp.id,
            resp.rows.len()
        ))))
    }
}

/// One cohort between [`RemoteEvaluator::submit_inner`] and
/// [`RemoteEvaluator::wait_inner`]: the dispatched requests, the
/// sub-cohorts that already need recovery, and the output rows filled in
/// so far. The fleet lock is **not** held across this gap — that is the
/// point of the async seam — so responses landing while the coordinator
/// does other work wait in the worker channels (or another ticket's
/// collect parks them in the per-worker stash).
#[derive(Debug)]
struct InflightCohort {
    cohort: Vec<Geometry>,
    out: Vec<[f64; 4]>,
    /// `(worker, correlation id, cohort slots)` in dispatch order.
    inflight: Vec<(usize, u64, Vec<usize>)>,
    /// Sub-cohorts whose dispatch already failed (worker buried).
    requeue: Vec<Vec<usize>>,
    /// Slots that never had a live worker — straight to the fallback.
    orphans: Vec<usize>,
}

impl RemoteEvaluator {
    /// Writes the eval-request for the cohort slots in `slots` to worker
    /// `w`, returning the correlation id to [`collect`](Self::collect)
    /// on. The caller owns the fleet lock.
    fn dispatch(
        &self,
        state: &mut FleetState,
        w: usize,
        cohort: &[Geometry],
        slots: &[usize],
    ) -> Result<u64, FrameError> {
        let id = state.fresh_id();
        let request = Message::Request(EvalRequest {
            id,
            key: self.key.clone(),
            cohort: slots.iter().map(|&i| record_of(&cohort[i])).collect(),
        });
        state.workers[w].send(&request)?;
        Ok(id)
    }

    /// One synchronous request/response exchange with worker `w` for the
    /// cohort slots in `slots`. The caller owns the fleet lock.
    fn exchange(
        &self,
        state: &mut FleetState,
        w: usize,
        cohort: &[Geometry],
        slots: &[usize],
    ) -> Result<EvalResponse, FrameError> {
        let id = self.dispatch(state, w, cohort, slots)?;
        self.collect(state, w, id, slots.len())
    }

    /// Reads worker `w`'s response for correlation id `id` — bounded by
    /// the fleet's per-request deadline, so a hung worker surfaces as
    /// [`FrameError::Timeout`] (counted) instead of blocking the batch —
    /// and validates its row count. The stash is consulted first and
    /// fed in turn: with several cohorts in flight on the async seam,
    /// the worker's responses can arrive interleaved, so a frame
    /// answering a *different* id is parked for that id's collect
    /// instead of being treated as a protocol error.
    fn collect(
        &self,
        state: &mut FleetState,
        w: usize,
        id: u64,
        expected_rows: usize,
    ) -> Result<EvalResponse, FrameError> {
        loop {
            if let Some(resp) = state.workers[w].stash.remove(&id) {
                return validate_shape(resp, id, expected_rows);
            }
            if let Some(e) = state.workers[w].pending_error.take() {
                return Err(e);
            }
            let frame = match state.workers[w].recv_deadline(self.fleet.config.deadline) {
                Ok(frame) => frame,
                Err(e) => {
                    if matches!(e, FrameError::Timeout { .. }) {
                        self.fleet.counters.timeouts.add(1);
                    }
                    return Err(e);
                }
            };
            match frame {
                Message::Response(resp) if resp.id == id => {
                    return validate_shape(resp, id, expected_rows);
                }
                Message::Response(resp) => {
                    state.workers[w].stash.insert(resp.id, resp);
                }
                _ => {
                    return Err(FrameError::Wire(sega_wire::WireError::Malformed(
                        "worker sent a non-response frame".to_owned(),
                    )))
                }
            }
        }
    }

    /// Drains worker `w`'s channel without blocking, parking responses in
    /// the stash and a terminal error in `pending_error` — the
    /// [`EvalTicket::poll`] primitive.
    fn harvest(&self, state: &mut FleetState, w: usize) {
        loop {
            match state.workers[w].incoming.try_recv() {
                Ok(Ok(Message::Response(resp))) => {
                    state.workers[w].stash.insert(resp.id, resp);
                }
                Ok(Ok(_)) => {
                    state.workers[w].pending_error =
                        Some(FrameError::Wire(sega_wire::WireError::Malformed(
                            "worker sent a non-response frame".to_owned(),
                        )));
                    return;
                }
                Ok(Err(e)) => {
                    state.workers[w].pending_error = Some(e);
                    return;
                }
                Err(_) => return, // empty or disconnected: nothing buffered
            }
        }
    }

    /// Buries worker `w` through the fleet's supervisor (kill + reap,
    /// counted once per transition, respawn scheduled under the budget).
    fn bury(&self, state: &mut FleetState, w: usize) {
        self.fleet.bury(state, w);
    }

    /// Applies one successful response: scatter rows into `out` by slot
    /// and fold the delta into the sink.
    fn apply(&self, resp: &EvalResponse, slots: &[usize], out: &mut [[f64; 4]]) {
        for (&slot, row) in slots.iter().zip(&resp.rows) {
            out[slot] = *row;
        }
        match self.sink.load(&resp.delta) {
            Ok(installed) => self.fleet.counters.merged_entries.add(installed as u64),
            // A delta that decoded as a frame but won't install (e.g. a
            // worker from a newer build naming an unknown precision)
            // only costs cache warmth, never correctness — the rows
            // above are already applied. Say so instead of silently
            // degrading every warm start.
            Err(e) => eprintln!("warning: dropping a worker's cache delta: {e}"),
        }
        self.fleet.counters.round_trips.add(1);
    }

    /// Phase 1 of a cohort — partition and pipelined dispatch. Writes
    /// every sub-cohort request before returning, so the fleet computes
    /// while the coordinator does other work (breeding the next
    /// speculative generation, say); the lock is released when this
    /// returns.
    fn submit_inner(&self, cohort: &[Geometry]) -> InflightCohort {
        let mut flight = InflightCohort {
            cohort: cohort.to_vec(),
            out: vec![[f64::NAN; 4]; cohort.len()],
            inflight: Vec::new(),
            requeue: Vec::new(),
            orphans: Vec::new(),
        };
        if flight.cohort.is_empty() {
            return flight;
        }
        self.fleet
            .counters
            .geometries
            .add(flight.cohort.len() as u64);
        let mut state = self.fleet.state.lock().expect("fleet state poisoned");
        // Respawn pass: buried workers whose backoff elapsed rejoin the
        // rotation before this cohort partitions.
        self.fleet.maintain(&mut state, Some(&self.sink));
        let fleet_size = state.workers.len();

        // Partition by weighted shard onto alive workers; orphans (no
        // fleet left) go straight to the in-process fallback at wait
        // time. The capacity vector covers dead workers too (their last
        // negotiated weight), so the preferred assignment is stable
        // across deaths and `assign` alone decides the detour.
        let capacities: Vec<u32> = state.workers.iter().map(|w| w.capacity).collect();
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); fleet_size];
        for (i, g) in flight.cohort.iter().enumerate() {
            match state.assign(worker_of_weighted(g, &capacities)) {
                Some(w) => parts[w].push(i),
                None => flight.orphans.push(i),
            }
        }

        // Pipeline: write every sub-cohort request before reading any
        // response, so the fleet computes concurrently.
        for (w, slots) in parts.into_iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            match self.dispatch(&mut state, w, &flight.cohort, &slots) {
                Ok(id) => flight.inflight.push((w, id, slots)),
                Err(_) => {
                    self.bury(&mut state, w);
                    flight.requeue.push(slots);
                }
            }
        }
        flight
    }

    /// How many of the flight's geometries already have a response
    /// buffered (applied rows are not tracked separately before wait, so
    /// this counts stashed/channel-landed sub-cohorts) — a cheap
    /// progress probe, never blocking.
    fn poll_inner(&self, flight: &InflightCohort) -> usize {
        if flight.cohort.is_empty() {
            return 0;
        }
        let mut state = self.fleet.state.lock().expect("fleet state poisoned");
        let mut landed = 0;
        for &(w, id, ref slots) in &flight.inflight {
            self.harvest(&mut state, w);
            if state.workers[w].stash.contains_key(&id) {
                landed += slots.len();
            }
        }
        landed
    }

    /// Phases 2 and 3 of a cohort — collect in dispatch order, then the
    /// recovery loop (requeue to survivors, in-process fallback when the
    /// fleet is exhausted). Consumes the flight and returns one row per
    /// cohort geometry, exactly like the synchronous
    /// [`CohortEvaluator::evaluate_cohort`].
    fn wait_inner(&self, mut flight: InflightCohort, pool: &Pool, workers: usize) -> Vec<[f64; 4]> {
        if flight.cohort.is_empty() {
            return flight.out;
        }
        let counters = &self.fleet.counters;
        let cohort = &flight.cohort;
        let out = &mut flight.out;
        let mut requeue = std::mem::take(&mut flight.requeue);
        let mut state = self.fleet.state.lock().expect("fleet state poisoned");

        // Phase 2 — collect, in dispatch order. Any failure requeues the
        // sub-cohort; the worker is dead either way.
        for (w, id, slots) in std::mem::take(&mut flight.inflight) {
            match self.collect(&mut state, w, id, slots.len()) {
                Ok(resp) => self.apply(&resp, &slots, out),
                Err(_) => {
                    self.bury(&mut state, w);
                    requeue.push(slots);
                }
            }
        }

        // Phase 3 — recovery: re-dispatch failed sub-cohorts to
        // survivors (sequentially; this is the rare path), falling back
        // to in-process evaluation when the fleet is exhausted. Each
        // round first readmits any respawn that has come due — but never
        // *waits* for one: an empty rotation falls back in-process, and
        // the front is bit-identical either way.
        while let Some(slots) = requeue.pop() {
            self.fleet.maintain(&mut state, Some(&self.sink));
            match state.assign(0) {
                Some(w) => {
                    counters.requeues.add(1);
                    match self.exchange(&mut state, w, cohort, &slots) {
                        Ok(resp) => self.apply(&resp, &slots, out),
                        Err(_) => {
                            self.bury(&mut state, w);
                            requeue.push(slots);
                        }
                    }
                }
                None => {
                    counters.fallback_geometries.add(slots.len() as u64);
                    let sub: Vec<Geometry> = slots.iter().map(|&i| cohort[i]).collect();
                    let rows = self.fallback.evaluate_cohort(&sub, pool, workers);
                    for (&slot, row) in slots.iter().zip(rows) {
                        out[slot] = row;
                    }
                }
            }
        }
        drop(state);
        if !flight.orphans.is_empty() {
            counters
                .fallback_geometries
                .add(flight.orphans.len() as u64);
            let sub: Vec<Geometry> = flight.orphans.iter().map(|&i| cohort[i]).collect();
            let rows = self.fallback.evaluate_cohort(&sub, pool, workers);
            for (&slot, row) in flight.orphans.iter().zip(rows) {
                out[slot] = row;
            }
        }
        flight.out
    }
}

/// A remote cohort in flight: the [`EvalTicket`] face of
/// [`InflightCohort`]. Holds a clone of its evaluator (an `Arc` fan-out)
/// so the ticket is `'static` and can outlive the exploration step that
/// submitted it.
struct RemoteTicket {
    evaluator: RemoteEvaluator,
    flight: Option<InflightCohort>,
    pool: Arc<Pool>,
    workers: usize,
}

impl EvalTicket for RemoteTicket {
    fn poll(&mut self) -> usize {
        match &self.flight {
            Some(flight) => self.evaluator.poll_inner(flight),
            None => 0,
        }
    }

    fn wait(self: Box<Self>) -> Vec<[f64; 4]> {
        let ticket = *self;
        let flight = ticket.flight.expect("ticket waited twice");
        ticket
            .evaluator
            .wait_inner(flight, &ticket.pool, ticket.workers)
    }
}

impl CohortEvaluator for RemoteEvaluator {
    fn evaluate_cohort(&self, cohort: &[Geometry], pool: &Pool, workers: usize) -> Vec<[f64; 4]> {
        if cohort.is_empty() {
            return Vec::new();
        }
        // The synchronous path is literally submit-then-wait — there is
        // one transport code path, the async seam, and this is its
        // degenerate use.
        self.wait_inner(self.submit_inner(cohort), pool, workers)
    }

    fn submit_cohort(
        &self,
        cohort: &[Geometry],
        pool: &Arc<Pool>,
        workers: usize,
    ) -> Box<dyn EvalTicket> {
        Box::new(RemoteTicket {
            evaluator: self.clone(),
            flight: Some(self.submit_inner(cohort)),
            pool: Arc::clone(pool),
            workers,
        })
    }

    fn materialize(&self, g: &Geometry) -> Option<ParetoSolution> {
        // Presentation is a per-front-member, end-of-run operation: the
        // in-process macro model computes the identical estimate without
        // a round-trip.
        self.fallback.materialize(g)
    }

    fn estimator_stats(&self) -> sega_estimator::EstimatorStats {
        // Remote workers run the same batched kernel on their own side
        // and account for it locally; this evaluator only sees the
        // in-process fallback's share.
        self.fallback.estimator_stats()
    }
}

// ---------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------

/// Fault-injection and identity knobs of [`serve_worker`] — the levers
/// the CI distributed-fault matrix and the recovery tests pull through
/// the real CLI (`--fail-after N`, `--corrupt-after N`, `--hang-after
/// N`, `--stall-ms T`, `--truncate-after N`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Die (process exit, no response) upon receiving the request after
    /// serving this many — `Some(0)` dies on the very first request.
    pub fail_after: Option<u64>,
    /// After serving this many requests, answer the next one with a
    /// garbage frame and exit.
    pub corrupt_after: Option<u64>,
    /// After serving this many requests, hang forever on the next one —
    /// never responding, never exiting. The coordinator's deadline is
    /// the only way out.
    pub hang_after: Option<u64>,
    /// After serving this many requests, answer the next one with a
    /// mid-frame EOF (length prefix promising more bytes than follow)
    /// and exit.
    pub truncate_after: Option<u64>,
    /// Sleep this long before *every* response — the slow-responder
    /// fault that trips deadlines without the worker ever dying on its
    /// own.
    pub stall: Option<Duration>,
    /// After serving this many requests, drop the connection on the next
    /// one and **exit** — the link and the process die together (on
    /// stdio this is indistinguishable from `fail_after`; on a socket it
    /// exercises the connection-death path).
    pub drop_conn_after: Option<u64>,
    /// After serving this many requests, drop the connection on the next
    /// one but **keep running and reconnect** — the rejoin fault: the
    /// coordinator buries + requeues, then adopts the returning link
    /// under the retry budget. One-shot per process (a connected worker
    /// disarms it after firing, or every rejoin would immediately
    /// re-drop).
    pub reconnect_after: Option<u64>,
    /// Sleep this long before sending the hello — the late-hello fault
    /// that trips the handshake deadline without the worker dying.
    pub late_hello: Option<Duration>,
    /// The capacity weight this worker advertises in its hello (`0` is
    /// clamped to 1) — heterogeneous fleets weight the shard partition
    /// by it.
    pub capacity: u32,
    /// This worker's stable identity (the supervisor passes
    /// `--worker-id`); prefixes every log line.
    pub worker_id: u64,
    /// Emit the prefixed per-request log lines on stderr.
    pub log: bool,
}

impl WorkerOptions {
    /// The fault names this configuration arms, advertised in the hello
    /// so chaos runs are self-describing in supervisor logs.
    fn armed_faults(&self) -> Vec<String> {
        let mut faults = Vec::new();
        let mut arm = |armed: bool, name: &str| {
            if armed {
                faults.push(name.to_owned());
            }
        };
        arm(self.fail_after.is_some(), "fail-after");
        arm(self.corrupt_after.is_some(), "corrupt-after");
        arm(self.hang_after.is_some(), "hang-after");
        arm(self.truncate_after.is_some(), "truncate-after");
        arm(self.stall.is_some(), "stall");
        arm(self.drop_conn_after.is_some(), "drop-conn-after");
        arm(self.reconnect_after.is_some(), "reconnect-after");
        arm(self.late_hello.is_some(), "late-hello");
        faults
    }
}

/// Why one worker session ended — the connected-worker loop decides
/// from this whether to reconnect or exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerExit {
    /// The peer asked for an orderly shutdown.
    Shutdown,
    /// The peer's side of the link closed.
    Eof,
    /// The armed `drop-conn-after` fault fired: drop the link and exit.
    DropConn,
    /// The armed `reconnect-after` fault fired: drop the link, keep the
    /// process (and its memo cache), dial back in.
    Reconnect,
}

/// One key space the worker has bound: the estimator and the memo table.
struct WorkerBinding {
    evaluator: Arc<dyn CohortEvaluator>,
    space: Arc<crate::cache::KeySpace>,
}

fn technology_of(key: &KeyRecord) -> Technology {
    Technology {
        name: key.tech_name.clone(),
        node_nm: f64::from_bits(key.node_bits),
        gate_area_um2: f64::from_bits(key.gate_area_bits),
        gate_delay_ns: f64::from_bits(key.gate_delay_bits),
        gate_energy_fj: f64::from_bits(key.gate_energy_bits),
        nominal_voltage: f64::from_bits(key.nominal_voltage_bits),
    }
}

fn conditions_of(key: &KeyRecord) -> OperatingConditions {
    OperatingConditions {
        voltage: f64::from_bits(key.voltage_bits),
        input_sparsity: f64::from_bits(key.sparsity_bits),
        activity: f64::from_bits(key.activity_bits),
    }
}

fn bind_worker(key: &KeyRecord, cache: &SharedEvalCache) -> Result<WorkerBinding, String> {
    let precision = Precision::from_name(&key.precision)
        .ok_or_else(|| format!("request names unknown precision `{}`", key.precision))?;
    let spec = UserSpec::new(key.wstore, precision).map_err(|e| format!("request spec: {e}"))?;
    let tech = technology_of(key);
    let conditions = conditions_of(key);
    let cache_key = CacheKey::new(&tech, &conditions, precision, key.wstore);
    Ok(WorkerBinding {
        evaluator: MacroModelBackend.bind(&spec, &tech, &conditions),
        space: cache.space(&cache_key),
    })
}

/// Serves the worker side of the protocol over `input`/`output` until a
/// shutdown frame or EOF: the body of `sega-dcim worker --serve`.
///
/// The worker keeps its own [`SharedEvalCache`] across requests, so a
/// shard that keeps landing on this worker is estimated once per fleet
/// lifetime; each response's delta carries only the entries computed
/// fresh for that request.
///
/// # Errors
///
/// A human-readable message on a transport or protocol failure (the
/// worker process exits non-zero; the coordinator requeues).
pub fn serve_worker(
    input: &mut impl Read,
    output: &mut impl Write,
    options: &WorkerOptions,
) -> Result<(), String> {
    let cache = SharedEvalCache::new();
    let mut bindings: HashMap<u64, WorkerBinding> = HashMap::new();
    let pool = Pool::for_threads(1);
    let mut served: u64 = 0;
    // On stdio every session-ending event — shutdown, EOF, a fired
    // connection fault — ends the process; there is no link to re-dial.
    serve_session(
        input,
        output,
        options,
        &cache,
        &mut bindings,
        &pool,
        &mut served,
    )
    .map(|_| ())
}

/// Runs a socket worker: dial `addr`, serve a session, and — when the
/// armed `reconnect-after` fault drops the link — dial back in with the
/// memo cache intact, exercising the coordinator's rejoin path. The
/// body of `sega-dcim worker --connect ADDR`.
///
/// # Errors
///
/// Connect failures and transport/protocol failures, as
/// [`serve_worker`].
pub fn run_connected_worker(addr: &ListenAddr, options: &WorkerOptions) -> Result<(), String> {
    let mut options = *options;
    let cache = SharedEvalCache::new();
    let mut bindings: HashMap<u64, WorkerBinding> = HashMap::new();
    let pool = Pool::for_threads(1);
    let mut served: u64 = 0;
    loop {
        let stream = connect_with_retry(addr, Duration::from_secs(10))?;
        let mut reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("worker link clone: {e}"))?,
        );
        let mut writer = stream;
        let exit = serve_session(
            &mut reader,
            &mut writer,
            &options,
            &cache,
            &mut bindings,
            &pool,
            &mut served,
        )?;
        writer.disconnect();
        match exit {
            WorkerExit::Reconnect => {
                // One-shot: a rejoined worker that kept the fault armed
                // would drop its link again on the first request.
                options.reconnect_after = None;
            }
            WorkerExit::Shutdown | WorkerExit::Eof | WorkerExit::DropConn => return Ok(()),
        }
    }
}

/// One hello-to-exit worker session over an established link — the
/// transport-agnostic core shared by the stdio and socket workers. The
/// cache, bindings, pool and served count live with the *caller* (the
/// process), so a reconnecting worker rejoins with its memoization
/// intact.
#[allow(clippy::too_many_lines)]
fn serve_session(
    input: &mut impl Read,
    output: &mut impl Write,
    options: &WorkerOptions,
    cache: &SharedEvalCache,
    bindings: &mut HashMap<u64, WorkerBinding>,
    pool: &Pool,
    served: &mut u64,
) -> Result<WorkerExit, String> {
    // Monotonic timestamp base for the log prefix: `[+   12.345ms w0 r7]`
    // — elapsed-since-start, worker id, request id (r0 for lines outside
    // any request).
    let start = Instant::now();
    let log = |request: u64, text: &str| {
        if options.log {
            let ms = start.elapsed().as_secs_f64() * 1e3;
            eprintln!("[+{ms:>9.3}ms w{} r{request}] {text}", options.worker_id);
        }
    };
    if let Some(delay) = options.late_hello {
        // Injected fault: the handshake-deadline trip — connect (or
        // launch) but leave the coordinator waiting for the hello.
        log(0, &format!("injected fault: delaying hello {delay:?}"));
        std::thread::sleep(delay);
    }
    let mut hello = Hello::worker(options.worker_id, options.capacity);
    hello.faults = options.armed_faults();
    frame::send(output, &Message::Hello(hello)).map_err(|e| format!("worker hello: {e}"))?;
    log(
        0,
        &format!(
            "hello (protocol {PROTOCOL_VERSION}, capacity {})",
            options.capacity.max(1)
        ),
    );
    loop {
        let message = match frame::recv(input) {
            Ok(message) => message,
            // Coordinator gone (dropped pipes / closed socket): an
            // orderly exit too.
            Err(FrameError::Eof) => {
                log(0, "link EOF, session over");
                return Ok(WorkerExit::Eof);
            }
            Err(e) => return Err(format!("worker transport: {e}")),
        };
        let request = match message {
            Message::Shutdown => {
                log(0, "shutdown frame, exiting");
                return Ok(WorkerExit::Shutdown);
            }
            Message::Heartbeat => continue,
            Message::SyncRequest(req) => {
                // Anti-entropy: answer from the process-lifetime memo
                // cache (the bindings' spaces all live in `cache`) with
                // only the entries the requester's digest proves
                // missing, plus the accounting that makes the saving
                // visible.
                let mine = cache.snapshot();
                let plan = plan_delta(&mine, &req.digest);
                let delta_bytes = plan.delta.encode_binary().len() as u64;
                let full_bytes = mine.encode_binary().len() as u64;
                let summary = SyncResponse {
                    id: req.id,
                    matched_entries: plan.matched_entries,
                    delta_entries: plan.delta.len() as u64,
                    delta_bytes,
                    full_bytes,
                };
                frame::send(output, &Message::SyncResponse(summary))
                    .map_err(|e| format!("worker sync summary: {e}"))?;
                let delta_len = plan.delta.len();
                frame::send(
                    output,
                    &Message::SyncEntries(SyncEntries {
                        id: req.id,
                        delta: plan.delta,
                    }),
                )
                .map_err(|e| format!("worker sync entries: {e}"))?;
                log(
                    req.id,
                    &format!(
                        "sync: {delta_len} delta entries ({delta_bytes} of {full_bytes} full bytes)"
                    ),
                );
                continue;
            }
            Message::Request(request) => request,
            _ => return Err("coordinator sent a non-request frame".to_owned()),
        };
        log(
            request.id,
            &format!("request: {} geometries", request.cohort.len()),
        );
        if options.drop_conn_after == Some(*served) {
            // Simulated connection drop: the request is swallowed and
            // the link dies — the coordinator sees EOF and buries.
            log(request.id, "injected fault: dropping connection");
            return Ok(WorkerExit::DropConn);
        }
        if options.reconnect_after == Some(*served) {
            // Simulated link flap: same swallowed request, but the
            // process survives to dial back in and rejoin.
            log(
                request.id,
                "injected fault: dropping connection to reconnect",
            );
            return Ok(WorkerExit::Reconnect);
        }
        if options.fail_after == Some(*served) {
            // Simulated crash: die mid-batch without responding.
            log(request.id, "injected fault: dying (exit 17)");
            std::process::exit(17);
        }
        if options.corrupt_after == Some(*served) {
            // Simulated corruption: a well-framed garbage payload.
            log(request.id, "injected fault: corrupt frame (exit 3)");
            let _ = frame::write_frame(output, b"\xde\xad\xbe\xef corrupt worker");
            std::process::exit(3);
        }
        if options.hang_after == Some(*served) {
            // Simulated hang: alive but never responding — only the
            // coordinator's deadline (then kill) ends this.
            log(request.id, "injected fault: hanging forever");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        if options.truncate_after == Some(*served) {
            // Simulated mid-frame EOF: the length prefix promises a
            // whole shutdown frame, half the payload follows.
            log(request.id, "injected fault: truncated frame (exit 7)");
            let payload = Message::Shutdown.encode();
            let _ = frame::write_truncated_frame(output, &payload, payload.len() / 2);
            std::process::exit(7);
        }
        let binding = match bindings.entry(request.key.fingerprint()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(bind_worker(&request.key, cache)?)
            }
        };
        let cohort: Vec<Geometry> = request
            .cohort
            .iter()
            .map(|g| Geometry {
                log_h: g.log_h,
                log_l: g.log_l,
                k: g.k,
            })
            .collect();
        // Serve memoized geometries, compute the rest, remember both.
        let mut rows: Vec<Option<[f64; 4]>> = Vec::with_capacity(cohort.len());
        let mut missing: Vec<Geometry> = Vec::new();
        let mut missing_slots: Vec<usize> = Vec::new();
        for (i, g) in cohort.iter().enumerate() {
            match binding.space.get(g) {
                Some(objectives) => rows.push(Some(objectives)),
                None => {
                    rows.push(None);
                    missing.push(*g);
                    missing_slots.push(i);
                }
            }
        }
        let computed = binding.evaluator.evaluate_cohort(&missing, pool, 1);
        let mut delta_entries = Vec::with_capacity(computed.len());
        for ((slot, g), objectives) in missing_slots.iter().zip(&missing).zip(computed) {
            binding.space.insert(*g, objectives);
            rows[*slot] = Some(objectives);
            delta_entries.push(EntryRecord {
                geometry: record_of(g),
                objectives,
            });
        }
        let mut delta = Snapshot::default();
        if !delta_entries.is_empty() {
            delta.spaces.push(SpaceRecord {
                key: request.key.clone(),
                entries: delta_entries,
            });
            delta.canonicalize();
        }
        let delta_len = delta.len();
        if let Some(stall) = options.stall {
            // Simulated slow responder: the answer is correct but late —
            // with a stall past the coordinator's deadline this worker
            // gets buried while still healthy.
            log(request.id, &format!("injected fault: stalling {stall:?}"));
            std::thread::sleep(stall);
        }
        let response = Message::Response(EvalResponse {
            id: request.id,
            rows: rows
                .into_iter()
                .map(|r| r.expect("every cohort geometry resolved"))
                .collect(),
            delta,
        });
        frame::send(output, &response).map_err(|e| format!("worker response: {e}"))?;
        log(
            request.id,
            &format!("response: {} rows, {delta_len} delta entries", cohort.len()),
        );
        *served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_records_reconstruct_the_exact_invariants() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let key = CacheKey::new(&tech, &cond, Precision::Bf16, 8192).to_record();
        let back_tech = technology_of(&key);
        let back_cond = conditions_of(&key);
        assert_eq!(back_tech.name, tech.name);
        assert_eq!(back_tech.node_nm.to_bits(), tech.node_nm.to_bits());
        assert_eq!(
            back_tech.gate_energy_fj.to_bits(),
            tech.gate_energy_fj.to_bits()
        );
        assert_eq!(back_cond.voltage.to_bits(), cond.voltage.to_bits());
        assert_eq!(back_cond.activity.to_bits(), cond.activity.to_bits());
    }

    #[test]
    fn worker_partition_is_deterministic_and_total() {
        for fleet_size in [1usize, 2, 3, 5] {
            let ones = vec![1u32; fleet_size];
            for log_h in 0..8 {
                for k in 1..=8 {
                    let g = Geometry { log_h, log_l: 1, k };
                    let w = worker_of_weighted(&g, &ones);
                    assert!(w < fleet_size);
                    assert_eq!(w, worker_of_weighted(&g, &ones), "stable per geometry");
                }
            }
        }
    }

    /// The capability-weighted partition degenerates to the historical
    /// `hash % N` on all-ones capacities — the stdio byte-compat law —
    /// and weights shares proportionally otherwise.
    #[test]
    fn weighted_partition_degenerates_to_modulo_on_equal_capacity() {
        use std::hash::{Hash, Hasher};
        let mut counts = [0usize; 3];
        for log_h in 0..16 {
            for log_l in 0..8 {
                for k in 1..=8 {
                    let g = Geometry { log_h, log_l, k };
                    let mut h = FxHasher::default();
                    g.hash(&mut h);
                    let modulo = (h.finish() % 3) as usize;
                    assert_eq!(worker_of_weighted(&g, &[1, 1, 1]), modulo);
                    // A zero capacity is clamped to one share.
                    assert_eq!(worker_of_weighted(&g, &[0, 1, 1]), modulo);
                    counts[worker_of_weighted(&g, &[4, 1, 1])] += 1;
                }
            }
        }
        // Worker 0 owns 4 of 6 shares: it must receive the strict
        // majority of a uniform geometry population.
        assert!(
            counts[0] > counts[1] + counts[2],
            "weighted shares not honoured: {counts:?}"
        );
    }

    /// A session armed with `reconnect-after` swallows the triggering
    /// request, reports [`WorkerExit::Reconnect`], and keeps its memo
    /// cache for the next session — driven over in-memory buffers.
    #[test]
    fn sessions_exit_for_reconnect_and_resume_with_their_cache() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let key = CacheKey::new(&tech, &cond, Precision::Int8, 8192).to_record();
        let cohort = vec![GeometryRecord {
            log_h: 5,
            log_l: 1,
            k: 4,
        }];
        let request = |id| {
            let mut buf = Vec::new();
            frame::send(
                &mut buf,
                &Message::Request(EvalRequest {
                    id,
                    key: key.clone(),
                    cohort: cohort.clone(),
                }),
            )
            .unwrap();
            buf
        };
        let options = WorkerOptions {
            reconnect_after: Some(1),
            ..WorkerOptions::default()
        };
        let cache = SharedEvalCache::new();
        let mut bindings = HashMap::new();
        let pool = Pool::for_threads(1);
        let mut served = 0u64;

        // Session 1: serve one request, then the fault fires on the
        // second — which is swallowed, exactly like a lost in-flight
        // sub-cohort.
        let mut input = request(1);
        input.extend(request(2));
        let mut output = Vec::new();
        let exit = serve_session(
            &mut input.as_slice(),
            &mut output,
            &options,
            &cache,
            &mut bindings,
            &pool,
            &mut served,
        )
        .unwrap();
        assert_eq!(exit, WorkerExit::Reconnect);
        assert_eq!(served, 1);

        // Session 2 (the rejoined link): the same geometry is served
        // from the memo cache — an empty delta proves nothing was
        // recomputed, i.e. the rejoin really kept the process state.
        let disarmed = WorkerOptions::default();
        let mut input = request(3);
        frame::send(&mut input, &Message::Shutdown).unwrap();
        let mut output = Vec::new();
        let exit = serve_session(
            &mut input.as_slice(),
            &mut output,
            &disarmed,
            &cache,
            &mut bindings,
            &pool,
            &mut served,
        )
        .unwrap();
        assert_eq!(exit, WorkerExit::Shutdown);
        let mut cursor = output.as_slice();
        assert!(matches!(
            frame::recv(&mut cursor).unwrap(),
            Message::Hello(_)
        ));
        match frame::recv(&mut cursor).unwrap() {
            Message::Response(resp) => {
                assert_eq!(resp.id, 3);
                assert!(resp.delta.is_empty(), "memo cache lost across sessions");
            }
            other => panic!("expected a response, got {other:?}"),
        }
    }

    #[test]
    fn hellos_advertise_armed_faults() {
        let options = WorkerOptions {
            fail_after: Some(3),
            reconnect_after: Some(1),
            late_hello: Some(Duration::from_millis(1)),
            ..WorkerOptions::default()
        };
        assert_eq!(
            options.armed_faults(),
            vec!["fail-after", "reconnect-after", "late-hello"]
        );
        assert!(WorkerOptions::default().armed_faults().is_empty());
    }

    /// The worker loop is transport-agnostic: drive it over in-memory
    /// buffers, no processes involved.
    #[test]
    fn worker_loop_serves_requests_and_memoizes_deltas() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let key = CacheKey::new(&tech, &cond, spec.precision, spec.wstore).to_record();
        let cohort = vec![
            GeometryRecord {
                log_h: 5,
                log_l: 1,
                k: 4,
            },
            GeometryRecord {
                log_h: 7,
                log_l: 0,
                k: 2,
            },
        ];
        let mut input = Vec::new();
        for id in [1u64, 2] {
            frame::send(
                &mut input,
                &Message::Request(EvalRequest {
                    id,
                    key: key.clone(),
                    cohort: cohort.clone(),
                }),
            )
            .unwrap();
        }
        frame::send(&mut input, &Message::Shutdown).unwrap();
        let mut output = Vec::new();
        serve_worker(
            &mut input.as_slice(),
            &mut output,
            &WorkerOptions::default(),
        )
        .unwrap();

        let mut cursor = output.as_slice();
        match frame::recv(&mut cursor).unwrap() {
            Message::Hello(hello) => {
                assert_eq!(hello.protocol, PROTOCOL_VERSION);
                assert_eq!(hello.role, "worker");
                assert!(hello.capacity >= 1);
                assert!(hello.faults.is_empty());
            }
            other => panic!("expected a hello, got {other:?}"),
        }
        let expected = MacroModelBackend.bind(&spec, &tech, &cond);
        let pool = Pool::for_threads(1);
        let geoms: Vec<Geometry> = cohort
            .iter()
            .map(|g| Geometry {
                log_h: g.log_h,
                log_l: g.log_l,
                k: g.k,
            })
            .collect();
        let reference = expected.evaluate_cohort(&geoms, &pool, 1);
        for id in [1u64, 2] {
            match frame::recv(&mut cursor).unwrap() {
                Message::Response(resp) => {
                    assert_eq!(resp.id, id);
                    assert_eq!(resp.rows, reference);
                    if id == 1 {
                        // First request computes both entries fresh.
                        assert_eq!(resp.delta.len(), 2);
                    } else {
                        // Second request is fully memoized: empty delta.
                        assert!(resp.delta.is_empty());
                    }
                }
                other => panic!("expected a response, got {other:?}"),
            }
        }
        assert!(matches!(
            frame::recv(&mut cursor).unwrap_err(),
            FrameError::Eof
        ));
    }

    #[test]
    fn worker_loop_rejects_unknown_precision_names() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let mut key = CacheKey::new(&tech, &cond, Precision::Int8, 8192).to_record();
        key.precision = "int3".to_owned();
        let mut input = Vec::new();
        frame::send(
            &mut input,
            &Message::Request(EvalRequest {
                id: 1,
                key,
                cohort: vec![],
            }),
        )
        .unwrap();
        let mut output = Vec::new();
        let err = serve_worker(
            &mut input.as_slice(),
            &mut output,
            &WorkerOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("int3"), "{err}");
    }
}
