//! The remote evaluation backend: cohorts shipped to a fleet of worker
//! **processes** over the `sega_wire` framed protocol — the transport +
//! async-dispatch layer the `EvalBackend` seam was built for.
//!
//! # Topology
//!
//! [`RemoteBackend::spawn`] launches N workers (`sega-dcim worker
//! --serve` by default) with piped stdio; each worker answers
//! [`sega_wire::frame`] eval-requests until shutdown or stdin EOF. One
//! fleet serves every binding the backend hands out, so a whole batch
//! run — many specs, many precisions — shares the same N processes, and
//! each worker memoizes its own [`SharedEvalCache`] across requests.
//!
//! # Dispatch
//!
//! [`CohortEvaluator::evaluate_cohort`] splits the (already
//! deduplicated) cohort by the same Fx-hash shard function the
//! [`KeySpace`](crate::cache::KeySpace) uses, writes **all** sub-cohort
//! requests before reading any response — the workers compute
//! concurrently while the coordinator is still dispatching — then
//! collects responses in order. Results merge back twice, and both
//! merges are order-insensitive by construction: the objective rows
//! scatter into cohort slots by index, and each response's snapshot
//! *delta* (the entries the worker computed fresh) folds into the
//! backend's sink cache through [`SharedEvalCache::load`], whose union
//! semantics are commutative and idempotent. That is why the front is
//! **bit-identical for every worker count**: partitioning only decides
//! *where* a deterministic function is computed.
//!
//! # Failure semantics
//!
//! A worker that dies (EOF/IO error), answers garbage (frame or wire
//! decode error), or answers the wrong shape (id/row-count mismatch) is
//! marked dead and its sub-cohort is **requeued** to a surviving worker;
//! when the whole fleet is gone, the sub-cohort is evaluated in-process
//! through the bound macro-model fallback. Every path produces exactly
//! one row per requested geometry, so `EvalStats` accounting stays exact
//! under any injected fault.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sega_cells::Technology;
use sega_estimator::{OperatingConditions, Precision};
use sega_parallel::Pool;
use sega_wire::frame::{self, EvalRequest, EvalResponse, FrameError, Message, PROTOCOL_VERSION};
use sega_wire::snapshot::{EntryRecord, SpaceRecord};
use sega_wire::{GeometryRecord, KeyRecord, Snapshot};

use crate::backend::{CohortEvaluator, EvalBackend, MacroModelBackend};
use crate::cache::{CacheKey, FxHasher, SharedEvalCache};
use crate::explore::{Geometry, ParetoSolution};
use crate::spec::UserSpec;

/// How to launch one worker process.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    /// The executable (normally the `sega-dcim` binary itself).
    pub program: PathBuf,
    /// Its arguments (normally `worker --serve`, plus fault-injection
    /// flags in tests).
    pub args: Vec<String>,
}

impl WorkerCommand {
    /// The standard serving worker for `program`.
    pub fn serve(program: impl Into<PathBuf>) -> WorkerCommand {
        WorkerCommand {
            program: program.into(),
            args: vec!["worker".to_owned(), "--serve".to_owned()],
        }
    }

    /// Appends extra arguments (fault-injection knobs, log verbosity).
    #[must_use]
    pub fn with_args(mut self, extra: impl IntoIterator<Item = String>) -> WorkerCommand {
        self.args.extend(extra);
        self
    }
}

/// Fleet configuration for [`RemoteBackend::spawn`].
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// One launch command per worker.
    pub workers: Vec<WorkerCommand>,
    /// When set, each worker's stderr goes to
    /// `<log_dir>/worker-<index>.log` instead of being inherited (CI
    /// uploads these as artifacts).
    pub log_dir: Option<PathBuf>,
}

impl RemoteOptions {
    /// A homogeneous fleet of `workers` copies of
    /// [`WorkerCommand::serve`]`(program)`. A count of zero yields an
    /// empty fleet, which [`RemoteBackend::spawn`] rejects loudly — a
    /// miscomputed size should fail, not silently run single-worker.
    pub fn fleet(program: impl Into<PathBuf>, workers: usize) -> RemoteOptions {
        let command = WorkerCommand::serve(program.into());
        RemoteOptions {
            workers: vec![command; workers],
            log_dir: None,
        }
    }

    /// Routes worker stderr to per-worker log files under `dir`.
    #[must_use]
    pub fn with_log_dir(mut self, dir: impl Into<PathBuf>) -> RemoteOptions {
        self.log_dir = Some(dir.into());
        self
    }
}

/// A point-in-time copy of the fleet's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteStats {
    /// Request/response exchanges completed successfully.
    pub round_trips: u64,
    /// Sub-cohorts re-dispatched after a worker failure.
    pub requeues: u64,
    /// Workers that transitioned alive → dead.
    pub worker_deaths: u64,
    /// Geometries evaluated in-process because no worker survived.
    pub fallback_geometries: u64,
    /// Geometries evaluated across the fleet (remote or fallback).
    pub geometries: u64,
    /// Cache entries installed into the sink from worker deltas.
    pub merged_entries: u64,
    /// Workers still alive right now.
    pub workers_alive: usize,
    /// Workers the fleet was spawned with.
    pub workers_spawned: usize,
}

#[derive(Debug, Default)]
struct RemoteCounters {
    round_trips: AtomicU64,
    requeues: AtomicU64,
    worker_deaths: AtomicU64,
    fallback_geometries: AtomicU64,
    geometries: AtomicU64,
    merged_entries: AtomicU64,
}

/// `counters.round_trips.add(1)` — all counters are monotonic tallies.
trait Tally {
    fn add(&self, n: u64);
}

impl Tally for AtomicU64 {
    fn add(&self, n: u64) {
        self.fetch_add(n, Ordering::Relaxed);
    }
}

/// One spawned worker process and its framed stdio transport.
#[derive(Debug)]
struct WorkerHandle {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
    alive: bool,
}

impl WorkerHandle {
    fn send(&mut self, message: &Message) -> Result<(), FrameError> {
        match &mut self.stdin {
            Some(stdin) => frame::send(stdin, message),
            None => Err(FrameError::Eof),
        }
    }

    fn recv(&mut self) -> Result<Message, FrameError> {
        frame::recv(&mut self.stdout)
    }

    /// Marks the worker dead and reaps the process.
    fn kill(&mut self) {
        self.alive = false;
        self.stdin = None; // EOF, in case the process is still looping
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[derive(Debug)]
struct FleetState {
    workers: Vec<WorkerHandle>,
    next_id: u64,
}

impl FleetState {
    /// The worker to dispatch shard `preferred` to: itself when alive,
    /// else the next alive worker scanning upward (deterministic, so a
    /// degraded fleet still partitions stably). `None` when every worker
    /// is dead.
    fn assign(&self, preferred: usize) -> Option<usize> {
        let n = self.workers.len();
        (0..n)
            .map(|offset| (preferred + offset) % n)
            .find(|&w| self.workers[w].alive)
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }
}

/// The spawned worker fleet: shared by every evaluator the backend
/// binds. The transport exchange of one cohort holds the fleet lock, so
/// concurrent explorations serialize at the pipe (the workers themselves
/// still compute one cohort's sub-cohorts concurrently).
#[derive(Debug)]
struct Fleet {
    state: Mutex<FleetState>,
    counters: RemoteCounters,
    spawned: usize,
}

impl Drop for Fleet {
    fn drop(&mut self) {
        let mut state = match self.state.lock() {
            Ok(state) => state,
            Err(poisoned) => poisoned.into_inner(),
        };
        for worker in &mut state.workers {
            if worker.alive {
                let _ = worker.send(&Message::Shutdown);
                worker.stdin = None;
                let _ = worker.child.wait();
                worker.alive = false;
            }
        }
    }
}

/// [`EvalBackend`] over a fleet of worker processes. See the module docs
/// for the protocol and failure semantics.
#[derive(Debug)]
pub struct RemoteBackend {
    fleet: Arc<Fleet>,
    /// Worker snapshot deltas are union-merged here. Defaults to a
    /// private cache; [`RemoteBackend::with_sink`] points it at a shared
    /// one so a batch run's `--cache-file` persists remote results.
    sink: Arc<SharedEvalCache>,
    /// The in-process estimator used when the whole fleet is dead, and
    /// for [`CohortEvaluator::materialize`] (presentation is local).
    fallback: MacroModelBackend,
}

impl RemoteBackend {
    /// Spawns the fleet and completes the hello handshake with every
    /// worker.
    ///
    /// # Errors
    ///
    /// An empty fleet, the launch error, or a protocol-version mismatch
    /// of the first worker that fails — failing the whole spawn keeps
    /// configuration mistakes loud (a *later* death is handled by
    /// requeueing instead).
    pub fn spawn(options: RemoteOptions) -> Result<RemoteBackend, String> {
        if options.workers.is_empty() {
            return Err("a remote fleet needs at least one worker command".to_owned());
        }
        if let Some(dir) = &options.log_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create worker log dir `{}`: {e}", dir.display()))?;
        }
        let mut workers: Vec<WorkerHandle> = Vec::with_capacity(options.workers.len());
        for (index, command) in options.workers.iter().enumerate() {
            match spawn_worker(command, index, options.log_dir.as_deref()) {
                Ok(worker) => workers.push(worker),
                Err(e) => {
                    // Reap the part of the fleet that did spawn — a
                    // failed spawn must not leak zombie processes.
                    for worker in &mut workers {
                        worker.kill();
                    }
                    return Err(e);
                }
            }
        }
        let spawned = workers.len();
        Ok(RemoteBackend {
            fleet: Arc::new(Fleet {
                state: Mutex::new(FleetState {
                    workers,
                    next_id: 0,
                }),
                counters: RemoteCounters::default(),
                spawned,
            }),
            sink: Arc::new(SharedEvalCache::new()),
            fallback: MacroModelBackend,
        })
    }

    /// Merges worker snapshot deltas into `cache` instead of the
    /// backend's private sink — point it at a batch run's shared cache
    /// so remotely computed estimates persist with `--cache-file`.
    #[must_use]
    pub fn with_sink(mut self, cache: Arc<SharedEvalCache>) -> RemoteBackend {
        self.sink = cache;
        self
    }

    /// The cache worker deltas merge into.
    pub fn sink(&self) -> &Arc<SharedEvalCache> {
        &self.sink
    }

    /// The fleet's traffic counters, now.
    pub fn stats(&self) -> RemoteStats {
        let c = &self.fleet.counters;
        RemoteStats {
            round_trips: c.round_trips.load(Ordering::Relaxed),
            requeues: c.requeues.load(Ordering::Relaxed),
            worker_deaths: c.worker_deaths.load(Ordering::Relaxed),
            fallback_geometries: c.fallback_geometries.load(Ordering::Relaxed),
            geometries: c.geometries.load(Ordering::Relaxed),
            merged_entries: c.merged_entries.load(Ordering::Relaxed),
            workers_alive: self
                .fleet
                .state
                .lock()
                .expect("fleet state poisoned")
                .alive_count(),
            workers_spawned: self.fleet.spawned,
        }
    }
}

fn spawn_worker(
    command: &WorkerCommand,
    index: usize,
    log_dir: Option<&std::path::Path>,
) -> Result<WorkerHandle, String> {
    let stderr = match log_dir {
        Some(dir) => {
            let path = dir.join(format!("worker-{index}.log"));
            let file = std::fs::File::create(&path)
                .map_err(|e| format!("cannot create worker log `{}`: {e}", path.display()))?;
            Stdio::from(file)
        }
        None => Stdio::inherit(),
    };
    let mut child = Command::new(&command.program)
        .args(&command.args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .map_err(|e| format!("cannot spawn worker `{}`: {e}", command.program.display()))?;
    let stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    // Hello handshake: the worker leads with its protocol version.
    match frame::recv(&mut stdout) {
        Ok(Message::Hello { protocol }) if protocol == PROTOCOL_VERSION => Ok(WorkerHandle {
            child,
            stdin: Some(stdin),
            stdout,
            alive: true,
        }),
        Ok(Message::Hello { protocol }) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(format!(
                "worker {index} speaks protocol {protocol}, coordinator speaks {PROTOCOL_VERSION}"
            ))
        }
        Ok(_) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(format!("worker {index} sent a non-hello first frame"))
        }
        Err(e) => {
            let _ = child.kill();
            let _ = child.wait();
            Err(format!("worker {index} handshake failed: {e}"))
        }
    }
}

impl EvalBackend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn bind(
        &self,
        spec: &UserSpec,
        tech: &Technology,
        conditions: &OperatingConditions,
    ) -> Arc<dyn CohortEvaluator> {
        Arc::new(RemoteEvaluator {
            key: CacheKey::new(tech, conditions, spec.precision, spec.wstore).to_record(),
            fleet: Arc::clone(&self.fleet),
            sink: Arc::clone(&self.sink),
            fallback: self.fallback.bind(spec, tech, conditions),
        })
    }
}

/// [`RemoteBackend`] bound to one exploration's invariants: the key
/// record every request carries, plus the shared fleet.
#[derive(Debug)]
struct RemoteEvaluator {
    key: KeyRecord,
    fleet: Arc<Fleet>,
    sink: Arc<SharedEvalCache>,
    fallback: Arc<dyn CohortEvaluator>,
}

/// The worker a geometry belongs to: the same Fx-hash the cache's
/// [`KeySpace`](crate::cache::KeySpace) shards by, reduced modulo the
/// fleet size — the `KeySpace` shards are the partition unit, so one
/// geometry always lands on the same (alive) worker and worker-side
/// memoization actually hits.
fn worker_of(g: &Geometry, fleet_size: usize) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = FxHasher::default();
    g.hash(&mut h);
    (h.finish() as usize) % fleet_size
}

fn record_of(g: &Geometry) -> GeometryRecord {
    GeometryRecord {
        log_h: g.log_h,
        log_l: g.log_l,
        k: g.k,
    }
}

impl RemoteEvaluator {
    /// Writes the eval-request for the cohort slots in `slots` to worker
    /// `w`, returning the correlation id to [`collect`](Self::collect)
    /// on. The caller owns the fleet lock.
    fn dispatch(
        &self,
        state: &mut FleetState,
        w: usize,
        cohort: &[Geometry],
        slots: &[usize],
    ) -> Result<u64, FrameError> {
        let id = state.fresh_id();
        let request = Message::Request(EvalRequest {
            id,
            key: self.key.clone(),
            cohort: slots.iter().map(|&i| record_of(&cohort[i])).collect(),
        });
        state.workers[w].send(&request)?;
        Ok(id)
    }

    /// One synchronous request/response exchange with worker `w` for the
    /// cohort slots in `slots`. The caller owns the fleet lock.
    fn exchange(
        &self,
        state: &mut FleetState,
        w: usize,
        cohort: &[Geometry],
        slots: &[usize],
    ) -> Result<EvalResponse, FrameError> {
        let id = self.dispatch(state, w, cohort, slots)?;
        self.collect(state, w, id, slots.len())
    }

    /// Reads worker `w`'s next frame and validates it against the
    /// expected correlation id and row count.
    fn collect(
        &self,
        state: &mut FleetState,
        w: usize,
        id: u64,
        expected_rows: usize,
    ) -> Result<EvalResponse, FrameError> {
        match state.workers[w].recv()? {
            Message::Response(resp) if resp.id == id && resp.rows.len() == expected_rows => {
                Ok(resp)
            }
            Message::Response(resp) => Err(FrameError::Wire(sega_wire::WireError::Malformed(
                format!(
                    "response shape mismatch: id {} rows {} (expected id {id} rows {expected_rows})",
                    resp.id,
                    resp.rows.len()
                ),
            ))),
            _ => Err(FrameError::Wire(sega_wire::WireError::Malformed(
                "worker sent a non-response frame".to_owned(),
            ))),
        }
    }

    /// Marks worker `w` dead (counted once per transition).
    fn bury(&self, state: &mut FleetState, w: usize) {
        if state.workers[w].alive {
            state.workers[w].kill();
            self.fleet.counters.worker_deaths.add(1);
        }
    }

    /// Applies one successful response: scatter rows into `out` by slot
    /// and fold the delta into the sink.
    fn apply(&self, resp: &EvalResponse, slots: &[usize], out: &mut [[f64; 4]]) {
        for (&slot, row) in slots.iter().zip(&resp.rows) {
            out[slot] = *row;
        }
        match self.sink.load(&resp.delta) {
            Ok(installed) => self.fleet.counters.merged_entries.add(installed as u64),
            // A delta that decoded as a frame but won't install (e.g. a
            // worker from a newer build naming an unknown precision)
            // only costs cache warmth, never correctness — the rows
            // above are already applied. Say so instead of silently
            // degrading every warm start.
            Err(e) => eprintln!("warning: dropping a worker's cache delta: {e}"),
        }
        self.fleet.counters.round_trips.add(1);
    }
}

impl CohortEvaluator for RemoteEvaluator {
    fn evaluate_cohort(&self, cohort: &[Geometry], pool: &Pool, workers: usize) -> Vec<[f64; 4]> {
        if cohort.is_empty() {
            return Vec::new();
        }
        let counters = &self.fleet.counters;
        counters.geometries.add(cohort.len() as u64);
        let mut out = vec![[f64::NAN; 4]; cohort.len()];
        let mut state = self.fleet.state.lock().expect("fleet state poisoned");
        let fleet_size = state.workers.len();

        // Partition by shard onto alive workers; orphans (no fleet left)
        // go straight to the in-process fallback below.
        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); fleet_size];
        let mut orphans: Vec<usize> = Vec::new();
        for (i, g) in cohort.iter().enumerate() {
            match state.assign(worker_of(g, fleet_size)) {
                Some(w) => parts[w].push(i),
                None => orphans.push(i),
            }
        }

        // Phase 1 — pipeline: write every sub-cohort request before
        // reading any response, so the fleet computes concurrently.
        let mut inflight: Vec<(usize, u64, Vec<usize>)> = Vec::new();
        let mut requeue: Vec<Vec<usize>> = Vec::new();
        for (w, slots) in parts.into_iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            match self.dispatch(&mut state, w, cohort, &slots) {
                Ok(id) => inflight.push((w, id, slots)),
                Err(_) => {
                    self.bury(&mut state, w);
                    requeue.push(slots);
                }
            }
        }

        // Phase 2 — collect, in dispatch order. Any failure requeues the
        // sub-cohort; the worker is dead either way.
        for (w, id, slots) in inflight {
            match self.collect(&mut state, w, id, slots.len()) {
                Ok(resp) => self.apply(&resp, &slots, &mut out),
                Err(_) => {
                    self.bury(&mut state, w);
                    requeue.push(slots);
                }
            }
        }

        // Phase 3 — recovery: re-dispatch failed sub-cohorts to
        // survivors (sequentially; this is the rare path), falling back
        // to in-process evaluation when the fleet is exhausted.
        while let Some(slots) = requeue.pop() {
            match state.assign(0) {
                Some(w) => {
                    counters.requeues.add(1);
                    match self.exchange(&mut state, w, cohort, &slots) {
                        Ok(resp) => self.apply(&resp, &slots, &mut out),
                        Err(_) => {
                            self.bury(&mut state, w);
                            requeue.push(slots);
                        }
                    }
                }
                None => {
                    counters.fallback_geometries.add(slots.len() as u64);
                    let sub: Vec<Geometry> = slots.iter().map(|&i| cohort[i]).collect();
                    let rows = self.fallback.evaluate_cohort(&sub, pool, workers);
                    for (&slot, row) in slots.iter().zip(rows) {
                        out[slot] = row;
                    }
                }
            }
        }
        if !orphans.is_empty() {
            counters.fallback_geometries.add(orphans.len() as u64);
            let sub: Vec<Geometry> = orphans.iter().map(|&i| cohort[i]).collect();
            let rows = self.fallback.evaluate_cohort(&sub, pool, workers);
            for (&slot, row) in orphans.iter().zip(rows) {
                out[slot] = row;
            }
        }
        out
    }

    fn materialize(&self, g: &Geometry) -> Option<ParetoSolution> {
        // Presentation is a per-front-member, end-of-run operation: the
        // in-process macro model computes the identical estimate without
        // a round-trip.
        self.fallback.materialize(g)
    }

    fn estimator_stats(&self) -> sega_estimator::EstimatorStats {
        // Remote workers run the same batched kernel on their own side
        // and account for it locally; this evaluator only sees the
        // in-process fallback's share.
        self.fallback.estimator_stats()
    }
}

// ---------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------

/// Fault-injection knobs of [`serve_worker`] — the levers the CI
/// distributed-fault matrix and the recovery tests pull through the real
/// CLI (`--fail-after N`, `--corrupt-after N`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerOptions {
    /// Die (process exit, no response) upon receiving the request after
    /// serving this many — `Some(0)` dies on the very first request.
    pub fail_after: Option<u64>,
    /// After serving this many requests, answer the next one with a
    /// garbage frame and exit.
    pub corrupt_after: Option<u64>,
}

/// One key space the worker has bound: the estimator and the memo table.
struct WorkerBinding {
    evaluator: Arc<dyn CohortEvaluator>,
    space: Arc<crate::cache::KeySpace>,
}

fn technology_of(key: &KeyRecord) -> Technology {
    Technology {
        name: key.tech_name.clone(),
        node_nm: f64::from_bits(key.node_bits),
        gate_area_um2: f64::from_bits(key.gate_area_bits),
        gate_delay_ns: f64::from_bits(key.gate_delay_bits),
        gate_energy_fj: f64::from_bits(key.gate_energy_bits),
        nominal_voltage: f64::from_bits(key.nominal_voltage_bits),
    }
}

fn conditions_of(key: &KeyRecord) -> OperatingConditions {
    OperatingConditions {
        voltage: f64::from_bits(key.voltage_bits),
        input_sparsity: f64::from_bits(key.sparsity_bits),
        activity: f64::from_bits(key.activity_bits),
    }
}

fn bind_worker(key: &KeyRecord, cache: &SharedEvalCache) -> Result<WorkerBinding, String> {
    let precision = Precision::from_name(&key.precision)
        .ok_or_else(|| format!("request names unknown precision `{}`", key.precision))?;
    let spec = UserSpec::new(key.wstore, precision).map_err(|e| format!("request spec: {e}"))?;
    let tech = technology_of(key);
    let conditions = conditions_of(key);
    let cache_key = CacheKey::new(&tech, &conditions, precision, key.wstore);
    Ok(WorkerBinding {
        evaluator: MacroModelBackend.bind(&spec, &tech, &conditions),
        space: cache.space(&cache_key),
    })
}

/// Serves the worker side of the protocol over `input`/`output` until a
/// shutdown frame or EOF: the body of `sega-dcim worker --serve`.
///
/// The worker keeps its own [`SharedEvalCache`] across requests, so a
/// shard that keeps landing on this worker is estimated once per fleet
/// lifetime; each response's delta carries only the entries computed
/// fresh for that request.
///
/// # Errors
///
/// A human-readable message on a transport or protocol failure (the
/// worker process exits non-zero; the coordinator requeues).
pub fn serve_worker(
    input: &mut impl Read,
    output: &mut impl Write,
    options: &WorkerOptions,
) -> Result<(), String> {
    frame::send(
        output,
        &Message::Hello {
            protocol: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| format!("worker hello: {e}"))?;
    let cache = SharedEvalCache::new();
    let mut bindings: HashMap<u64, WorkerBinding> = HashMap::new();
    let pool = Pool::for_threads(1);
    let mut served: u64 = 0;
    loop {
        let message = match frame::recv(input) {
            Ok(message) => message,
            // Coordinator gone (dropped pipes): an orderly exit too.
            Err(FrameError::Eof) => return Ok(()),
            Err(e) => return Err(format!("worker transport: {e}")),
        };
        let request = match message {
            Message::Shutdown => return Ok(()),
            Message::Request(request) => request,
            _ => return Err("coordinator sent a non-request frame".to_owned()),
        };
        if options.fail_after == Some(served) {
            // Simulated crash: die mid-batch without responding.
            std::process::exit(17);
        }
        if options.corrupt_after == Some(served) {
            // Simulated corruption: a well-framed garbage payload.
            let _ = frame::write_frame(output, b"\xde\xad\xbe\xef corrupt worker");
            std::process::exit(3);
        }
        let binding = match bindings.entry(request.key.fingerprint()) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(bind_worker(&request.key, &cache)?)
            }
        };
        let cohort: Vec<Geometry> = request
            .cohort
            .iter()
            .map(|g| Geometry {
                log_h: g.log_h,
                log_l: g.log_l,
                k: g.k,
            })
            .collect();
        // Serve memoized geometries, compute the rest, remember both.
        let mut rows: Vec<Option<[f64; 4]>> = Vec::with_capacity(cohort.len());
        let mut missing: Vec<Geometry> = Vec::new();
        let mut missing_slots: Vec<usize> = Vec::new();
        for (i, g) in cohort.iter().enumerate() {
            match binding.space.get(g) {
                Some(objectives) => rows.push(Some(objectives)),
                None => {
                    rows.push(None);
                    missing.push(*g);
                    missing_slots.push(i);
                }
            }
        }
        let computed = binding.evaluator.evaluate_cohort(&missing, &pool, 1);
        let mut delta_entries = Vec::with_capacity(computed.len());
        for ((slot, g), objectives) in missing_slots.iter().zip(&missing).zip(computed) {
            binding.space.insert(*g, objectives);
            rows[*slot] = Some(objectives);
            delta_entries.push(EntryRecord {
                geometry: record_of(g),
                objectives,
            });
        }
        let mut delta = Snapshot::default();
        if !delta_entries.is_empty() {
            delta.spaces.push(SpaceRecord {
                key: request.key.clone(),
                entries: delta_entries,
            });
            delta.canonicalize();
        }
        let response = Message::Response(EvalResponse {
            id: request.id,
            rows: rows
                .into_iter()
                .map(|r| r.expect("every cohort geometry resolved"))
                .collect(),
            delta,
        });
        frame::send(output, &response).map_err(|e| format!("worker response: {e}"))?;
        served += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_records_reconstruct_the_exact_invariants() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let key = CacheKey::new(&tech, &cond, Precision::Bf16, 8192).to_record();
        let back_tech = technology_of(&key);
        let back_cond = conditions_of(&key);
        assert_eq!(back_tech.name, tech.name);
        assert_eq!(back_tech.node_nm.to_bits(), tech.node_nm.to_bits());
        assert_eq!(
            back_tech.gate_energy_fj.to_bits(),
            tech.gate_energy_fj.to_bits()
        );
        assert_eq!(back_cond.voltage.to_bits(), cond.voltage.to_bits());
        assert_eq!(back_cond.activity.to_bits(), cond.activity.to_bits());
    }

    #[test]
    fn worker_partition_is_deterministic_and_total() {
        for fleet_size in [1usize, 2, 3, 5] {
            for log_h in 0..8 {
                for k in 1..=8 {
                    let g = Geometry { log_h, log_l: 1, k };
                    let w = worker_of(&g, fleet_size);
                    assert!(w < fleet_size);
                    assert_eq!(w, worker_of(&g, fleet_size), "stable per geometry");
                }
            }
        }
    }

    /// The worker loop is transport-agnostic: drive it over in-memory
    /// buffers, no processes involved.
    #[test]
    fn worker_loop_serves_requests_and_memoizes_deltas() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let key = CacheKey::new(&tech, &cond, spec.precision, spec.wstore).to_record();
        let cohort = vec![
            GeometryRecord {
                log_h: 5,
                log_l: 1,
                k: 4,
            },
            GeometryRecord {
                log_h: 7,
                log_l: 0,
                k: 2,
            },
        ];
        let mut input = Vec::new();
        for id in [1u64, 2] {
            frame::send(
                &mut input,
                &Message::Request(EvalRequest {
                    id,
                    key: key.clone(),
                    cohort: cohort.clone(),
                }),
            )
            .unwrap();
        }
        frame::send(&mut input, &Message::Shutdown).unwrap();
        let mut output = Vec::new();
        serve_worker(
            &mut input.as_slice(),
            &mut output,
            &WorkerOptions::default(),
        )
        .unwrap();

        let mut cursor = output.as_slice();
        assert!(matches!(
            frame::recv(&mut cursor).unwrap(),
            Message::Hello {
                protocol: PROTOCOL_VERSION
            }
        ));
        let expected = MacroModelBackend.bind(&spec, &tech, &cond);
        let pool = Pool::for_threads(1);
        let geoms: Vec<Geometry> = cohort
            .iter()
            .map(|g| Geometry {
                log_h: g.log_h,
                log_l: g.log_l,
                k: g.k,
            })
            .collect();
        let reference = expected.evaluate_cohort(&geoms, &pool, 1);
        for id in [1u64, 2] {
            match frame::recv(&mut cursor).unwrap() {
                Message::Response(resp) => {
                    assert_eq!(resp.id, id);
                    assert_eq!(resp.rows, reference);
                    if id == 1 {
                        // First request computes both entries fresh.
                        assert_eq!(resp.delta.len(), 2);
                    } else {
                        // Second request is fully memoized: empty delta.
                        assert!(resp.delta.is_empty());
                    }
                }
                other => panic!("expected a response, got {other:?}"),
            }
        }
        assert!(matches!(
            frame::recv(&mut cursor).unwrap_err(),
            FrameError::Eof
        ));
    }

    #[test]
    fn worker_loop_rejects_unknown_precision_names() {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let mut key = CacheKey::new(&tech, &cond, Precision::Int8, 8192).to_record();
        key.precision = "int3".to_owned();
        let mut input = Vec::new();
        frame::send(
            &mut input,
            &Message::Request(EvalRequest {
                id: 1,
                key,
                cohort: vec![],
            }),
        )
        .unwrap();
        let mut output = Vec::new();
        let err = serve_worker(
            &mut input.as_slice(),
            &mut output,
            &WorkerOptions::default(),
        )
        .unwrap_err();
        assert!(err.contains("int3"), "{err}");
    }
}
