//! User distillation of the Pareto frontier (paper Fig. 4, "User
//! Distillation (Optional)"): after the explorer returns the front, "the
//! users can further select their preferred DCIM designs before the
//! time-consuming generation step starts".

use crate::explore::ParetoSolution;

/// How to pick one design from the Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub enum DistillStrategy {
    /// The knee point: the solution closest (in normalized objective
    /// space) to the ideal point — the automatic default.
    Knee,
    /// The smallest-area solution.
    MinArea,
    /// The highest-throughput solution.
    MaxThroughput,
    /// The most energy-efficient solution (max TOPS/W).
    MaxEfficiency,
    /// Scalarized preference: minimize `Σ wᵢ·objᵢ` over the normalized
    /// objectives `[area, delay, energy, −throughput]`.
    Weighted([f64; 4]),
}

/// Picks one solution from a frontier according to the strategy.
///
/// Returns `None` only for an empty frontier.
pub fn distill<'a>(
    solutions: &'a [ParetoSolution],
    strategy: &DistillStrategy,
) -> Option<&'a ParetoSolution> {
    if solutions.is_empty() {
        return None;
    }
    match strategy {
        DistillStrategy::Knee => knee_point(solutions),
        DistillStrategy::MinArea => solutions
            .iter()
            .min_by(|a, b| cmp(a.estimate.area_mm2, b.estimate.area_mm2)),
        DistillStrategy::MaxThroughput => solutions
            .iter()
            .max_by(|a, b| cmp(a.estimate.tops, b.estimate.tops)),
        DistillStrategy::MaxEfficiency => solutions
            .iter()
            .max_by(|a, b| cmp(a.estimate.tops_per_w(), b.estimate.tops_per_w())),
        DistillStrategy::Weighted(w) => weighted(solutions, w),
    }
}

fn cmp(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal)
}

/// Normalizes each objective across the front to `[0, 1]` and returns the
/// per-solution normalized vectors.
fn normalized(solutions: &[ParetoSolution]) -> Vec<[f64; 4]> {
    let mut lo = [f64::INFINITY; 4];
    let mut hi = [f64::NEG_INFINITY; 4];
    for s in solutions {
        for (d, &x) in s.objectives().iter().enumerate() {
            lo[d] = lo[d].min(x);
            hi[d] = hi[d].max(x);
        }
    }
    solutions
        .iter()
        .map(|s| {
            let o = s.objectives();
            let mut n = [0.0; 4];
            for d in 0..4 {
                let span = hi[d] - lo[d];
                n[d] = if span > 0.0 {
                    (o[d] - lo[d]) / span
                } else {
                    0.0
                };
            }
            n
        })
        .collect()
}

fn knee_point(solutions: &[ParetoSolution]) -> Option<&ParetoSolution> {
    let norm = normalized(solutions);
    let best = norm
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let da: f64 = a.iter().map(|x| x * x).sum();
            let db: f64 = b.iter().map(|x| x * x).sum();
            cmp(da, db)
        })
        .map(|(i, _)| i)?;
    solutions.get(best)
}

fn weighted<'a>(solutions: &'a [ParetoSolution], weights: &[f64; 4]) -> Option<&'a ParetoSolution> {
    let norm = normalized(solutions);
    let best = norm
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            let sa: f64 = a.iter().zip(weights).map(|(x, w)| x * w).sum();
            let sb: f64 = b.iter().zip(weights).map(|(x, w)| x * w).sum();
            cmp(sa, sb)
        })
        .map(|(i, _)| i)?;
    solutions.get(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_cells::Technology;
    use sega_estimator::{estimate, DcimDesign, OperatingConditions, Precision};

    fn solution(n: u32, h: u32, l: u32, k: u32) -> ParetoSolution {
        let design = DcimDesign::for_precision(Precision::Int8, n, h, l, k).unwrap();
        let estimate = estimate(
            &design,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        );
        ParetoSolution { design, estimate }
    }

    /// Three 8K-weight designs spanning the area/throughput trade-off.
    fn front() -> Vec<ParetoSolution> {
        vec![
            solution(32, 128, 16, 1), // small & slow
            solution(32, 128, 16, 4), // middle
            solution(64, 128, 8, 8),  // big & fast
        ]
    }

    #[test]
    fn min_area_picks_smallest() {
        let f = front();
        let pick = distill(&f, &DistillStrategy::MinArea).unwrap();
        let min = f
            .iter()
            .map(|s| s.estimate.area_mm2)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(pick.estimate.area_mm2, min);
    }

    #[test]
    fn max_throughput_picks_fastest() {
        let f = front();
        let pick = distill(&f, &DistillStrategy::MaxThroughput).unwrap();
        let max = f.iter().map(|s| s.estimate.tops).fold(0.0, f64::max);
        assert_eq!(pick.estimate.tops, max);
    }

    #[test]
    fn knee_is_neither_extreme_on_spread_front() {
        let f = front();
        let knee = distill(&f, &DistillStrategy::Knee).unwrap();
        // The knee of this three-point front is the middle design.
        assert_eq!(knee.design, f[1].design);
    }

    #[test]
    fn weighted_extremes_match_dedicated_strategies() {
        let f = front();
        let area_only = distill(&f, &DistillStrategy::Weighted([1.0, 0.0, 0.0, 0.0])).unwrap();
        let min_area = distill(&f, &DistillStrategy::MinArea).unwrap();
        assert_eq!(area_only.design, min_area.design);
        let tput_only = distill(&f, &DistillStrategy::Weighted([0.0, 0.0, 0.0, 1.0])).unwrap();
        let max_tput = distill(&f, &DistillStrategy::MaxThroughput).unwrap();
        assert_eq!(tput_only.design, max_tput.design);
    }

    #[test]
    fn max_efficiency_picks_best_tops_per_w() {
        let f = front();
        let pick = distill(&f, &DistillStrategy::MaxEfficiency).unwrap();
        for s in &f {
            assert!(pick.estimate.tops_per_w() >= s.estimate.tops_per_w());
        }
    }

    #[test]
    fn empty_front_yields_none() {
        assert!(distill(&[], &DistillStrategy::Knee).is_none());
    }

    #[test]
    fn singleton_front_always_picked() {
        let f = vec![solution(32, 128, 16, 2)];
        for strat in [
            DistillStrategy::Knee,
            DistillStrategy::MinArea,
            DistillStrategy::MaxThroughput,
            DistillStrategy::MaxEfficiency,
            DistillStrategy::Weighted([0.25; 4]),
        ] {
            assert!(distill(&f, &strat).is_some(), "{strat:?}");
        }
    }
}
