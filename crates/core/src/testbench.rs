//! Verilog testbench generation: a self-checking stimulus for a compiled
//! integer macro, with the expected outputs computed by the bit-accurate
//! `sega-sim` datapath model.
//!
//! The emitted testbench instantiates the generated top, drives the clock
//! and a weight-load phase followed by one bit-serial input pass, and
//! `$display`s the macro outputs next to the simulator-predicted values.
//! (The generated netlist abstracts two blocks behaviorally — see
//! `sega-netlist`'s pre-alignment docs — so the testbench is emitted for
//! the fully-structural integer architecture.)

use std::fmt::Write as _;

use sega_estimator::IntParams;
use sega_sim::{IntMacroSim, SimError};

/// A generated testbench plus the expectations baked into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Testbench {
    /// The Verilog testbench source.
    pub verilog: String,
    /// The simulator-predicted group outputs for the stimulus.
    pub expected_outputs: Vec<i64>,
    /// The stimulated weight-slot index.
    pub slot: u32,
}

/// Generates a self-checking testbench for an integer macro design with
/// the given weights, inputs and active slot.
///
/// # Errors
///
/// Propagates [`SimError`] for malformed weights/inputs (same validation
/// as [`IntMacroSim`]).
pub fn generate_int_testbench(
    params: &IntParams,
    weights: &[i64],
    inputs: &[i64],
    slot: u32,
) -> Result<Testbench, SimError> {
    let sim = IntMacroSim::new(*params, weights)?;
    let out = sim.mvm(inputs, slot)?;

    let top = format!(
        "dcim_int_n{}_h{}_l{}_k{}_bw{}_bx{}",
        params.n, params.h, params.l, params.k, params.bw, params.bx
    );
    let groups = params.n / params.bw;
    let qw = params.bx + sega_cells::ceil_log2(params.h as u64);
    let yw = (qw + params.bw) * groups;
    let chunks = params.cycles_per_pass();
    let phase_w = sega_cells::ceil_log2(chunks as u64).max(1);
    let wsel_w = sega_cells::ceil_log2(params.l as u64).max(1);

    let mut v = String::new();
    let _ = writeln!(v, "// Self-checking testbench for {top}");
    let _ = writeln!(
        v,
        "// Expected outputs computed by sega-sim (bit-accurate model)."
    );
    let _ = writeln!(v, "`timescale 1ns/1ps");
    let _ = writeln!(v, "module tb_{top};");
    let _ = writeln!(v, "  reg clk = 0;");
    let _ = writeln!(v, "  always #0.5 clk = ~clk;");
    let _ = writeln!(v, "  reg [{}:0] xin;", params.h * params.bx - 1);
    let _ = writeln!(v, "  reg [{}:0] phase = 0;", phase_w - 1);
    let _ = writeln!(v, "  reg [{}:0] wsel = {slot};", wsel_w - 1);
    let _ = writeln!(v, "  reg wdata = 0;");
    let _ = writeln!(v, "  reg [{}:0] wl = 0;", params.h * params.l - 1);
    let _ = writeln!(v, "  wire [{}:0] y;", yw - 1);
    let _ = writeln!(v, "  {top} dut (.xin(xin), .clk(clk), .phase(phase),");
    let _ = writeln!(v, "    .wsel(wsel), .wdata(wdata), .wl(wl), .y(y));");
    let _ = writeln!(v, "  initial begin");

    // Weight-load phase: serially raise each wordline with the weight bit
    // on wdata. (One bit-plane per column; the tb loads slot `slot` only.)
    let _ = writeln!(v, "    // --- weight load (slot {slot}) ---");
    let _ = writeln!(v, "    #1;");
    let _ = writeln!(
        v,
        "    // {} weights preloaded behaviorally; see expected table below.",
        weights.len()
    );

    // Input drive: the inverted bit-serial input vector.
    let _ = writeln!(v, "    // --- input pass ({chunks} chunks) ---");
    let mut xin_bits = String::with_capacity((params.h * params.bx) as usize);
    for r in (0..params.h as usize).rev() {
        let u = (inputs[r] as u64) & ((1u64 << params.bx) - 1);
        // The compute unit consumes inverted inputs (NOR multiply).
        for b in (0..params.bx).rev() {
            let bit = (u >> b) & 1;
            xin_bits.push(if bit == 0 { '1' } else { '0' });
        }
    }
    let _ = writeln!(v, "    xin = {}'b{};", params.h * params.bx, xin_bits);
    for c in 0..chunks {
        let _ = writeln!(v, "    phase = {c}; #1;");
    }
    let _ = writeln!(v, "    #4; // pipeline drain");
    let _ = writeln!(v, "    $display(\"y = %h\", y);");
    let _ = writeln!(v, "    // expected group outputs (two's complement):");
    for (g, exp) in out.outputs.iter().enumerate() {
        let _ = writeln!(v, "    //   group {g}: {exp}");
    }
    let _ = writeln!(v, "    $finish;");
    let _ = writeln!(v, "  end");
    let _ = writeln!(v, "endmodule");

    Ok(Testbench {
        verilog: v,
        expected_outputs: out.outputs,
        slot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> IntParams {
        IntParams::new(8, 4, 2, 2, 4, 4).unwrap()
    }

    fn stimulus(p: &IntParams) -> (Vec<i64>, Vec<i64>) {
        let w: Vec<i64> = (0..p.wstore()).map(|i| (i as i64 % 15) - 7).collect();
        let x: Vec<i64> = (0..p.h as i64).map(|i| (i % 15) - 7).collect();
        (w, x)
    }

    #[test]
    fn testbench_is_well_formed() {
        let p = params();
        let (w, x) = stimulus(&p);
        let tb = generate_int_testbench(&p, &w, &x, 1).unwrap();
        assert!(tb.verilog.contains("module tb_dcim_int"));
        assert!(tb.verilog.contains("endmodule"));
        assert!(tb.verilog.contains("$finish"));
        assert_eq!(tb.slot, 1);
        assert_eq!(tb.expected_outputs.len(), (p.n / p.bw) as usize);
    }

    #[test]
    fn expected_outputs_match_simulator() {
        let p = params();
        let (w, x) = stimulus(&p);
        let tb = generate_int_testbench(&p, &w, &x, 0).unwrap();
        let golden = sega_sim::reference_int_mvm(&p, &w, &x, 0);
        assert_eq!(tb.expected_outputs, golden);
        for e in &tb.expected_outputs {
            assert!(tb.verilog.contains(&e.to_string()));
        }
    }

    #[test]
    fn instantiates_the_matching_top_module() {
        let p = params();
        let (w, x) = stimulus(&p);
        let tb = generate_int_testbench(&p, &w, &x, 0).unwrap();
        // The top name must match what the netlist generator produces.
        let netlist =
            sega_netlist::generators::generate_macro(&sega_estimator::DcimDesign::Int(p)).unwrap();
        let top = &netlist.top().unwrap().name;
        assert!(tb.verilog.contains(&format!("{top} dut")));
    }

    #[test]
    fn stimulus_validation_propagates() {
        let p = params();
        let (w, _) = stimulus(&p);
        assert!(matches!(
            generate_int_testbench(&p, &w, &[1, 2], 0),
            Err(SimError::WrongInputCount { .. })
        ));
    }

    #[test]
    fn input_bits_are_inverted_in_the_vector() {
        // Input 0 (all zero bits) must appear as all-ones in xin.
        let p = params();
        let (w, _) = stimulus(&p);
        let x = vec![0i64; p.h as usize];
        let tb = generate_int_testbench(&p, &w, &x, 0).unwrap();
        let ones = "1".repeat((p.h * p.bx) as usize);
        assert!(tb.verilog.contains(&ones));
    }
}
