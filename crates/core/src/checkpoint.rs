//! Checkpointed batch resume: a journal of completed jobs that lets a
//! killed `sega-dcim batch` pick up where it stopped.
//!
//! The journal is a sidecar file next to the batch run: one
//! [`sega_wire::frame`]-framed header naming the job list (by
//! fingerprint, so a resume against a *different* job file fails loudly)
//! followed by one record frame per completed job — its accounting, its
//! front as geometry triples, and the cache [`Snapshot`] **delta** the
//! job added. A resumed run replays the deltas into the shared cache
//! (warm start), reconstructs finished outcomes by re-materializing
//! their journaled fronts through the deterministic macro model, and
//! executes only the remaining jobs — producing a report **byte-identical**
//! to an uninterrupted run.
//!
//! Durability follows the transport's framing discipline: every record
//! is a complete frame flushed on append, and the loader keeps the
//! longest decodable prefix — a record torn by `kill -9` mid-write is
//! dropped (that job simply reruns) instead of poisoning the file. On
//! resume the file is truncated back to that prefix before appending.

use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use sega_estimator::EstimatorStats;
use sega_moga::{DominanceStats, DriverState, Nsga2Config, ObjectiveMatrix, SpeculationStats};
use sega_wire::frame::{self, FrameError};
use sega_wire::{DriverStateRecord, GeometryRecord, Reader, Snapshot, WireError, Writer};

use crate::backend::EvalBackend;
use crate::backend::MacroModelBackend;
use crate::batch::{BatchJob, BatchOutcome};
use crate::cache::FxHasher;
use crate::explore::{ExplorationResult, ExploreResume, Geometry};
use sega_cells::Technology;
use sega_estimator::OperatingConditions;

/// Where the batch journal lives and whether to resume from it.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// The journal file.
    pub path: PathBuf,
    /// `true` resumes from an existing journal (the file must exist and
    /// match the job list); `false` starts a fresh journal, replacing
    /// any file at `path`.
    pub resume: bool,
}

impl CheckpointConfig {
    /// A fresh journal at `path`.
    pub fn fresh(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            resume: false,
        }
    }

    /// Resume from the journal at `path`.
    pub fn resume(path: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            path: path.into(),
            resume: true,
        }
    }
}

/// Document kind tag of the journal header frame.
const HEADER_KIND: &str = "batch-checkpoint";
/// Document kind tag of each per-job record frame.
const RECORD_KIND: &str = "batch-job-record";
/// Document kind tag of a mid-job progress frame (a generation-boundary
/// GA checkpoint inside a long exploration).
const PROGRESS_KIND: &str = "batch-job-progress";

/// The journal header: which batch this journal belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Header {
    /// Fingerprint of the job list (specs + budgets, order-sensitive).
    pub fingerprint: u64,
    /// Cache entries preloaded before the first job of the original run
    /// — carried so a resumed report reproduces the original's
    /// `preloaded_entries` byte-for-byte.
    pub preloaded_entries: u64,
    /// Backend name of the original run (a resume under a different
    /// backend is refused: its report could not match).
    pub backend: String,
}

impl Header {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header();
        w.put_str(HEADER_KIND);
        w.put_u64(self.fingerprint);
        w.put_u64(self.preloaded_entries);
        w.put_str(&self.backend);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<Header, WireError> {
        let mut r = Reader::open(bytes)?;
        let kind = r.take_str()?;
        if kind != HEADER_KIND {
            return Err(WireError::Malformed(format!(
                "expected a {HEADER_KIND} document, found `{kind}`"
            )));
        }
        Ok(Header {
            fingerprint: r.take_u64()?,
            preloaded_entries: r.take_u64()?,
            backend: r.take_str()?,
        })
    }
}

/// One journaled job: everything needed to reconstruct its
/// [`BatchOutcome`] without re-running it.
#[derive(Debug, Clone)]
pub(crate) struct JobRecord {
    /// Index into the job list.
    pub index: u64,
    /// `ExplorationResult::evaluations`.
    pub evaluations: u64,
    /// `ExplorationResult::distinct_evaluations`.
    pub distinct_evaluations: u64,
    /// `ExplorationResult::cache_hits`.
    pub cache_hits: u64,
    /// `ExplorationResult::interned`.
    pub interned: u64,
    /// Dominance-kernel counters of the run.
    pub dominance: DominanceStats,
    /// Estimator-kernel counters of the run.
    pub estimator: EstimatorStats,
    /// Speculative-loop ledger of the run (all zero without
    /// `--speculate`).
    pub speculation: SpeculationStats,
    /// The front, in report order, as log-geometry triples — the macro
    /// model re-materializes the full solutions deterministically.
    pub front: Vec<GeometryRecord>,
    /// The cache entries this job added (snapshot diff against the
    /// cache state before the job).
    pub delta: Snapshot,
}

impl JobRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header();
        w.put_str(RECORD_KIND);
        w.put_u64(self.index);
        w.put_u64(self.evaluations);
        w.put_u64(self.distinct_evaluations);
        w.put_u64(self.cache_hits);
        w.put_u64(self.interned);
        w.put_u64(self.dominance.comparisons);
        w.put_u64(self.dominance.word_ops);
        w.put_u64(self.dominance.allocations);
        w.put_u64(self.estimator.designs);
        w.put_u64(self.estimator.batched);
        w.put_u64(self.estimator.scalar_fallbacks);
        w.put_u64(self.estimator.allocations);
        w.put_u64(self.speculation.speculated);
        w.put_u64(self.speculation.confirmed);
        w.put_u64(self.speculation.rebred);
        w.put_u64(self.front.len() as u64);
        for g in &self.front {
            w.put_u32(g.log_h);
            w.put_u32(g.log_l);
            w.put_u32(g.k);
        }
        let delta = self.delta.encode_binary();
        w.put_u64(delta.len() as u64);
        w.put_bytes(&delta);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<JobRecord, WireError> {
        let mut r = Reader::open(bytes)?;
        let kind = r.take_str()?;
        if kind != RECORD_KIND {
            return Err(WireError::Malformed(format!(
                "expected a {RECORD_KIND} document, found `{kind}`"
            )));
        }
        let index = r.take_u64()?;
        let evaluations = r.take_u64()?;
        let distinct_evaluations = r.take_u64()?;
        let cache_hits = r.take_u64()?;
        let interned = r.take_u64()?;
        let dominance = DominanceStats {
            comparisons: r.take_u64()?,
            word_ops: r.take_u64()?,
            allocations: r.take_u64()?,
        };
        let estimator = EstimatorStats {
            designs: r.take_u64()?,
            batched: r.take_u64()?,
            scalar_fallbacks: r.take_u64()?,
            allocations: r.take_u64()?,
        };
        let speculation = SpeculationStats {
            speculated: r.take_u64()?,
            confirmed: r.take_u64()?,
            rebred: r.take_u64()?,
        };
        let front_len = r.take_u64()? as usize;
        let mut front = Vec::with_capacity(front_len.min(1 << 20));
        for _ in 0..front_len {
            front.push(GeometryRecord {
                log_h: r.take_u32()?,
                log_l: r.take_u32()?,
                k: r.take_u32()?,
            });
        }
        let delta_len = r.take_u64()? as usize;
        let delta = Snapshot::decode_binary(r.take_bytes(delta_len)?)?;
        Ok(JobRecord {
            index,
            evaluations,
            distinct_evaluations,
            cache_hits,
            interned,
            dominance,
            estimator,
            speculation,
            front,
            delta,
        })
    }
}

/// A mid-job GA checkpoint: the exploration of job `index` had committed
/// `driver.bred` generations when this frame was written. Replaces the
/// previous progress frame logically (the loader keeps only the latest),
/// and is superseded entirely by the job's [`JobRecord`] once it
/// finishes.
#[derive(Debug, Clone)]
pub(crate) struct ProgressRecord {
    /// Index into the job list.
    pub index: u64,
    /// Cache hits the exploration's stats had recorded so far.
    pub hits: u64,
    /// Distinct evaluations (misses) recorded so far.
    pub misses: u64,
    /// Estimator-kernel counters recorded so far.
    pub estimator: EstimatorStats,
    /// The GA driver at the generation boundary.
    pub driver: DriverStateRecord,
    /// Cache entries added **since this job started** (the finished-job
    /// deltas already journaled cover everything before it).
    pub delta: Snapshot,
}

impl ProgressRecord {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header();
        w.put_str(PROGRESS_KIND);
        w.put_u64(self.index);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.estimator.designs);
        w.put_u64(self.estimator.batched);
        w.put_u64(self.estimator.scalar_fallbacks);
        w.put_u64(self.estimator.allocations);
        let driver = self.driver.encode();
        w.put_u64(driver.len() as u64);
        w.put_bytes(&driver);
        let delta = self.delta.encode_binary();
        w.put_u64(delta.len() as u64);
        w.put_bytes(&delta);
        w.finish()
    }

    fn decode(bytes: &[u8]) -> Result<ProgressRecord, WireError> {
        let mut r = Reader::open(bytes)?;
        let kind = r.take_str()?;
        if kind != PROGRESS_KIND {
            return Err(WireError::Malformed(format!(
                "expected a {PROGRESS_KIND} document, found `{kind}`"
            )));
        }
        let index = r.take_u64()?;
        let hits = r.take_u64()?;
        let misses = r.take_u64()?;
        let estimator = EstimatorStats {
            designs: r.take_u64()?,
            batched: r.take_u64()?,
            scalar_fallbacks: r.take_u64()?,
            allocations: r.take_u64()?,
        };
        let driver_len = r.take_u64()? as usize;
        let driver = DriverStateRecord::decode(r.take_bytes(driver_len)?)?;
        let delta_len = r.take_u64()? as usize;
        let delta = Snapshot::decode_binary(r.take_bytes(delta_len)?)?;
        Ok(ProgressRecord {
            index,
            hits,
            misses,
            estimator,
            driver,
            delta,
        })
    }
}

/// [`DriverState`] → wire record (field-for-field, floats as bits).
pub(crate) fn driver_record_of(state: &DriverState<Geometry>) -> DriverStateRecord {
    DriverStateRecord {
        population: state.config.population as u64,
        generations: state.config.generations as u64,
        crossover_bits: state.config.crossover_rate.to_bits(),
        mutation_bits: state.config.mutation_rate.to_bits(),
        seed: state.config.seed,
        intern: state.config.intern,
        rng: state.rng,
        genomes: state
            .genomes
            .iter()
            .map(|g| GeometryRecord {
                log_h: g.log_h,
                log_l: g.log_l,
                k: g.k,
            })
            .collect(),
        objective_width: state.objectives.width() as u32,
        objective_bits: state
            .objectives
            .as_flat()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        rank: state.rank.iter().map(|&r| r as u64).collect(),
        crowding_bits: state.crowding.iter().map(|v| v.to_bits()).collect(),
        bred: state.bred as u64,
        evaluations: state.evaluations as u64,
        interned: state.interned as u64,
        dominance: [
            state.dominance.comparisons,
            state.dominance.word_ops,
            state.dominance.allocations,
        ],
        speculation: [
            state.speculation.speculated,
            state.speculation.confirmed,
            state.speculation.rebred,
        ],
    }
}

/// Wire record → [`DriverState`] (decode already validated the
/// population vectors agree).
pub(crate) fn driver_state_of(record: &DriverStateRecord) -> DriverState<Geometry> {
    let width = record.objective_width as usize;
    let mut objectives = ObjectiveMatrix::with_capacity(width, record.genomes.len());
    if width > 0 {
        let mut row = vec![0.0f64; width];
        for bits in record.objective_bits.chunks(width) {
            for (v, &b) in row.iter_mut().zip(bits) {
                *v = f64::from_bits(b);
            }
            objectives.push_row(&row);
        }
    }
    DriverState {
        config: Nsga2Config {
            population: record.population as usize,
            generations: record.generations as usize,
            crossover_rate: f64::from_bits(record.crossover_bits),
            mutation_rate: f64::from_bits(record.mutation_bits),
            seed: record.seed,
            intern: record.intern,
        },
        rng: record.rng,
        genomes: record
            .genomes
            .iter()
            .map(|g| Geometry {
                log_h: g.log_h,
                log_l: g.log_l,
                k: g.k,
            })
            .collect(),
        objectives,
        rank: record.rank.iter().map(|&r| r as usize).collect(),
        crowding: record
            .crowding_bits
            .iter()
            .map(|&b| f64::from_bits(b))
            .collect(),
        bred: record.bred as usize,
        evaluations: record.evaluations as usize,
        interned: record.interned as usize,
        dominance: DominanceStats {
            comparisons: record.dominance[0],
            word_ops: record.dominance[1],
            allocations: record.dominance[2],
        },
        speculation: SpeculationStats {
            speculated: record.speculation[0],
            confirmed: record.speculation[1],
            rebred: record.speculation[2],
        },
    }
}

/// A [`ProgressRecord`] from a mid-exploration [`ExploreResume`].
pub(crate) fn progress_record_of(
    index: usize,
    resume: &ExploreResume,
    delta: Snapshot,
) -> ProgressRecord {
    ProgressRecord {
        index: index as u64,
        hits: resume.hits as u64,
        misses: resume.misses as u64,
        estimator: resume.estimator,
        driver: driver_record_of(&resume.driver),
        delta,
    }
}

/// The [`ExploreResume`] a journaled [`ProgressRecord`] resumes from
/// (the caller loads the record's cache delta separately).
pub(crate) fn resume_of_progress(progress: &ProgressRecord) -> ExploreResume {
    ExploreResume {
        driver: driver_state_of(&progress.driver),
        hits: progress.hits as usize,
        misses: progress.misses as usize,
        estimator: progress.estimator,
    }
}

/// Deterministic fingerprint of a job list: every field that shapes the
/// exploration, in order — the same Fx hash the cache shards by, so it
/// is stable across runs, platforms and processes.
pub(crate) fn jobs_fingerprint(jobs: &[BatchJob]) -> u64 {
    use std::hash::Hasher;
    let mut h = FxHasher::default();
    h.write_usize(jobs.len());
    for job in jobs {
        h.write_u64(job.spec.wstore);
        h.write(job.spec.precision.name().as_bytes());
        h.write_usize(job.config.population);
        h.write_usize(job.config.generations);
        h.write_u64(job.config.crossover_rate.to_bits());
        h.write_u64(job.config.mutation_rate.to_bits());
        h.write_u64(job.config.seed);
        h.write_u8(job.config.intern as u8);
    }
    h.finish()
}

/// The parsed journal: its header, the complete records, the latest
/// still-relevant mid-job progress frame, and the byte length of the
/// decodable prefix (everything past it is torn tail).
pub(crate) struct LoadedJournal {
    pub header: Header,
    pub records: Vec<JobRecord>,
    /// The newest [`ProgressRecord`] whose job has no finished
    /// [`JobRecord`] — the point a resumed run continues that job from.
    pub progress: Option<ProgressRecord>,
    pub good_len: u64,
}

/// Parses journal bytes, keeping the longest decodable prefix.
///
/// # Errors
///
/// Only when the *header* is unreadable — a journal that never recorded
/// its identity cannot be safely resumed. Torn or corrupt record tails
/// are tolerated: those jobs rerun.
pub(crate) fn load_journal(bytes: &[u8]) -> Result<LoadedJournal, String> {
    let mut cursor = bytes;
    let header_payload =
        frame::read_frame(&mut cursor).map_err(|e| format!("checkpoint journal header: {e}"))?;
    let header =
        Header::decode(&header_payload).map_err(|e| format!("checkpoint journal header: {e}"))?;
    let mut records: Vec<JobRecord> = Vec::new();
    let mut progress: Option<ProgressRecord> = None;
    let mut good_len = (bytes.len() - cursor.len()) as u64;
    loop {
        let payload = match frame::read_frame(&mut cursor) {
            Ok(payload) => payload,
            // Clean end *or* a frame torn mid-write: either way the
            // decodable prefix ends here.
            Err(FrameError::Eof) => break,
            Err(_) => break,
        };
        // Two record kinds interleave: finished jobs and mid-job GA
        // progress. Later frames supersede earlier progress (each
        // progress frame carries the complete driver state).
        if let Ok(record) = JobRecord::decode(&payload) {
            records.push(record);
            good_len = (bytes.len() - cursor.len()) as u64;
        } else if let Ok(record) = ProgressRecord::decode(&payload) {
            progress = Some(record);
            good_len = (bytes.len() - cursor.len()) as u64;
        } else {
            // A framed-but-garbled record: stop at the last good one.
            break;
        }
    }
    // A progress frame is only live while its job is unfinished — the
    // job's own record makes it redundant.
    if let Some(p) = &progress {
        if records.iter().any(|r| r.index == p.index) {
            progress = None;
        }
    }
    Ok(LoadedJournal {
        header,
        records,
        progress,
        good_len,
    })
}

/// An open journal file accepting record appends.
#[derive(Debug)]
pub(crate) struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Creates a fresh journal at `path` (replacing any existing file)
    /// and writes its header.
    pub fn create(path: &Path, header: &Header) -> Result<Journal, String> {
        let mut file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create checkpoint `{}`: {e}", path.display()))?;
        frame::write_frame(&mut file, &header.encode())
            .map_err(|e| format!("checkpoint header write: {e}"))?;
        file.sync_data()
            .map_err(|e| format!("checkpoint sync: {e}"))?;
        Ok(Journal { file })
    }

    /// Reopens the journal at `path` for appending, first truncating it
    /// to `good_len` so a torn tail never sits between records.
    pub fn reopen(path: &Path, good_len: u64) -> Result<Journal, String> {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("cannot reopen checkpoint `{}`: {e}", path.display()))?;
        file.set_len(good_len)
            .map_err(|e| format!("checkpoint truncate: {e}"))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("checkpoint seek: {e}"))?;
        Ok(Journal { file })
    }

    /// Appends one completed-job record and flushes it to disk.
    pub fn append(&mut self, record: &JobRecord) -> Result<(), String> {
        frame::write_frame(&mut self.file, &record.encode())
            .map_err(|e| format!("checkpoint record write: {e}"))?;
        self.file
            .flush()
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("checkpoint sync: {e}"))
    }

    /// Appends one mid-job progress record and flushes it to disk. The
    /// journal grows by one frame per checkpoint (append-only — no
    /// rewriting on the hot path); the loader keeps only the latest.
    pub fn append_progress(&mut self, record: &ProgressRecord) -> Result<(), String> {
        frame::write_frame(&mut self.file, &record.encode())
            .map_err(|e| format!("checkpoint progress write: {e}"))?;
        self.file
            .flush()
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("checkpoint sync: {e}"))
    }
}

/// The journal record of a finished job.
pub(crate) fn record_of_outcome(
    index: usize,
    outcome: &BatchOutcome,
    delta: Snapshot,
) -> JobRecord {
    let result = &outcome.result;
    JobRecord {
        index: index as u64,
        evaluations: result.evaluations as u64,
        distinct_evaluations: result.distinct_evaluations as u64,
        cache_hits: result.cache_hits as u64,
        interned: result.interned as u64,
        dominance: result.dominance,
        estimator: result.estimator,
        speculation: result.speculation,
        front: result
            .solutions
            .iter()
            .map(|s| {
                let (_, h, l, k) = s.design.geometry();
                // `design_of` builds h and l as `1 << log`, so the logs
                // round-trip exactly through trailing_zeros.
                GeometryRecord {
                    log_h: h.trailing_zeros(),
                    log_l: l.trailing_zeros(),
                    k,
                }
            })
            .collect(),
        delta,
    }
}

/// Rebuilds a finished job's [`BatchOutcome`] from its journal record:
/// the accounting is copied, the front re-materialized through the
/// deterministic in-process macro model (the same path
/// [`CohortEvaluator::materialize`](crate::backend::CohortEvaluator::materialize)
/// takes for presentation), preserving journaled order.
///
/// # Errors
///
/// A record whose geometry no longer materializes — a journal from a
/// different job file that somehow passed the fingerprint check.
pub(crate) fn reconstruct_outcome(
    record: &JobRecord,
    job: &BatchJob,
    tech: &Technology,
    conditions: &OperatingConditions,
) -> Result<BatchOutcome, String> {
    let evaluator = MacroModelBackend.bind(&job.spec, tech, conditions);
    let solutions = record
        .front
        .iter()
        .map(|g| {
            evaluator
                .materialize(&Geometry {
                    log_h: g.log_h,
                    log_l: g.log_l,
                    k: g.k,
                })
                .ok_or_else(|| {
                    format!(
                        "checkpoint record {} names an infeasible geometry \
                         (2^{} × 2^{}, k={})",
                        record.index, g.log_h, g.log_l, g.k
                    )
                })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(BatchOutcome {
        config: job.config.clone(),
        result: ExplorationResult {
            spec: job.spec,
            solutions,
            evaluations: record.evaluations as usize,
            distinct_evaluations: record.distinct_evaluations as usize,
            cache_hits: record.cache_hits as usize,
            interned: record.interned as usize,
            dominance: record.dominance,
            estimator: record.estimator,
            speculation: record.speculation,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::parse_jobs;
    use sega_moga::Nsga2Config;

    fn jobs() -> Vec<BatchJob> {
        parse_jobs(
            r#"[{"wstore": 8192, "precision": "int8", "seed": 3},
                {"wstore": 16384, "precision": "bf16", "seed": 4}]"#,
            &Nsga2Config {
                population: 10,
                generations: 4,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn sample_record(index: u64) -> JobRecord {
        JobRecord {
            index,
            evaluations: 50,
            distinct_evaluations: 20,
            cache_hits: 30,
            interned: 5,
            dominance: DominanceStats {
                comparisons: 123,
                word_ops: 4,
                allocations: 1,
            },
            estimator: EstimatorStats {
                designs: 20,
                batched: 16,
                scalar_fallbacks: 4,
                allocations: 2,
            },
            speculation: SpeculationStats {
                speculated: 9,
                confirmed: 7,
                rebred: 2,
            },
            front: vec![
                GeometryRecord {
                    log_h: 5,
                    log_l: 1,
                    k: 4,
                },
                GeometryRecord {
                    log_h: 7,
                    log_l: 0,
                    k: 2,
                },
            ],
            delta: Snapshot::default(),
        }
    }

    #[test]
    fn records_round_trip_bitwise() {
        let record = sample_record(7);
        let decoded = JobRecord::decode(&record.encode()).unwrap();
        assert_eq!(decoded.index, 7);
        assert_eq!(decoded.evaluations, 50);
        assert_eq!(decoded.dominance, record.dominance);
        assert_eq!(decoded.estimator, record.estimator);
        assert_eq!(decoded.front, record.front);
        assert_eq!(decoded.delta.encode_binary(), record.delta.encode_binary());
        let header = Header {
            fingerprint: 0xdead_beef,
            preloaded_entries: 12,
            backend: "macro-model".to_owned(),
        };
        assert_eq!(Header::decode(&header.encode()).unwrap(), header);
        // Kind tags are checked, not assumed.
        assert!(Header::decode(&record.encode()).is_err());
        assert!(JobRecord::decode(&header.encode()).is_err());
    }

    #[test]
    fn fingerprints_are_order_and_field_sensitive() {
        let a = jobs();
        let mut reversed = a.clone();
        reversed.reverse();
        assert_ne!(jobs_fingerprint(&a), jobs_fingerprint(&reversed));
        let mut reseeded = a.clone();
        reseeded[0].config.seed += 1;
        assert_ne!(jobs_fingerprint(&a), jobs_fingerprint(&reseeded));
        assert_eq!(jobs_fingerprint(&a), jobs_fingerprint(&jobs()));
    }

    #[test]
    fn torn_tails_are_dropped_but_the_prefix_survives() {
        let header = Header {
            fingerprint: 1,
            preloaded_entries: 0,
            backend: "macro-model".to_owned(),
        };
        let mut bytes = Vec::new();
        frame::write_frame(&mut bytes, &header.encode()).unwrap();
        frame::write_frame(&mut bytes, &sample_record(0).encode()).unwrap();
        let good_len = bytes.len() as u64;
        // A record torn mid-write: the length prefix promises more than
        // the file holds.
        let torn = sample_record(1).encode();
        frame::write_truncated_frame(&mut bytes, &torn, torn.len() / 3).unwrap();
        let loaded = load_journal(&bytes).unwrap();
        assert_eq!(loaded.header, header);
        assert_eq!(loaded.records.len(), 1);
        assert_eq!(loaded.records[0].index, 0);
        assert_eq!(loaded.good_len, good_len);
        // An empty journal (header only) is valid: zero records.
        let mut only_header = Vec::new();
        frame::write_frame(&mut only_header, &header.encode()).unwrap();
        let loaded = load_journal(&only_header).unwrap();
        assert!(loaded.records.is_empty());
        // No header at all is a hard error.
        assert!(load_journal(b"").is_err());
        assert!(load_journal(b"garbage that is not a frame").is_err());
    }

    #[test]
    fn reconstruction_rematerializes_the_journaled_front() {
        let jobs = jobs();
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let record = sample_record(0);
        let outcome = reconstruct_outcome(&record, &jobs[0], &tech, &cond).unwrap();
        assert_eq!(outcome.result.solutions.len(), 2);
        assert_eq!(outcome.result.evaluations, 50);
        // The materialized estimate is the macro model's own answer for
        // that geometry — bit-identical to a live run's.
        let evaluator = MacroModelBackend.bind(&jobs[0].spec, &tech, &cond);
        let direct = evaluator
            .materialize(&Geometry {
                log_h: 5,
                log_l: 1,
                k: 4,
            })
            .unwrap();
        assert_eq!(
            outcome.result.solutions[0].objectives().map(f64::to_bits),
            direct.objectives().map(f64::to_bits)
        );
    }
}
