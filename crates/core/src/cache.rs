//! The cross-exploration estimate cache: an N-way sharded concurrent
//! memoization table keyed by `(technology, conditions, precision,
//! Wstore)` × [`Geometry`].
//!
//! PR 1's `EvalCache` was a single `Mutex<HashMap>` owned by one
//! `DcimProblem`: each exploration started from an empty table and threw
//! it away at the end. [`SharedEvalCache`] lifts the table out of the
//! problem so that
//!
//! * the **mixed-precision fan-out** shares one cache object across its
//!   per-precision runs (each precision occupies its own [`CacheKey`]
//!   space — entries never alias across architectures),
//! * **sweep points** (the fig7/fig8 binaries, the criterion benches'
//!   repeated iterations) reuse everything an earlier point with the same
//!   key already estimated, and
//! * **repeated `Compiler` runs** on the same specification re-estimate
//!   nothing: a second identical exploration reports zero distinct
//!   evaluations.
//!
//! Internally each key space is split into power-of-two **shards**
//! (independent mutexes), so concurrent explorations and the pool's
//! worker threads don't serialize on one lock, and every map hashes with
//! the vendored [`FxHasher`] — the workspace builds without crates.io,
//! and SipHash's DoS resistance buys nothing for 12-byte geometry keys
//! on a trusted hot path.
//!
//! Results are unaffected by any of this: a cached objective vector is
//! bit-identical to a recomputed one (the estimator is deterministic), so
//! sharing only changes *counters and wall-clock*, never fronts.
//!
//! The cache is also **persistent and mergeable**:
//! [`SharedEvalCache::snapshot`] exports a canonical wire image
//! ([`sega_wire::Snapshot`], identical bytes for identical facts
//! regardless of shard count or insertion order),
//! [`SharedEvalCache::load`] installs one, and
//! [`SharedEvalCache::merge`] unions two live caches —
//! commutative/idempotent operations, so caches from separate processes
//! (CLI `--cache-file` warm starts today, remote estimator workers
//! tomorrow) combine in any order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sega_cells::Technology;
use sega_estimator::{EstimatorStats, OperatingConditions, Precision};
use sega_moga::DominanceStats;
use sega_wire::snapshot::{EntryRecord, GeometryRecord, KeyRecord, Snapshot, SpaceRecord};

use crate::explore::Geometry;

/// A vendored FxHash-style hasher (the rustc/Firefox multiply-rotate
/// hash): one rotate-xor-multiply per word, no per-process seeding.
///
/// Orders of magnitude cheaper than the default SipHash on the small
/// fixed-size keys the cache uses, and deterministic across processes —
/// which keeps shard assignment (and therefore lock behaviour) stable
/// between runs.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The FxHash multiplier (64-bit golden-ratio constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// A `HashMap` hashing with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` hashing with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Everything an objective vector depends on **besides** the geometry:
/// the technology calibration, the operating conditions, the precision
/// and the storage capacity. Two explorations with equal keys may share
/// cached estimates; two with different keys never alias.
///
/// Floating-point fields are keyed by their exact bit patterns —
/// equality here must mean "the estimator would compute the identical
/// `f64`s", nothing looser.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    tech_name: Arc<str>,
    node_bits: u64,
    gate_area_bits: u64,
    gate_delay_bits: u64,
    gate_energy_bits: u64,
    nominal_voltage_bits: u64,
    voltage_bits: u64,
    sparsity_bits: u64,
    activity_bits: u64,
    precision: Precision,
    wstore: u64,
}

impl CacheKey {
    /// Builds the key for one exploration's invariants.
    pub fn new(
        tech: &Technology,
        conditions: &OperatingConditions,
        precision: Precision,
        wstore: u64,
    ) -> CacheKey {
        CacheKey {
            tech_name: Arc::from(tech.name.as_str()),
            node_bits: tech.node_nm.to_bits(),
            gate_area_bits: tech.gate_area_um2.to_bits(),
            gate_delay_bits: tech.gate_delay_ns.to_bits(),
            gate_energy_bits: tech.gate_energy_fj.to_bits(),
            nominal_voltage_bits: tech.nominal_voltage.to_bits(),
            voltage_bits: conditions.voltage.to_bits(),
            sparsity_bits: conditions.input_sparsity.to_bits(),
            activity_bits: conditions.activity.to_bits(),
            precision,
            wstore,
        }
    }

    /// The wire image of this key (the snapshot format's
    /// technology+conditions fingerprint source).
    pub fn to_record(&self) -> KeyRecord {
        KeyRecord {
            tech_name: self.tech_name.as_ref().to_owned(),
            node_bits: self.node_bits,
            gate_area_bits: self.gate_area_bits,
            gate_delay_bits: self.gate_delay_bits,
            gate_energy_bits: self.gate_energy_bits,
            nominal_voltage_bits: self.nominal_voltage_bits,
            voltage_bits: self.voltage_bits,
            sparsity_bits: self.sparsity_bits,
            activity_bits: self.activity_bits,
            precision: self.precision.name().to_owned(),
            wstore: self.wstore,
        }
    }

    /// Rebuilds a key from its wire image.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::UnknownPrecision`] when the record names a
    /// precision this engine does not know (e.g. a snapshot from a newer
    /// build).
    pub fn from_record(record: &KeyRecord) -> Result<CacheKey, SnapshotError> {
        let precision = Precision::from_name(&record.precision)
            .ok_or_else(|| SnapshotError::UnknownPrecision(record.precision.clone()))?;
        Ok(CacheKey {
            tech_name: Arc::from(record.tech_name.as_str()),
            node_bits: record.node_bits,
            gate_area_bits: record.gate_area_bits,
            gate_delay_bits: record.gate_delay_bits,
            gate_energy_bits: record.gate_energy_bits,
            nominal_voltage_bits: record.nominal_voltage_bits,
            voltage_bits: record.voltage_bits,
            sparsity_bits: record.sparsity_bits,
            activity_bits: record.activity_bits,
            precision,
            wstore: record.wstore,
        })
    }
}

/// A snapshot that cannot be installed into this engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot names a precision this build does not know.
    UnknownPrecision(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::UnknownPrecision(name) => {
                write!(f, "snapshot names unknown precision `{name}`")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The sharded geometry → objectives table of **one** [`CacheKey`]: what
/// a `DcimProblem` actually reads and writes on the hot path, resolved
/// once per exploration so per-genome operations never touch the key
/// again.
#[derive(Debug)]
pub struct KeySpace {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
}

/// One independently locked slice of a [`KeySpace`].
type Shard = Mutex<FxHashMap<Geometry, [f64; 4]>>;

impl KeySpace {
    fn new(shards: usize) -> KeySpace {
        let shards = shards.max(1).next_power_of_two();
        KeySpace {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            mask: shards - 1,
        }
    }

    #[inline]
    fn shard_of(&self, g: &Geometry) -> usize {
        let mut h = FxHasher::default();
        g.hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    /// Looks up one geometry.
    pub fn get(&self, g: &Geometry) -> Option<[f64; 4]> {
        self.shards[self.shard_of(g)]
            .lock()
            .expect("cache shard poisoned")
            .get(g)
            .copied()
    }

    /// Installs one geometry's objectives.
    pub fn insert(&self, g: Geometry, objectives: [f64; 4]) {
        self.shards[self.shard_of(&g)]
            .lock()
            .expect("cache shard poisoned")
            .insert(g, objectives);
    }

    /// Installs one geometry's objectives unless it is already memoized
    /// (the merge/load primitive: first value wins, so repeated merges
    /// are idempotent). Returns `true` when the entry was new.
    pub fn insert_if_absent(&self, g: Geometry, objectives: [f64; 4]) -> bool {
        let mut shard = self.shards[self.shard_of(&g)]
            .lock()
            .expect("cache shard poisoned");
        match shard.entry(g) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(objectives);
                true
            }
        }
    }

    /// Every memoized `(geometry, objectives)` pair, in unspecified
    /// order (snapshots canonicalize afterwards).
    pub fn entries(&self) -> Vec<(Geometry, [f64; 4])> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .iter()
                    .map(|(g, o)| (*g, *o))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of memoized geometries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-level cache: a map from [`CacheKey`] to its sharded
/// [`KeySpace`], plus global accounting.
///
/// The key map is behind a single mutex, but it is touched **once per
/// exploration** (key resolution), never per genome — all hot-path
/// traffic goes through the resolved `Arc<KeySpace>`'s shards.
#[derive(Debug)]
pub struct SharedEvalCache {
    spaces: Mutex<FxHashMap<CacheKey, Arc<KeySpace>>>,
    shards_per_space: usize,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Default shard count per key space — enough that a pool of a dozen
/// workers rarely collides, small enough to stay cache-friendly.
pub const DEFAULT_SHARDS: usize = 16;

impl SharedEvalCache {
    /// A cache with [`DEFAULT_SHARDS`] shards per key space.
    pub fn new() -> SharedEvalCache {
        SharedEvalCache::with_shards(DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count per key space (rounded up to
    /// a power of two). Results are invariant in the shard count; only
    /// lock contention changes.
    pub fn with_shards(shards: usize) -> SharedEvalCache {
        SharedEvalCache {
            spaces: Mutex::default(),
            shards_per_space: shards.max(1).next_power_of_two(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The process-wide cache: every `Compiler` and exploration that
    /// opts into sharing without providing its own cache object lands
    /// here, so estimates accumulate across the whole process lifetime.
    pub fn global() -> Arc<SharedEvalCache> {
        static GLOBAL: OnceLock<Arc<SharedEvalCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(SharedEvalCache::new())))
    }

    /// Resolves (creating on first use) the key space for one
    /// exploration's invariants. Called once per exploration.
    pub fn space(&self, key: &CacheKey) -> Arc<KeySpace> {
        let mut spaces = self.spaces.lock().expect("cache key map poisoned");
        match spaces.get(key) {
            Some(space) => Arc::clone(space),
            None => {
                let space = Arc::new(KeySpace::new(self.shards_per_space));
                spaces.insert(key.clone(), Arc::clone(&space));
                space
            }
        }
    }

    /// Shards per key space.
    pub fn shards_per_space(&self) -> usize {
        self.shards_per_space
    }

    /// Number of distinct key spaces resolved so far.
    pub fn spaces_len(&self) -> usize {
        self.spaces.lock().expect("cache key map poisoned").len()
    }

    /// Total memoized geometries across every key space.
    pub fn len(&self) -> usize {
        let spaces: Vec<Arc<KeySpace>> = {
            let map = self.spaces.lock().expect("cache key map poisoned");
            map.values().map(Arc::clone).collect()
        };
        spaces.iter().map(|s| s.len()).sum()
    }

    /// True when no geometry has been memoized in any key space.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime evaluations served from memory, across every user of
    /// this cache object.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime evaluations that reached the estimator.
    pub fn distinct_evaluations(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, hits: usize, misses: usize) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    /// Every resolved `(key, key space)` pair at this instant.
    fn spaces_vec(&self) -> Vec<(CacheKey, Arc<KeySpace>)> {
        self.spaces
            .lock()
            .expect("cache key map poisoned")
            .iter()
            .map(|(k, s)| (k.clone(), Arc::clone(s)))
            .collect()
    }

    /// Exports the cache's current contents as a canonical, portable
    /// [`Snapshot`] (spaces ordered by key, entries by geometry —
    /// identical bytes for identical facts regardless of this cache's
    /// shard count, thread schedule or insertion history).
    ///
    /// The snapshot is a *copy*: taking it does not lock the whole cache
    /// at once (per-shard locks only), and concurrent inserts may or may
    /// not be included — exactly the guarantee a periodic persistence
    /// job wants.
    pub fn snapshot(&self) -> Snapshot {
        let mut snapshot = Snapshot {
            spaces: self
                .spaces_vec()
                .into_iter()
                .map(|(key, space)| SpaceRecord {
                    key: key.to_record(),
                    entries: space
                        .entries()
                        .into_iter()
                        .map(|(g, objectives)| EntryRecord {
                            geometry: GeometryRecord {
                                log_h: g.log_h,
                                log_l: g.log_l,
                                k: g.k,
                            },
                            objectives,
                        })
                        .collect(),
                })
                .collect(),
        };
        snapshot.canonicalize();
        snapshot
    }

    /// Installs a snapshot's entries into this cache (union semantics:
    /// entries already memoized are kept, new ones are added). Returns
    /// the number of entries actually installed.
    ///
    /// Loading touches **neither** the hit/miss counters nor any run's
    /// [`EvalStats`] — a warm-started run still reports exactly how many
    /// evaluations *it* served from memory.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot references invariants this
    /// engine cannot represent; nothing is installed from the offending
    /// space (earlier spaces remain installed — the operation is a
    /// per-space union, not a transaction).
    pub fn load(&self, snapshot: &Snapshot) -> Result<usize, SnapshotError> {
        let mut installed = 0;
        for record in &snapshot.spaces {
            let key = CacheKey::from_record(&record.key)?;
            let space = self.space(&key);
            for entry in &record.entries {
                let g = Geometry {
                    log_h: entry.geometry.log_h,
                    log_l: entry.geometry.log_l,
                    k: entry.geometry.k,
                };
                if space.insert_if_absent(g, entry.objectives) {
                    installed += 1;
                }
            }
        }
        Ok(installed)
    }

    /// Union-merges another cache's current contents into this one (the
    /// in-process form of [`SharedEvalCache::load`]; commutative over
    /// facts, idempotent, shard-count invariant on both sides). Returns
    /// the number of entries installed.
    pub fn merge(&self, other: &SharedEvalCache) -> usize {
        let mut installed = 0;
        for (key, space) in other.spaces_vec() {
            let mine = self.space(&key);
            for (g, objectives) in space.entries() {
                if mine.insert_if_absent(g, objectives) {
                    installed += 1;
                }
            }
        }
        installed
    }
}

impl Default for SharedEvalCache {
    fn default() -> Self {
        SharedEvalCache::new()
    }
}

/// Per-exploration evaluation accounting: how many genome evaluations
/// *this run* served from memory vs sent to the estimator.
///
/// Separate from the [`SharedEvalCache`] lifetime counters because one
/// cache object may serve many runs — `ExplorationResult` reports the
/// run's own numbers (a warm second run reports `distinct_evaluations ==
/// 0` even though the cache's lifetime miss count is not zero).
#[derive(Debug, Default)]
pub struct EvalStats {
    hits: AtomicUsize,
    misses: AtomicUsize,
    dominance_comparisons: AtomicU64,
    dominance_word_ops: AtomicU64,
    dominance_allocations: AtomicU64,
    estimator_designs: AtomicU64,
    estimator_batched: AtomicU64,
    estimator_scalar_fallbacks: AtomicU64,
    estimator_allocations: AtomicU64,
}

impl EvalStats {
    /// Evaluations served without calling the estimator (cache hits plus
    /// intra-batch duplicates and GA-interned genomes).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Evaluations that actually reached the estimator.
    pub fn distinct_evaluations(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The selection machinery's dominance-kernel counters for this run
    /// (comparisons/probes and kernel allocations) — the machine-checkable
    /// receipt that the tiered sort stays asymptotically below the naive
    /// `N·(N−1)/2` pairwise bill.
    pub fn dominance(&self) -> DominanceStats {
        DominanceStats {
            comparisons: self.dominance_comparisons.load(Ordering::Relaxed),
            word_ops: self.dominance_word_ops.load(Ordering::Relaxed),
            allocations: self.dominance_allocations.load(Ordering::Relaxed),
        }
    }

    /// The estimator kernel's cohort counters for this run: designs
    /// estimated, lanes finished through the vector path vs the scalar
    /// block, and scratch growth (zero once warm).
    pub fn estimator(&self) -> EstimatorStats {
        EstimatorStats {
            designs: self.estimator_designs.load(Ordering::Relaxed),
            batched: self.estimator_batched.load(Ordering::Relaxed),
            scalar_fallbacks: self.estimator_scalar_fallbacks.load(Ordering::Relaxed),
            allocations: self.estimator_allocations.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record(&self, hits: usize, misses: usize) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_dominance(&self, stats: DominanceStats) {
        if stats.comparisons > 0 {
            self.dominance_comparisons
                .fetch_add(stats.comparisons, Ordering::Relaxed);
        }
        if stats.word_ops > 0 {
            self.dominance_word_ops
                .fetch_add(stats.word_ops, Ordering::Relaxed);
        }
        if stats.allocations > 0 {
            self.dominance_allocations
                .fetch_add(stats.allocations, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_estimator(&self, stats: EstimatorStats) {
        if stats.designs > 0 {
            self.estimator_designs
                .fetch_add(stats.designs, Ordering::Relaxed);
        }
        if stats.batched > 0 {
            self.estimator_batched
                .fetch_add(stats.batched, Ordering::Relaxed);
        }
        if stats.scalar_fallbacks > 0 {
            self.estimator_scalar_fallbacks
                .fetch_add(stats.scalar_fallbacks, Ordering::Relaxed);
        }
        if stats.allocations > 0 {
            self.estimator_allocations
                .fetch_add(stats.allocations, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(log_h: u32, log_l: u32, k: u32) -> Geometry {
        Geometry { log_h, log_l, k }
    }

    fn key(precision: Precision, wstore: u64) -> CacheKey {
        CacheKey::new(
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            precision,
            wstore,
        )
    }

    #[test]
    fn fx_hasher_is_deterministic_and_spreads() {
        let hash_of = |g: &Geometry| {
            let mut h = FxHasher::default();
            g.hash(&mut h);
            h.finish()
        };
        let a = geometry(3, 2, 4);
        assert_eq!(hash_of(&a), hash_of(&a));
        // All distinct geometries of a realistic space hash distinctly.
        let mut seen = std::collections::HashSet::new();
        for log_h in 0..12 {
            for log_l in 0..7 {
                for k in 1..=32 {
                    seen.insert(hash_of(&geometry(log_h, log_l, k)));
                }
            }
        }
        assert_eq!(seen.len(), 12 * 7 * 32, "hash collisions in tiny space");
    }

    #[test]
    fn fx_hasher_write_handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(b"technology-name");
        let mut b = FxHasher::default();
        b.write(b"technology-nam");
        assert_ne!(a.finish(), b.finish());
        // And the empty write is a no-op, not a crash.
        let mut c = FxHasher::default();
        c.write(b"");
        assert_eq!(c.finish(), FxHasher::default().finish());
    }

    #[test]
    fn cache_keys_separate_what_must_not_alias() {
        let base = key(Precision::Int8, 16384);
        assert_eq!(base, key(Precision::Int8, 16384));
        assert_ne!(base, key(Precision::Int4, 16384));
        assert_ne!(base, key(Precision::Int8, 32768));
        let derated = CacheKey::new(
            &Technology::tsmc28(),
            &OperatingConditions {
                voltage: 0.6,
                ..OperatingConditions::paper_default()
            },
            Precision::Int8,
            16384,
        );
        assert_ne!(base, derated);
        let scaled = CacheKey::new(
            &Technology::tsmc28().scaled_to_node(22.0),
            &OperatingConditions::paper_default(),
            Precision::Int8,
            16384,
        );
        assert_ne!(base, scaled);
    }

    #[test]
    fn key_spaces_are_isolated_but_shared_per_key() {
        let cache = SharedEvalCache::new();
        let a = cache.space(&key(Precision::Int8, 16384));
        let b = cache.space(&key(Precision::Int8, 16384));
        let c = cache.space(&key(Precision::Bf16, 16384));
        assert!(Arc::ptr_eq(&a, &b), "same key must resolve one space");
        assert!(!Arc::ptr_eq(&a, &c), "different keys must not alias");
        a.insert(geometry(3, 2, 1), [1.0, 2.0, 3.0, -4.0]);
        assert_eq!(b.get(&geometry(3, 2, 1)), Some([1.0, 2.0, 3.0, -4.0]));
        assert_eq!(c.get(&geometry(3, 2, 1)), None);
        assert_eq!(cache.spaces_len(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_holds_everything() {
        for requested in [1, 2, 3, 5, 16, 33] {
            let cache = SharedEvalCache::with_shards(requested);
            assert!(cache.shards_per_space().is_power_of_two());
            assert!(cache.shards_per_space() >= requested);
            let space = cache.space(&key(Precision::Int2, 8192));
            for log_h in 0..8 {
                for k in 1..=4 {
                    space.insert(geometry(log_h, 1, k), [log_h as f64, k as f64, 0.0, 0.0]);
                }
            }
            assert_eq!(space.len(), 8 * 4, "shards={requested}");
            for log_h in 0..8 {
                for k in 1..=4 {
                    assert_eq!(
                        space.get(&geometry(log_h, 1, k)),
                        Some([log_h as f64, k as f64, 0.0, 0.0])
                    );
                }
            }
        }
    }

    #[test]
    fn global_cache_is_one_object() {
        let a = SharedEvalCache::global();
        let b = SharedEvalCache::global();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stats_partition_hits_and_misses() {
        let stats = EvalStats::default();
        stats.record(3, 2);
        stats.record(0, 1);
        assert_eq!(stats.hits(), 3);
        assert_eq!(stats.distinct_evaluations(), 3);
    }

    #[test]
    fn stats_accumulate_dominance_counters() {
        let stats = EvalStats::default();
        assert_eq!(stats.dominance(), DominanceStats::default());
        stats.record_dominance(DominanceStats {
            comparisons: 10,
            word_ops: 7,
            allocations: 2,
        });
        stats.record_dominance(DominanceStats {
            comparisons: 5,
            word_ops: 0,
            allocations: 0,
        });
        assert_eq!(
            stats.dominance(),
            DominanceStats {
                comparisons: 15,
                word_ops: 7,
                allocations: 2,
            }
        );
    }

    #[test]
    fn stats_accumulate_estimator_counters() {
        let stats = EvalStats::default();
        assert_eq!(stats.estimator(), EstimatorStats::default());
        stats.record_estimator(EstimatorStats {
            designs: 12,
            batched: 8,
            scalar_fallbacks: 4,
            allocations: 3,
        });
        stats.record_estimator(EstimatorStats {
            designs: 5,
            batched: 4,
            scalar_fallbacks: 1,
            allocations: 0,
        });
        assert_eq!(
            stats.estimator(),
            EstimatorStats {
                designs: 17,
                batched: 12,
                scalar_fallbacks: 5,
                allocations: 3,
            }
        );
    }
}
