//! Layer-level runtime/energy projection: combines the functional
//! simulator's cycle accounting ([`sega_sim::nn::LayerStats`]) with the
//! estimator's physical model ([`MacroEstimate`]) to answer the question a
//! deployment engineer actually asks: *how long and how many µJ does this
//! layer take on this macro?*

use sega_estimator::MacroEstimate;
use sega_sim::nn::LayerStats;

/// Physical projection of one layer execution on a chosen macro design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerRuntime {
    /// Macro images (weight tiles) the layer occupies.
    pub macros_used: usize,
    /// Array passes per forward.
    pub passes: u64,
    /// Latency of one forward in µs, with all tiles executing serially on
    /// one physical macro (weights re-selected via slots, tiles swapped).
    pub serial_latency_us: f64,
    /// Latency of one forward in µs when every tile has its own physical
    /// macro (full spatial parallelism; column tiles still accumulate
    /// serially through the periphery in one extra pass).
    pub parallel_latency_us: f64,
    /// Dynamic energy per forward in nJ.
    pub energy_nj: f64,
    /// Average power during serial execution in mW.
    pub serial_power_mw: f64,
}

/// Projects a layer's tiling statistics onto a macro estimate.
///
/// # Example
///
/// ```
/// use sega_dcim::runtime::project_layer;
/// use sega_estimator::{estimate, DcimDesign, IntParams, OperatingConditions};
/// use sega_sim::nn::IntLayer;
///
/// let p = IntParams::new(8, 4, 2, 2, 4, 4)?;
/// let weights = vec![1i64; 10 * 12];
/// let layer = IntLayer::new(p, 10, 12, &weights)?;
/// let est = estimate(
///     &DcimDesign::Int(p),
///     &sega_cells::Technology::tsmc28(),
///     &OperatingConditions::paper_default(),
/// );
/// let rt = project_layer(&layer.stats(), &est);
/// assert!(rt.serial_latency_us > 0.0);
/// assert!(rt.parallel_latency_us <= rt.serial_latency_us);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn project_layer(stats: &LayerStats, estimate: &MacroEstimate) -> LayerRuntime {
    let cycle_ns = estimate.delay_ns;
    let serial_ns = stats.cycles_per_forward as f64 * cycle_ns;
    // Fully parallel: each macro runs its own pass sequence concurrently;
    // the longest single-tile sequence dominates.
    let passes_per_macro = stats
        .passes_per_forward
        .div_ceil(stats.macros_used.max(1) as u64);
    let cycles_per_pass = if stats.passes_per_forward > 0 {
        stats.cycles_per_forward as f64 / stats.passes_per_forward as f64
    } else {
        0.0
    };
    let parallel_ns = passes_per_macro as f64 * cycles_per_pass * cycle_ns;
    // Energy: one pass costs `cycles_per_pass × energy_per_cycle`
    // regardless of scheduling.
    let energy_nj = stats.cycles_per_forward as f64 * estimate.energy_per_cycle_nj;
    let serial_power_mw = if serial_ns > 0.0 {
        energy_nj / serial_ns * 1e3
    } else {
        0.0
    };
    LayerRuntime {
        macros_used: stats.macros_used,
        passes: stats.passes_per_forward,
        serial_latency_us: serial_ns * 1e-3,
        parallel_latency_us: parallel_ns * 1e-3,
        energy_nj,
        serial_power_mw,
    }
}

impl std::fmt::Display for LayerRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} tiles, {} passes: {:.3} µs serial / {:.3} µs parallel, {:.2} nJ, {:.1} mW",
            self.macros_used,
            self.passes,
            self.serial_latency_us,
            self.parallel_latency_us,
            self.energy_nj,
            self.serial_power_mw
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_estimator::{estimate, DcimDesign, IntParams, OperatingConditions};
    use sega_sim::nn::IntLayer;

    fn setup(rows: usize, cols: usize) -> (LayerStats, MacroEstimate) {
        let p = IntParams::new(8, 4, 2, 2, 4, 4).unwrap();
        let weights = vec![1i64; rows * cols];
        let layer = IntLayer::new(p, rows, cols, &weights).unwrap();
        let est = estimate(
            &DcimDesign::Int(p),
            &sega_cells::Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        );
        (layer.stats(), est)
    }

    #[test]
    fn parallel_never_slower_than_serial() {
        for (rows, cols) in [(4, 4), (10, 12), (33, 17)] {
            let (stats, est) = setup(rows, cols);
            let rt = project_layer(&stats, &est);
            assert!(rt.parallel_latency_us <= rt.serial_latency_us + 1e-12);
            assert!(rt.energy_nj > 0.0);
        }
    }

    #[test]
    fn bigger_layers_cost_more() {
        let (s_small, est) = setup(4, 4);
        let (s_big, _) = setup(32, 32);
        let small = project_layer(&s_small, &est);
        let big = project_layer(&s_big, &est);
        assert!(big.serial_latency_us > small.serial_latency_us);
        assert!(big.energy_nj > small.energy_nj);
        assert!(big.macros_used > small.macros_used);
    }

    #[test]
    fn power_is_energy_over_time() {
        let (stats, est) = setup(16, 16);
        let rt = project_layer(&stats, &est);
        let expect_mw = rt.energy_nj / (rt.serial_latency_us * 1e3) * 1e3;
        assert!((rt.serial_power_mw - expect_mw).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_tiles_and_energy() {
        let (stats, est) = setup(10, 10);
        let s = project_layer(&stats, &est).to_string();
        assert!(s.contains("tiles") && s.contains("nJ"));
    }
}
