//! The end-to-end SEGA-DCIM compiler pipeline (paper Fig. 4):
//! specification → MOGA-based exploration → user distillation →
//! template-based generation (netlist + layout) → audit.

use std::sync::Arc;

use sega_cells::Technology;
use sega_estimator::{estimate, DcimDesign, MacroEstimate, OperatingConditions, ParamError};
use sega_layout::drc::{check_floorplan, DrcViolation};
use sega_layout::floorplan::{floorplan_macro, MacroLayout};
use sega_layout::{LayoutError, LayoutOptions};
use sega_moga::Nsga2Config;
use sega_netlist::stats::{audit, Audit};
use sega_netlist::{verilog, Design, NetlistError};

use crate::cache::SharedEvalCache;
use crate::distill::{distill, DistillStrategy};
use crate::explore::{explore_pareto_with, ExplorationResult, PipelineOptions};
use crate::spec::UserSpec;

/// Errors of the compiler pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// The explorer produced an empty frontier (should not happen for
    /// valid specs; indicates an over-constrained custom limit set).
    EmptyFrontier,
    /// A design point failed parameter validation.
    Param(ParamError),
    /// The template generator failed (indicates a generator bug).
    Netlist(NetlistError),
    /// The physical-design step failed.
    Layout(LayoutError),
    /// The generated layout violates DRC.
    Drc(Vec<DrcViolation>),
    /// Generator and estimator disagree beyond tolerance.
    AuditMismatch(Box<Audit>),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::EmptyFrontier => write!(f, "design space exploration found no solutions"),
            CompileError::Param(e) => write!(f, "invalid design parameters: {e}"),
            CompileError::Netlist(e) => write!(f, "netlist generation failed: {e}"),
            CompileError::Layout(e) => write!(f, "layout generation failed: {e}"),
            CompileError::Drc(v) => write!(f, "layout has {} DRC violations", v.len()),
            CompileError::AuditMismatch(a) => write!(
                f,
                "generator/estimator mismatch: area error {:.3e}, energy error {:.3e}",
                a.area_error(),
                a.energy_error()
            ),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParamError> for CompileError {
    fn from(e: ParamError) -> Self {
        CompileError::Param(e)
    }
}
impl From<NetlistError> for CompileError {
    fn from(e: NetlistError) -> Self {
        CompileError::Netlist(e)
    }
}
impl From<LayoutError> for CompileError {
    fn from(e: LayoutError) -> Self {
        CompileError::Layout(e)
    }
}

/// A fully compiled DCIM macro: everything the paper's flow hands back to
/// the user.
#[derive(Debug)]
pub struct CompiledMacro {
    /// The selected design point.
    pub design: DcimDesign,
    /// Its performance estimate (the numbers the explorer optimized).
    pub estimate: MacroEstimate,
    /// The exploration that produced it (empty when compiled directly from
    /// a design point).
    pub frontier: Vec<crate::explore::ParetoSolution>,
    /// The generated hierarchical netlist.
    pub netlist: Design,
    /// Self-contained structural Verilog.
    pub verilog: String,
    /// Floorplanned layout.
    pub layout: MacroLayout,
    /// DEF-like export of the layout.
    pub def: String,
    /// Gate-count audit (generator vs estimator).
    pub audit: Audit,
}

/// The SEGA-DCIM compiler: configuration plus the
/// [`compile`](Compiler::compile) entry point.
#[derive(Debug, Clone)]
pub struct Compiler {
    technology: Technology,
    conditions: OperatingConditions,
    layout_options: LayoutOptions,
    nsga_config: Nsga2Config,
    pipeline: PipelineOptions,
    /// Estimates memoized **across** this compiler's runs (and its
    /// clones): a second exploration of the same specification reaches
    /// the estimator zero times.
    cache: Arc<SharedEvalCache>,
    audit_tolerance: f64,
}

impl Compiler {
    /// A compiler with the paper's defaults: calibrated TSMC28, 0.9 V,
    /// 10% sparsity, paper-scale NSGA-II budget, and the full evaluation
    /// pipeline (persistent pool, estimates memoized across runs).
    pub fn new() -> Compiler {
        Compiler {
            technology: Technology::tsmc28(),
            conditions: OperatingConditions::paper_default(),
            layout_options: LayoutOptions::default(),
            nsga_config: Nsga2Config::default(),
            pipeline: PipelineOptions::default(),
            cache: Arc::new(SharedEvalCache::new()),
            audit_tolerance: 1e-9,
        }
    }

    /// Overrides the technology.
    #[must_use]
    pub fn with_technology(mut self, tech: Technology) -> Self {
        self.technology = tech;
        self
    }

    /// Overrides the operating conditions.
    #[must_use]
    pub fn with_conditions(mut self, conditions: OperatingConditions) -> Self {
        self.conditions = conditions;
        self
    }

    /// Overrides the layout options.
    #[must_use]
    pub fn with_layout_options(mut self, options: LayoutOptions) -> Self {
        self.layout_options = options;
        self
    }

    /// Overrides the NSGA-II population and generation budget (smaller
    /// budgets for unit tests, larger for paper-scale sweeps).
    #[must_use]
    pub fn with_exploration_budget(mut self, population: usize, generations: usize) -> Self {
        self.nsga_config.population = population;
        self.nsga_config.generations = generations;
        self
    }

    /// Overrides the full NSGA-II configuration (seed included).
    #[must_use]
    pub fn with_nsga_config(mut self, config: Nsga2Config) -> Self {
        self.nsga_config = config;
        self
    }

    /// Limits exploration to `threads` worker threads (`0` = all hardware
    /// threads, `1` = serial). The result is bit-identical either way.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pipeline.threads = threads;
        self
    }

    /// Overrides the full evaluation-pipeline configuration. A pipeline
    /// without its own `shared_cache` still reuses this compiler's
    /// cross-run cache.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineOptions) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Replaces the cross-run estimate cache, e.g. with
    /// [`SharedEvalCache::global`] to share estimates between several
    /// compilers in one process.
    #[must_use]
    pub fn with_shared_cache(mut self, cache: Arc<SharedEvalCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Sources exploration objective vectors from `backend` instead of
    /// the default in-process macro model. Backends are deterministic by
    /// contract, so this can never change a compiled result — only where
    /// estimates are computed.
    #[must_use]
    pub fn with_backend(mut self, backend: Arc<dyn crate::backend::EvalBackend>) -> Self {
        self.pipeline.backend = Some(backend);
        self
    }

    /// The estimate cache this compiler's explorations accumulate into.
    pub fn shared_cache(&self) -> &Arc<SharedEvalCache> {
        &self.cache
    }

    /// The pipeline configuration an exploration actually runs with: the
    /// configured options, falling back to this compiler's cross-run
    /// cache when the options carry none.
    fn effective_pipeline(&self) -> PipelineOptions {
        let mut pipeline = self.pipeline.clone();
        if pipeline.shared_cache.is_none() {
            pipeline.shared_cache = Some(Arc::clone(&self.cache));
        }
        pipeline
    }

    /// The active technology.
    pub fn technology(&self) -> &Technology {
        &self.technology
    }

    /// The active operating conditions.
    pub fn conditions(&self) -> &OperatingConditions {
        &self.conditions
    }

    /// Runs only the exploration stage and returns the Pareto frontier.
    /// Estimates are memoized across calls: exploring the same
    /// specification twice reports `distinct_evaluations == 0` the
    /// second time (the frontier is identical either way).
    pub fn explore(&self, spec: &UserSpec) -> ExplorationResult {
        explore_pareto_with(
            spec,
            &self.technology,
            &self.conditions,
            &self.nsga_config,
            self.effective_pipeline(),
        )
    }

    /// The full pipeline: explore, distill, generate, audit.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] if exploration finds nothing, generation
    /// fails, the layout violates DRC, or the generated netlist disagrees
    /// with the estimate.
    pub fn compile(
        &self,
        spec: &UserSpec,
        strategy: DistillStrategy,
    ) -> Result<CompiledMacro, CompileError> {
        let exploration = self.explore(spec);
        let selected = distill(&exploration.solutions, &strategy)
            .ok_or(CompileError::EmptyFrontier)?
            .design;
        let mut compiled = self.compile_design(&selected)?;
        compiled.frontier = exploration.solutions;
        Ok(compiled)
    }

    /// Generates a specific design point (skipping exploration) — the
    /// "user-defined distillation already done" path.
    ///
    /// # Errors
    ///
    /// Same generation-stage conditions as [`compile`](Compiler::compile).
    pub fn compile_design(&self, design: &DcimDesign) -> Result<CompiledMacro, CompileError> {
        design.validate()?;
        let est = estimate(design, &self.technology, &self.conditions);
        let netlist = sega_netlist::generators::generate_macro(design)?;
        let audit_result = audit(&netlist, &est)?;
        if !audit_result.is_consistent(self.audit_tolerance) {
            return Err(CompileError::AuditMismatch(Box::new(audit_result)));
        }
        let verilog = verilog::emit(&netlist)?;
        let layout = floorplan_macro(design, &self.technology, &self.layout_options)?;
        let violations = check_floorplan(&layout);
        if !violations.is_empty() {
            return Err(CompileError::Drc(violations));
        }
        let def = sega_layout::export::to_def(&layout, &[]);
        Ok(CompiledMacro {
            design: *design,
            estimate: est,
            frontier: Vec::new(),
            netlist,
            verilog,
            layout,
            def,
            audit: audit_result,
        })
    }
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::UserSpec;
    use sega_estimator::Precision;

    fn fast_compiler() -> Compiler {
        Compiler::new().with_exploration_budget(16, 8)
    }

    #[test]
    fn compile_design_produces_all_artifacts() {
        let d = DcimDesign::for_precision(Precision::Int8, 16, 16, 8, 4).unwrap();
        let c = fast_compiler().compile_design(&d).unwrap();
        assert!(c.verilog.contains("module dcim_int"));
        assert!(c.def.contains("DIEAREA"));
        assert!(c.audit.is_consistent(1e-9));
        assert!(c.layout.area_mm2() > 0.0);
        assert_eq!(c.design, d);
    }

    #[test]
    fn compile_fp_design() {
        let d = DcimDesign::for_precision(Precision::Bf16, 16, 16, 8, 4).unwrap();
        let c = fast_compiler().compile_design(&d).unwrap();
        assert!(c.verilog.contains("module dcim_fp"));
        assert!(c.verilog.contains("palign"));
        assert!(c
            .layout
            .region(sega_layout::RegionKind::PreAlignment)
            .is_some());
    }

    #[test]
    fn full_pipeline_from_spec() {
        let spec = UserSpec::new(4096, Precision::Int4).unwrap();
        let c = fast_compiler()
            .compile(&spec, DistillStrategy::Knee)
            .unwrap();
        assert_eq!(c.design.wstore(), 4096);
        assert!(!c.frontier.is_empty());
        assert!(c.audit.is_consistent(1e-9));
    }

    #[test]
    fn strategies_reach_different_corners() {
        let spec = UserSpec::new(8192, Precision::Int8).unwrap();
        let compiler = fast_compiler().with_exploration_budget(32, 20);
        let small = compiler.compile(&spec, DistillStrategy::MinArea).unwrap();
        let fast = compiler
            .compile(&spec, DistillStrategy::MaxThroughput)
            .unwrap();
        assert!(small.estimate.area_mm2 <= fast.estimate.area_mm2);
        assert!(fast.estimate.tops >= small.estimate.tops);
    }

    #[test]
    fn builder_overrides_apply() {
        let t22 = Technology::tsmc28().scaled_to_node(22.0);
        let c = Compiler::new()
            .with_technology(t22.clone())
            .with_conditions(OperatingConditions::dense());
        assert_eq!(c.technology().node_nm, 22.0);
        assert_eq!(c.conditions().input_sparsity, 0.0);
    }

    #[test]
    fn invalid_design_is_rejected() {
        // N not divisible by Bw.
        let d = DcimDesign::Int(sega_estimator::IntParams {
            n: 30,
            h: 16,
            l: 8,
            k: 4,
            bw: 8,
            bx: 8,
        });
        assert!(matches!(
            fast_compiler().compile_design(&d),
            Err(CompileError::Param(_))
        ));
    }
}
