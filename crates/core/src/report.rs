//! Report generation: the data series and tables of the paper's evaluation
//! (§IV), plus the literature reference points of Fig. 8.

use sega_estimator::Precision;

use crate::explore::ParetoSolution;

/// A published state-of-the-art DCIM datapoint used as a fixed comparison
/// anchor in Fig. 8 (these are literature constants, not re-measured
/// systems — exactly how the paper uses them).
#[derive(Debug, Clone, PartialEq)]
pub struct SotaPoint {
    /// Short label.
    pub label: &'static str,
    /// Venue/source.
    pub source: &'static str,
    /// Technology node in nm.
    pub node_nm: f64,
    /// Stored weights.
    pub wstore: u64,
    /// Precision of the reported mode.
    pub precision: Precision,
    /// Energy efficiency in TOPS/W.
    pub tops_per_w: f64,
    /// Area efficiency in TOPS/mm².
    pub tops_per_mm2: f64,
}

/// TSMC's ISSCC'21 all-digital SRAM CIM macro as cited in Fig. 8(a)
/// (64K weights, 22 nm, INT8 comparison point: 15 TOPS/W, 4.1 TOPS/mm²).
pub const SOTA_TSMC_INT8: SotaPoint = SotaPoint {
    label: "TSMC 22nm",
    source: "ISSCC'21 16.4 [5]",
    node_nm: 22.0,
    wstore: 65536,
    precision: Precision::Int8,
    tops_per_w: 15.0,
    tops_per_mm2: 4.1,
};

/// The ISSCC'23 floating-point CIM macro as cited in Fig. 8(b)
/// (64K weights, 22 nm, BF16 comparison point: 14.1 TOPS/W, 2.05 TOPS/mm²).
pub const SOTA_ISSCC23_BF16: SotaPoint = SotaPoint {
    label: "ISSCC23-7.2 22nm",
    source: "ISSCC'23 [7]",
    node_nm: 22.0,
    wstore: 65536,
    precision: Precision::Bf16,
    tops_per_w: 14.1,
    tops_per_mm2: 2.05,
};

/// The paper's own chosen designs in Fig. 8 (design A: INT8 @64K; design
/// B: BF16 @64K), for paper-vs-measured comparison in `EXPERIMENTS.md`.
pub const PAPER_DESIGN_A: SotaPoint = SotaPoint {
    label: "Design A (paper)",
    source: "SEGA-DCIM Fig. 8(a)",
    node_nm: 28.0,
    wstore: 65536,
    precision: Precision::Int8,
    tops_per_w: 22.0,
    tops_per_mm2: 1.9,
};

/// See [`PAPER_DESIGN_A`].
pub const PAPER_DESIGN_B: SotaPoint = SotaPoint {
    label: "Design B (paper)",
    source: "SEGA-DCIM Fig. 8(b)",
    node_nm: 28.0,
    wstore: 65536,
    precision: Precision::Bf16,
    tops_per_w: 20.2,
    tops_per_mm2: 1.8,
};

/// One row of the Table I flow comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowComparisonRow {
    /// Comparison criterion.
    pub entry: &'static str,
    /// EasyACIM (DAC'24).
    pub easyacim: &'static str,
    /// AutoDCIM (DAC'23).
    pub autodcim: &'static str,
    /// SEGA-DCIM (this work).
    pub sega_dcim: &'static str,
}

/// The paper's Table I: comparison with other CIM design flows.
pub fn table1() -> Vec<FlowComparisonRow> {
    vec![
        FlowComparisonRow {
            entry: "Design type",
            easyacim: "Analog",
            autodcim: "Digital",
            sega_dcim: "Digital",
        },
        FlowComparisonRow {
            entry: "Support precision",
            easyacim: "INT",
            autodcim: "INT",
            sega_dcim: "INT & Float",
        },
        FlowComparisonRow {
            entry: "Estimation model",
            easyacim: "Yes",
            autodcim: "No",
            sega_dcim: "Yes",
        },
        FlowComparisonRow {
            entry: "Design space",
            easyacim: "Pareto frontier",
            autodcim: "Unoptimized",
            sega_dcim: "Pareto frontier",
        },
        FlowComparisonRow {
            entry: "Determination of trade-offs",
            easyacim: "Automatic",
            autodcim: "User-defined",
            sega_dcim: "Automatic",
        },
    ]
}

/// Summary statistics of one precision's design space (a Fig. 7 series):
/// averages over the Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpaceSummary {
    /// The precision.
    pub precision: Precision,
    /// Number of frontier designs.
    pub count: usize,
    /// Average area in mm².
    pub avg_area_mm2: f64,
    /// Average per-pass energy in nJ.
    pub avg_energy_nj: f64,
    /// Average clock period in ns.
    pub avg_delay_ns: f64,
    /// Average throughput in TOPS.
    pub avg_tops: f64,
}

/// Computes the Fig. 7 summary for one precision's frontier.
pub fn summarize_design_space(
    precision: Precision,
    solutions: &[ParetoSolution],
) -> DesignSpaceSummary {
    let n = solutions.len().max(1) as f64;
    let sum =
        |f: &dyn Fn(&ParetoSolution) -> f64| -> f64 { solutions.iter().map(f).sum::<f64>() / n };
    DesignSpaceSummary {
        precision,
        count: solutions.len(),
        avg_area_mm2: sum(&|s| s.estimate.area_mm2),
        avg_energy_nj: sum(&|s| s.estimate.energy_per_pass_nj),
        avg_delay_ns: sum(&|s| s.estimate.delay_ns),
        avg_tops: sum(&|s| s.estimate.tops),
    }
}

/// Renders a slice of rows as a GitHub-flavored markdown table.
///
/// `header` and every row must have the same arity.
///
/// # Panics
///
/// Panics on arity mismatch (a report-construction bug).
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!("|{}\n", "---|".repeat(header.len())));
    for row in rows {
        assert_eq!(row.len(), header.len(), "table arity mismatch");
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Renders rows as CSV (no quoting needed for our numeric content).
pub fn csv_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sega_cells::Technology;
    use sega_estimator::{estimate, DcimDesign, OperatingConditions};

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 5);
        assert_eq!(t[1].sega_dcim, "INT & Float");
        assert_eq!(t[3].autodcim, "Unoptimized");
        assert_eq!(t[4].sega_dcim, "Automatic");
    }

    #[test]
    fn sota_points_match_paper_text() {
        assert_eq!(SOTA_TSMC_INT8.tops_per_w, 15.0);
        assert_eq!(SOTA_TSMC_INT8.tops_per_mm2, 4.1);
        assert_eq!(SOTA_ISSCC23_BF16.tops_per_w, 14.1);
        assert_eq!(PAPER_DESIGN_A.tops_per_w, 22.0);
        assert_eq!(PAPER_DESIGN_B.tops_per_mm2, 1.8);
    }

    #[test]
    fn summary_averages() {
        let design = DcimDesign::for_precision(Precision::Int8, 32, 128, 16, 4).unwrap();
        let est = estimate(
            &design,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
        );
        let sols = vec![
            ParetoSolution {
                design,
                estimate: est.clone(),
            },
            ParetoSolution {
                design,
                estimate: est.clone(),
            },
        ];
        let s = summarize_design_space(Precision::Int8, &sols);
        assert_eq!(s.count, 2);
        assert!((s.avg_area_mm2 - est.area_mm2).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize_design_space(Precision::Fp8, &[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_area_mm2, 0.0);
    }

    #[test]
    fn markdown_rendering() {
        let md = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn csv_rendering() {
        let csv = csv_table(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn markdown_arity_checked() {
        let _ = markdown_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
