use sega_estimator::Precision;

/// Errors in a user specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// `Wstore` must be a power of two (the paper sweeps 4K–128K).
    WstoreNotPowerOfTwo(u64),
    /// `Wstore` is too small to satisfy the exploration bounds (`N ≥ 4·Bw`
    /// with at least two rows).
    WstoreTooSmall {
        /// Requested weight count.
        wstore: u64,
        /// Minimum supported for this precision.
        minimum: u64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::WstoreNotPowerOfTwo(w) => {
                write!(f, "Wstore must be a power of two, got {w}")
            }
            SpecError::WstoreTooSmall { wstore, minimum } => {
                write!(
                    f,
                    "Wstore {wstore} below the minimum {minimum} for this precision"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Bounds the design space explorer honors (paper §IV: "N is set to be
/// greater than `4·Bw`, L is set to be no greater than 64, and H is set to
/// be no greater than 2048").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExplorerLimits {
    /// Maximum weights per compute unit (`L ≤ max_l`).
    pub max_l: u32,
    /// Maximum column height (`H ≤ max_h`).
    pub max_h: u32,
    /// Minimum column height (a column needs at least two adder-tree
    /// inputs to be meaningful).
    pub min_h: u32,
    /// Minimum column count as a multiple of the weight width
    /// (`N ≥ n_factor·Bw`).
    pub n_factor: u32,
}

impl Default for ExplorerLimits {
    fn default() -> Self {
        ExplorerLimits {
            max_l: 64,
            max_h: 2048,
            min_h: 2,
            n_factor: 4,
        }
    }
}

/// What the user asks SEGA-DCIM for: storage size, precision, and
/// exploration bounds (paper Fig. 4, "Number of storage weights &
/// Precision").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserSpec {
    /// Number of weights the macro must store.
    pub wstore: u64,
    /// Computing precision.
    pub precision: Precision,
    /// Exploration bounds.
    pub limits: ExplorerLimits,
}

impl UserSpec {
    /// Creates and validates a specification with the paper's default
    /// exploration bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] when `wstore` is not a power of two or is too
    /// small for the precision's minimum geometry.
    pub fn new(wstore: u64, precision: Precision) -> Result<Self, SpecError> {
        Self::with_limits(wstore, precision, ExplorerLimits::default())
    }

    /// Creates a specification with custom exploration bounds.
    ///
    /// # Errors
    ///
    /// Same as [`UserSpec::new`].
    pub fn with_limits(
        wstore: u64,
        precision: Precision,
        limits: ExplorerLimits,
    ) -> Result<Self, SpecError> {
        if !wstore.is_power_of_two() {
            return Err(SpecError::WstoreNotPowerOfTwo(wstore));
        }
        let bw = precision.weight_bits() as u64;
        // Smallest macro: N = n_factor·Bw columns, H = min_h rows, L = 1.
        let minimum = limits.n_factor as u64 * bw * limits.min_h as u64;
        if wstore < minimum {
            return Err(SpecError::WstoreTooSmall { wstore, minimum });
        }
        Ok(UserSpec {
            wstore,
            precision,
            limits,
        })
    }

    /// The weight bit-width occupying the array (`Bw` or `BM`).
    pub fn weight_bits(&self) -> u32 {
        self.precision.weight_bits()
    }

    /// The array capacity in bits: `Wstore · Bw`.
    pub fn capacity_bits(&self) -> u64 {
        self.wstore * self.weight_bits() as u64
    }
}

impl std::fmt::Display for UserSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} weights @ {}", self.wstore, self.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_are_valid() {
        // §IV: Wstore from 4K to 128K across all precisions.
        for wstore in [4096u64, 8192, 16384, 32768, 65536, 131072] {
            UserSpec::new(wstore, Precision::Int8).unwrap();
            UserSpec::new(wstore, Precision::Bf16).unwrap();
            UserSpec::new(wstore, Precision::Fp32).unwrap();
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(matches!(
            UserSpec::new(5000, Precision::Int8),
            Err(SpecError::WstoreNotPowerOfTwo(5000))
        ));
    }

    #[test]
    fn too_small_rejected() {
        // INT16 minimum: 4·16·2 = 128 weights.
        assert!(matches!(
            UserSpec::new(64, Precision::Int16),
            Err(SpecError::WstoreTooSmall { .. })
        ));
        assert!(UserSpec::new(128, Precision::Int16).is_ok());
    }

    #[test]
    fn capacity_follows_precision() {
        let s = UserSpec::new(8192, Precision::Bf16).unwrap();
        assert_eq!(s.capacity_bits(), 8192 * 8);
        let s = UserSpec::new(8192, Precision::Fp32).unwrap();
        assert_eq!(s.capacity_bits(), 8192 * 24);
    }

    #[test]
    fn default_limits_match_paper() {
        let l = ExplorerLimits::default();
        assert_eq!(l.max_l, 64);
        assert_eq!(l.max_h, 2048);
        assert_eq!(l.n_factor, 4);
    }

    #[test]
    fn display() {
        let s = UserSpec::new(8192, Precision::Int8).unwrap();
        assert_eq!(s.to_string(), "8192 weights @ INT8");
    }
}
