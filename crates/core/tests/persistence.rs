//! Property tests of the persistence layer: snapshot round-trips, merge
//! laws, and warm-start determinism.
//!
//! Four properties anchor the `--cache-file` / remote-worker story:
//!
//! 1. **Round-trip** — snapshot → encode (binary *and* JSON) → decode →
//!    load gives bit-identical lookups, for every shard count.
//! 2. **Merge laws** — cache merging is commutative, associative and
//!    idempotent, and invariant in the shard counts of both sides
//!    ({1, 4, 64} exercised throughout).
//! 3. **Warm start** — an exploration served entirely from a loaded
//!    snapshot reports **0 distinct evaluations** and a front
//!    bit-identical to the cold run.
//! 4. **Batch determinism** — rerunning an identical job list against
//!    the previous run's snapshot is estimator-free and front-identical,
//!    whatever the backend choice, thread count or shard count.

use std::sync::Arc;

use proptest::prelude::*;
use sega_cells::Technology;
use sega_dcim::batch::{parse_jobs, run_batch};
use sega_dcim::{
    explore_pareto_with, CacheKey, ExplorationResult, InstrumentedBackend, PipelineOptions,
    SharedEvalCache, UserSpec,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;
use sega_wire::Snapshot;

const ALL_PRECISIONS: [Precision; 8] = [
    Precision::Int2,
    Precision::Int4,
    Precision::Int8,
    Precision::Int16,
    Precision::Fp8,
    Precision::Fp16,
    Precision::Bf16,
    Precision::Fp32,
];

const SHARD_COUNTS: [usize; 3] = [1, 4, 64];

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 16,
        generations: 8,
        seed,
        ..Default::default()
    }
}

fn explore(spec: &UserSpec, seed: u64, cache: &Arc<SharedEvalCache>) -> ExplorationResult {
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(seed),
        PipelineOptions {
            threads: 4,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_shared_cache(Arc::clone(cache)),
    )
}

/// A cache warmed by one exploration, at the given shard count.
fn warmed_cache(spec: &UserSpec, seed: u64, shards: usize) -> Arc<SharedEvalCache> {
    let cache = Arc::new(SharedEvalCache::with_shards(shards));
    explore(spec, seed, &cache);
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Snapshot → encode → decode → load is lossless through **both**
    /// codecs, and the loaded cache warm-starts an identical exploration
    /// to zero distinct evaluations, for every shard count pairing.
    #[test]
    fn snapshot_round_trip_preserves_every_lookup(
        precision_idx in 0usize..8,
        log_wstore in 13u32..=15,
        seed in 0u64..1000,
        export_shards_idx in 0usize..3,
        import_shards_idx in 0usize..3,
    ) {
        let spec = UserSpec::new(1u64 << log_wstore, ALL_PRECISIONS[precision_idx]).unwrap();
        let cache = warmed_cache(&spec, seed, SHARD_COUNTS[export_shards_idx]);
        let reference = explore(&spec, seed, &cache); // front reference (cache already warm)
        let snapshot = cache.snapshot();
        prop_assert_eq!(snapshot.len(), cache.len());

        for bytes in [
            snapshot.encode_binary(),
            snapshot.to_json().to_string().into_bytes(),
        ] {
            let decoded = Snapshot::decode(&bytes).unwrap();
            // Bit-identical facts (EntryRecord equality is bitwise).
            prop_assert_eq!(&decoded, &snapshot);
            // Canonical: re-encoding is byte-identical.
            prop_assert_eq!(decoded.encode_binary(), snapshot.encode_binary());

            // Loading into a fresh cache (any shard count) reproduces
            // every lookup and snapshots back to the same bytes.
            let fresh = Arc::new(SharedEvalCache::with_shards(SHARD_COUNTS[import_shards_idx]));
            let installed = fresh.load(&decoded).unwrap();
            prop_assert_eq!(installed, snapshot.len());
            prop_assert_eq!(fresh.snapshot().encode_binary(), snapshot.encode_binary());
            // Idempotent: loading again installs nothing.
            prop_assert_eq!(fresh.load(&decoded).unwrap(), 0);

            // Warm start: the identical exploration is estimator-free and
            // bit-identical.
            let warm = explore(&spec, seed, &fresh);
            prop_assert_eq!(warm.distinct_evaluations, 0, "warm run must be estimator-free");
            prop_assert_eq!(warm.objective_matrix(), reference.objective_matrix());
        }
    }

    /// Merge is commutative, associative and idempotent, and the result
    /// is invariant in every participant's shard count — at the snapshot
    /// level and at the live-cache level.
    #[test]
    fn merge_laws_hold_across_shard_counts(
        seed in 0u64..1000,
        shards_a_idx in 0usize..3,
        shards_b_idx in 0usize..3,
        shards_c_idx in 0usize..3,
    ) {
        // Three caches with overlapping and disjoint key spaces.
        let int8 = UserSpec::new(16384, Precision::Int8).unwrap();
        let bf16 = UserSpec::new(16384, Precision::Bf16).unwrap();
        let a = warmed_cache(&int8, seed, SHARD_COUNTS[shards_a_idx]);
        let b = warmed_cache(&int8, seed.wrapping_add(1), SHARD_COUNTS[shards_b_idx]);
        let c = warmed_cache(&bf16, seed, SHARD_COUNTS[shards_c_idx]);
        let (sa, sb, sc) = (a.snapshot(), b.snapshot(), c.snapshot());

        // Snapshot-level laws.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba, "commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");
        let mut aa = sa.clone();
        aa.merge(&sa);
        prop_assert_eq!(&aa, &sa, "idempotent");

        // Live-cache merge agrees with snapshot merge, for any receiver
        // shard count.
        for shards in SHARD_COUNTS {
            let receiver = Arc::new(SharedEvalCache::with_shards(shards));
            receiver.load(&sa).unwrap();
            receiver.merge(&b);
            receiver.merge(&c);
            prop_assert_eq!(
                receiver.snapshot().encode_binary(),
                ab_c.encode_binary(),
                "live merge diverged at {} shards",
                shards
            );
            // Merging the same cache again installs nothing.
            prop_assert_eq!(receiver.merge(&b), 0);
        }
    }
}

/// Non-finite objective vectors (infeasible geometries memoize `[+∞; 4]`,
/// and a hostile snapshot may carry NaN) survive the full
/// snapshot → encode → decode → load → lookup cycle bit-identically.
#[test]
fn non_finite_objectives_survive_the_round_trip() {
    use sega_dcim::explore::Geometry;
    let cache = SharedEvalCache::with_shards(4);
    let key = CacheKey::new(
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        Precision::Int8,
        16384,
    );
    let space = cache.space(&key);
    let nan = f64::from_bits(0x7ff8_0000_0000_1234); // payload NaN
    space.insert(
        Geometry {
            log_h: 1,
            log_l: 0,
            k: 1,
        },
        [f64::INFINITY; 4],
    );
    space.insert(
        Geometry {
            log_h: 2,
            log_l: 0,
            k: 1,
        },
        [nan, f64::NEG_INFINITY, -0.0, 1e-300],
    );
    let snapshot = cache.snapshot();
    for bytes in [
        snapshot.encode_binary(),
        snapshot.to_json().to_string().into_bytes(),
    ] {
        let fresh = SharedEvalCache::new();
        fresh.load(&Snapshot::decode(&bytes).unwrap()).unwrap();
        let restored = fresh.space(&key);
        assert_eq!(
            restored.get(&Geometry {
                log_h: 1,
                log_l: 0,
                k: 1
            }),
            Some([f64::INFINITY; 4])
        );
        let roundtripped = restored
            .get(&Geometry {
                log_h: 2,
                log_l: 0,
                k: 1,
            })
            .unwrap();
        assert_eq!(
            roundtripped.map(f64::to_bits),
            [nan, f64::NEG_INFINITY, -0.0, 1e-300].map(f64::to_bits),
            "NaN payload / −0 / subnormal must round-trip bit-identically"
        );
    }
}

/// The ISSUE's acceptance criterion at the batch-runner level: a rerun of
/// an identical job list against the previous run's snapshot reports **0
/// distinct evaluations**, and the fronts are bit-identical across
/// backend choice, cache-file presence, thread count and shard count.
#[test]
fn batch_rerun_against_snapshot_is_estimator_free_and_bit_identical() {
    let jobs = parse_jobs(
        r#"[{"wstore": 8192, "precision": "int8", "seed": 1},
            {"wstore": 8192, "precision": "bf16", "seed": 2},
            {"wstore": 16384, "precision": "int8", "seed": 3}]"#,
        &cfg(0),
    )
    .unwrap();
    let tech = Technology::tsmc28();
    let cond = OperatingConditions::paper_default();

    // Cold reference run.
    let cold_cache = Arc::new(SharedEvalCache::new());
    let cold = run_batch(
        &jobs,
        &tech,
        &cond,
        PipelineOptions::default().with_shared_cache(Arc::clone(&cold_cache)),
    );
    assert!(cold.distinct_evaluations > 0);
    let fronts = |r: &sega_dcim::BatchReport| -> Vec<sega_moga::ObjectiveMatrix> {
        r.outcomes
            .iter()
            .map(|o| o.result.objective_matrix())
            .collect()
    };
    let reference = fronts(&cold);

    // The persisted snapshot (through the binary codec, as the CLI does).
    let snapshot = Snapshot::decode(&cold_cache.snapshot().encode_binary()).unwrap();

    for (threads, shards) in [(1usize, 1usize), (4, 4), (7, 64)] {
        for instrumented in [false, true] {
            let cache = Arc::new(SharedEvalCache::with_shards(shards));
            cache.load(&snapshot).unwrap();
            let mut pipeline = PipelineOptions {
                threads,
                min_batch_per_worker: 1,
                ..Default::default()
            }
            .with_shared_cache(Arc::clone(&cache));
            let backend = instrumented.then(|| Arc::new(InstrumentedBackend::macro_model()));
            if let Some(b) = &backend {
                pipeline.backend = Some(Arc::clone(b) as _);
            }
            let warm = run_batch(&jobs, &tech, &cond, pipeline);
            assert_eq!(
                warm.distinct_evaluations, 0,
                "threads={threads} shards={shards} instrumented={instrumented}"
            );
            assert_eq!(warm.evaluations, cold.evaluations);
            assert_eq!(warm.preloaded_entries, snapshot.len());
            assert_eq!(fronts(&warm), reference);
            // The backend saw zero traffic: everything came from the cache.
            if let Some(b) = backend {
                assert_eq!(b.geometries(), 0);
                assert_eq!(b.cohorts(), 0);
            }
        }
    }
}

/// Backend choice does not change a *cold* run either: the instrumented
/// wrapper sees exactly the distinct evaluations the accounting reports,
/// and fronts match the default backend bit-for-bit.
#[test]
fn cold_runs_are_backend_invariant_with_exact_traffic_accounting() {
    let spec = UserSpec::new(16384, Precision::Fp16).unwrap();
    let default_run = explore(&spec, 77, &Arc::new(SharedEvalCache::new()));
    let backend = Arc::new(InstrumentedBackend::macro_model());
    let instrumented_run = explore_pareto_with(
        &spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(77),
        PipelineOptions {
            threads: 4,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_backend(Arc::clone(&backend) as _),
    );
    assert_eq!(
        instrumented_run.objective_matrix(),
        default_run.objective_matrix()
    );
    assert_eq!(
        backend.geometries(),
        instrumented_run.distinct_evaluations,
        "backend traffic must equal the distinct-evaluation accounting"
    );
}
