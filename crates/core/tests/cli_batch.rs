//! CLI-level tests of `sega-dcim batch`: the scheduling-flag validation
//! (clear errors instead of panics deep in the pipeline) and the
//! end-to-end distributed run — the same choreography CI's
//! `distributed-smoke` job drives, at test scale.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_sega-dcim")
}

/// A scratch directory unique to this test binary invocation.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sega-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_jobs(dir: &std::path::Path) -> PathBuf {
    let path = dir.join("jobs.json");
    std::fs::write(
        &path,
        r#"{"jobs":[{"wstore":8192,"precision":"int8","population":10,"generations":5},
                    {"wstore":8192,"precision":"bf16","population":10,"generations":5}]}"#,
    )
    .expect("write jobs file");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("run sega-dcim")
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn batch_rejects_zero_valued_scheduling_flags_with_clear_errors() {
    let dir = scratch("zero-flags");
    let jobs = write_jobs(&dir);
    let jobs = jobs.to_str().unwrap();
    for (flag, needle) in [
        ("--threads", "--threads must be >= 1"),
        ("--shards", "--shards must be >= 1"),
        ("--workers", "--workers must be >= 1"),
    ] {
        let output = run(&["batch", "--jobs", jobs, flag, "0"]);
        assert!(
            !output.status.success(),
            "{flag} 0 must fail, got {:?}",
            output.status
        );
        let stderr = stderr_of(&output);
        assert!(
            stderr.contains(needle),
            "{flag}: `{stderr}` lacks `{needle}`"
        );
        // The run must have failed during validation, before any work:
        // no report on stdout.
        assert!(
            output.stdout.is_empty(),
            "{flag}: work ran before the error"
        );
    }
    // Non-numeric values get the same early, named rejection.
    let output = run(&["batch", "--jobs", jobs, "--threads", "many"]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("--threads"),
        "{}",
        stderr_of(&output)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_rejects_unknown_backends_naming_the_valid_ones() {
    let dir = scratch("bad-backend");
    let jobs = write_jobs(&dir);
    let output = run(&[
        "batch",
        "--jobs",
        jobs.to_str().unwrap(),
        "--backend",
        "turbo",
    ]);
    assert!(!output.status.success());
    let stderr = stderr_of(&output);
    assert!(stderr.contains("unknown backend `turbo`"), "{stderr}");
    for valid in ["macro", "instrumented", "remote"] {
        assert!(stderr.contains(valid), "`{stderr}` should name `{valid}`");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_only_flags_are_rejected_without_the_remote_backend() {
    let dir = scratch("fleet-flags");
    let jobs = write_jobs(&dir);
    let jobs = jobs.to_str().unwrap();
    // An unknown fault value fails even on the remote backend.
    let output = run(&[
        "batch",
        "--jobs",
        jobs,
        "--backend",
        "remote",
        "--inject-fault",
        "explode",
    ]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("unknown fault `explode`"),
        "{}",
        stderr_of(&output)
    );
    // Fleet-only flags on a non-remote backend would be silently inert
    // (a fault-matrix run that tested nothing) — they must refuse.
    for args in [
        ["--inject-fault", "kill-one"],
        ["--workers", "3"],
        ["--worker-log-dir", "logs"],
        ["--worker-deadline-ms", "2000"],
        ["--restart-budget", "1"],
        ["--backoff-ms", "100"],
        ["--backoff-seed", "7"],
    ] {
        let output = run(&["batch", "--jobs", jobs, args[0], args[1]]);
        assert!(
            !output.status.success(),
            "{args:?} must fail without remote"
        );
        let stderr = stderr_of(&output);
        assert!(
            stderr.contains("requires --backend remote"),
            "{args:?}: {stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_flags_validate_before_any_work() {
    let dir = scratch("ckpt-flags");
    let jobs = write_jobs(&dir);
    let jobs = jobs.to_str().unwrap();
    let ck = dir.join("ck.bin");
    let ck = ck.to_str().unwrap();

    // --checkpoint and --resume name conflicting journal intents.
    let output = run(&["batch", "--jobs", jobs, "--checkpoint", ck, "--resume", ck]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("mutually exclusive"),
        "{}",
        stderr_of(&output)
    );
    // An early stop without a journal just loses work.
    let output = run(&["batch", "--jobs", jobs, "--stop-after-jobs", "1"]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("requires --checkpoint or --resume"),
        "{}",
        stderr_of(&output)
    );
    // Zero executed jobs is a no-op dressed as a run.
    let output = run(&[
        "batch",
        "--jobs",
        jobs,
        "--checkpoint",
        ck,
        "--stop-after-jobs",
        "0",
    ]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("--stop-after-jobs"),
        "{}",
        stderr_of(&output)
    );
    // Resuming a journal that does not exist fails by name, not panic.
    let output = run(&["batch", "--jobs", jobs, "--resume", ck]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("cannot read checkpoint"),
        "{}",
        stderr_of(&output)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CI resume arm at test scale: a checkpointed run stopped after one
/// job withholds its report, and the `--resume` run's report file is
/// **byte-identical** to the uninterrupted reference.
#[test]
fn checkpointed_batch_resume_is_byte_identical() {
    let dir = scratch("ckpt-resume");
    let jobs = write_jobs(&dir);
    let jobs = jobs.to_str().unwrap();
    let path = |name: &str| dir.join(name).to_str().unwrap().to_owned();

    let reference = run(&["batch", "--jobs", jobs, "--report", &path("ref.json")]);
    assert!(reference.status.success(), "{}", stderr_of(&reference));

    let stopped = run(&[
        "batch",
        "--jobs",
        jobs,
        "--checkpoint",
        &path("ck.bin"),
        "--stop-after-jobs",
        "1",
        "--report",
        &path("stopped.json"),
    ]);
    assert!(stopped.status.success(), "{}", stderr_of(&stopped));
    let stderr = stderr_of(&stopped);
    assert!(
        stderr.contains("resume with --resume to finish the batch"),
        "{stderr}"
    );
    assert!(
        !dir.join("stopped.json").exists(),
        "a stopped run must withhold its prefix report"
    );

    let resumed = run(&[
        "batch",
        "--jobs",
        jobs,
        "--resume",
        &path("ck.bin"),
        "--report",
        &path("resumed.json"),
    ]);
    assert!(resumed.status.success(), "{}", stderr_of(&resumed));
    let reference_bytes = std::fs::read(dir.join("ref.json")).expect("reference report");
    let resumed_bytes = std::fs::read(dir.join("resumed.json")).expect("resumed report");
    assert_eq!(
        resumed_bytes, reference_bytes,
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_refuses_to_run_without_serve() {
    let output = run(&["worker"]);
    assert!(!output.status.success());
    assert!(
        stderr_of(&output).contains("--serve"),
        "{}",
        stderr_of(&output)
    );
}

/// The distributed end-to-end: remote fleets of 1 and 3 workers produce
/// byte-identical report fronts to the in-process run, and the cache
/// file a remote run leaves behind warm-starts a fresh process to zero
/// distinct evaluations — the CI smoke, at test scale.
#[test]
fn remote_batch_matches_macro_and_warm_starts_across_processes() {
    let dir = scratch("remote-e2e");
    let jobs = write_jobs(&dir);
    let jobs = jobs.to_str().unwrap();
    let report = |name: &str| dir.join(name).to_str().unwrap().to_owned();
    let cache = dir.join("cache.bin");
    let cache = cache.to_str().unwrap();

    let macro_run = run(&["batch", "--jobs", jobs, "--report", &report("macro.json")]);
    assert!(macro_run.status.success(), "{}", stderr_of(&macro_run));
    for (label, workers) in [("w1", "1"), ("w3", "3")] {
        let output = run(&[
            "batch",
            "--jobs",
            jobs,
            "--backend",
            "remote",
            "--workers",
            workers,
            "--cache-file",
            cache,
            "--report",
            &report(&format!("remote-{label}.json")),
            "--worker-log-dir",
            dir.join("wlogs").to_str().unwrap(),
        ]);
        assert!(output.status.success(), "{}", stderr_of(&output));
        let stderr = stderr_of(&output);
        assert!(stderr.contains("remote fleet (stdio):"), "{stderr}");
    }
    let warm = run(&[
        "batch",
        "--jobs",
        jobs,
        "--cache-file",
        cache,
        "--report",
        &report("warm.json"),
    ]);
    assert!(warm.status.success(), "{}", stderr_of(&warm));

    let front_of = |name: &str| {
        let text = std::fs::read_to_string(dir.join(name)).expect("read report");
        let doc = sega_wire::Json::parse(&text).expect("parse report");
        doc.get("jobs")
            .and_then(sega_wire::Json::as_arr)
            .expect("jobs array")
            .iter()
            .map(|j| j.get("front").unwrap().to_string())
            .collect::<Vec<_>>()
    };
    let reference = front_of("macro.json");
    assert_eq!(front_of("remote-w1.json"), reference, "1-worker front");
    assert_eq!(front_of("remote-w3.json"), reference, "3-worker front");
    assert_eq!(front_of("warm.json"), reference, "warm front");

    let totals_distinct = |name: &str| {
        let text = std::fs::read_to_string(dir.join(name)).expect("read report");
        let doc = sega_wire::Json::parse(&text).expect("parse report");
        doc.get("totals")
            .and_then(|t| t.get("distinct_evaluations"))
            .and_then(sega_wire::Json::as_u64)
            .expect("distinct_evaluations")
    };
    assert!(totals_distinct("remote-w1.json") > 0, "cold run estimates");
    // The 3-worker run reran against the already-saved cache file, so it
    // warm-started; the final macro rerun must be fully estimator-free.
    assert_eq!(
        totals_distinct("warm.json"),
        0,
        "warm rerun across processes"
    );

    // Worker logs were produced for upload, and every line carries the
    // correlatable prefix: monotonic timestamp, worker id, request id.
    let log = std::fs::read_to_string(dir.join("wlogs").join("worker-0.log")).expect("worker log");
    assert!(!log.is_empty(), "worker-0.log is empty");
    for line in log.lines() {
        assert!(
            line.starts_with("[+") && line.contains("ms w0 r"),
            "unprefixed log line: `{line}`"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
