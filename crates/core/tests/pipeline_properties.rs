//! Property tests of the batched evaluation pipeline: every pipeline
//! configuration — serial, pooled, cached, uncached, shared-cache, and
//! their combinations — must return a **bit-identical** Pareto front for
//! the same seed, and the evaluation accounting must be exact.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use sega_cells::Technology;
use sega_dcim::explore::DcimProblem;
use sega_dcim::{
    explore_mixed_with, explore_pareto_resumable, explore_pareto_with, EvalBackend,
    ExplorationResult, ExploreResume, InstrumentedBackend, MacroModelBackend, PipelineOptions,
    RemoteBackend, RemoteOptions, SharedEvalCache, UserSpec,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::{Nsga2Config, Problem};
use sega_parallel::Pool;

const ALL_PRECISIONS: [Precision; 8] = [
    Precision::Int2,
    Precision::Int4,
    Precision::Int8,
    Precision::Int16,
    Precision::Fp8,
    Precision::Fp16,
    Precision::Bf16,
    Precision::Fp32,
];

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 16,
        generations: 8,
        seed,
        ..Default::default()
    }
}

fn explore(spec: &UserSpec, seed: u64, pipeline: PipelineOptions) -> ExplorationResult {
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(seed),
        pipeline,
    )
}

/// Every pipeline configuration worth distinguishing. The threaded ones
/// set `min_batch_per_worker: 1` so the multi-participant merge path
/// really runs even at the tests' small batch sizes; the forced widths
/// (4 and 7) resolve to genuine persistent pools of that width via
/// `Pool::for_threads`, regardless of the host's core count. Later
/// configurations run on an explicitly injected pool, a fresh shared
/// cache, and explicit estimator backends (the macro model named
/// directly, and the counting wrapper) — the backend choice, like every
/// other knob, must never change a front.
fn pipelines() -> Vec<PipelineOptions> {
    vec![
        PipelineOptions::serial_uncached(),
        PipelineOptions {
            threads: 1,
            cache: true,
            ..Default::default()
        },
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        },
        PipelineOptions {
            threads: 4,
            cache: false,
            min_batch_per_worker: 1,
            ..Default::default()
        },
        PipelineOptions {
            threads: 7,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        },
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .on_pool(Pool::for_threads(4)),
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_shared_cache(Arc::new(SharedEvalCache::with_shards(4))),
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_backend(Arc::new(MacroModelBackend)),
        PipelineOptions {
            threads: 4,
            cache: false,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_backend(Arc::new(InstrumentedBackend::macro_model())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline determinism property: cached + pooled exploration
    /// returns a bit-identical front to the serial uncached baseline, for
    /// every precision and seed.
    #[test]
    fn every_pipeline_reproduces_the_serial_front(
        precision_idx in 0usize..8,
        log_wstore in 13u32..=16,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(1u64 << log_wstore, precision).unwrap();
        let baseline = explore(&spec, seed, PipelineOptions::serial_uncached());
        for pipeline in pipelines() {
            let run = explore(&spec, seed, pipeline.clone());
            prop_assert_eq!(
                run.objective_matrix(),
                baseline.objective_matrix(),
                "pipeline {:?} diverged for {} seed {}",
                pipeline,
                precision,
                seed
            );
            prop_assert_eq!(run.evaluations, baseline.evaluations);
        }
    }

    /// Exact accounting: the GA's evaluation count is population ×
    /// (generations + 1) and always splits into estimator calls + served
    /// evaluations; caching and intra-batch dedup never change *what* is
    /// counted, only where it is served from.
    #[test]
    fn evaluation_accounting_is_exact(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        for pipeline in pipelines() {
            let cached = pipeline.cache;
            let run = explore(&spec, seed, pipeline.clone());
            prop_assert_eq!(run.evaluations, 16 + 16 * 8);
            prop_assert_eq!(
                run.distinct_evaluations + run.cache_hits,
                run.evaluations,
                "accounting must partition exactly under {:?}",
                pipeline
            );
            prop_assert!(run.distinct_evaluations <= run.evaluations);
            if !cached {
                // Without memoization the only savings are intra-batch
                // duplicates, so every *distinct* genome of every batch
                // still reaches the estimator — across the whole run that
                // is at least the number of distinct geometries visited.
                let memoized = explore(&spec, seed, PipelineOptions::with_threads(1));
                prop_assert!(
                    run.distinct_evaluations >= memoized.distinct_evaluations,
                    "uncached runs must re-estimate across batches"
                );
            }
        }
    }

    /// The memoized problem evaluates each distinct geometry exactly once:
    /// replaying the same batch costs zero further estimator calls, and
    /// the batch API agrees element-wise with single evaluation.
    #[test]
    fn cache_memoizes_each_geometry_exactly_once(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let problem = DcimProblem::new(
            spec,
            Technology::tsmc28(),
            OperatingConditions::paper_default(),
        )
        .with_pipeline(PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        });
        // A cohort with deliberate duplicates: the same genome block twice.
        let genomes: Vec<_> = {
            use rand::SeedableRng;
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let mut g: Vec<_> = (0..40).map(|_| {
                let mut g = problem.random_genome(&mut r);
                problem.repair(&mut g);
                g
            }).collect();
            let copy = g.clone();
            g.extend(copy);
            g
        };
        let first = problem.evaluate_batch(&genomes);
        let distinct_after_first = problem.stats().distinct_evaluations();
        let replay = problem.evaluate_batch(&genomes);
        prop_assert_eq!(&first, &replay, "replay must be identical");
        prop_assert_eq!(
            problem.stats().distinct_evaluations(),
            distinct_after_first,
            "replaying a batch must not re-estimate anything"
        );
        prop_assert_eq!(distinct_after_first, problem.cache().len());
        // Batch and single evaluation agree element-wise.
        for (genome, batch_objs) in genomes.iter().zip(&first) {
            prop_assert_eq!(&problem.evaluate(genome), batch_objs);
        }
    }

    /// Intra-batch dedup holds even with memoization disabled: a cohort
    /// whose second half repeats its first half reaches the estimator
    /// once per distinct genome, and repeats are answered identically.
    #[test]
    fn uncached_batches_dedup_within_the_cohort(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let problem = DcimProblem::new(
            spec,
            Technology::tsmc28(),
            OperatingConditions::paper_default(),
        )
        .with_pipeline(PipelineOptions {
            threads: 4,
            cache: false,
            min_batch_per_worker: 1,
            ..Default::default()
        });
        let genomes: Vec<_> = {
            use rand::SeedableRng;
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let mut g: Vec<_> = (0..30).map(|_| {
                let mut g = problem.random_genome(&mut r);
                problem.repair(&mut g);
                g
            }).collect();
            let copy = g.clone();
            g.extend(copy);
            g
        };
        let distinct_in_batch = {
            let mut seen = std::collections::HashSet::new();
            genomes.iter().filter(|g| seen.insert(**g)).count()
        };
        let out = problem.evaluate_batch(&genomes);
        prop_assert_eq!(
            problem.stats().distinct_evaluations(),
            distinct_in_batch,
            "duplicates must reach the estimator once even with caching off"
        );
        prop_assert_eq!(
            problem.stats().hits(),
            genomes.len() - distinct_in_batch
        );
        for (a, b) in out.iter().zip(out[genomes.len() / 2..].iter()) {
            prop_assert_eq!(a, b, "repeated genomes must answer identically");
        }
        // A second batch re-estimates everything: nothing was memoized.
        let _ = problem.evaluate_batch(&genomes);
        prop_assert_eq!(
            problem.stats().distinct_evaluations(),
            2 * distinct_in_batch
        );
    }

    /// Genome interning is result-neutral: with the GA-level dedup layer
    /// disabled the fronts, the requested-evaluation count, the distinct
    /// estimator bill and the total served-from-memory count are all
    /// unchanged — only *which layer* serves the duplicates moves (the
    /// interning layer's share is reported in `interned`). The tiered
    /// dominance kernel's counters are live in both configurations.
    #[test]
    fn interning_is_result_neutral_and_accounted(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let interned_run = explore(&spec, seed, PipelineOptions::with_threads(1));
        let mut config_off = cfg(seed);
        config_off.intern = false;
        let plain = explore_pareto_with(
            &spec,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            &config_off,
            PipelineOptions::with_threads(1),
        );
        prop_assert_eq!(interned_run.objective_matrix(), plain.objective_matrix());
        prop_assert_eq!(interned_run.evaluations, plain.evaluations);
        prop_assert_eq!(interned_run.distinct_evaluations, plain.distinct_evaluations);
        prop_assert_eq!(interned_run.cache_hits, plain.cache_hits);
        prop_assert!(interned_run.interned <= interned_run.cache_hits);
        prop_assert_eq!(plain.interned, 0);
        // M=4 production sorts run the blocked branchless tier, so the
        // live counter is `word_ops` (comparisons only bill NaN rows
        // and forced-scalar runs).
        prop_assert!(interned_run.dominance.comparisons + interned_run.dominance.word_ops > 0);
        prop_assert!(plain.dominance.comparisons + plain.dominance.word_ops > 0);
    }

    /// The persistent cache tier joins the matrix: a shared cache
    /// warmed through a segment-store round-trip (forced compaction
    /// included) and one warmed by digest sync both reproduce the
    /// serial front bit-identically — with **zero** distinct
    /// evaluations, since the donor run computed everything.
    #[test]
    fn store_and_sync_warmed_caches_reproduce_the_serial_front(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let baseline = explore(&spec, seed, PipelineOptions::serial_uncached());

        let donor = Arc::new(SharedEvalCache::new());
        let pipeline = |cache: &Arc<SharedEvalCache>| PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_shared_cache(Arc::clone(cache));
        explore(&spec, seed, pipeline(&donor));

        // Arm 1: the donor's snapshot through a segment store with a
        // budget of one, so the round-trip includes a compaction.
        let dir = std::env::temp_dir().join(format!(
            "sega-pipeline-store-{}-{seed}-{precision_idx}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = sega_dcim::CacheStore::dir(&dir, 1).unwrap();
        store.load().unwrap();
        store.save(&donor.snapshot()).unwrap();
        let loaded = sega_dcim::CacheStore::dir(&dir, 1)
            .unwrap()
            .load()
            .unwrap()
            .snapshot;
        let via_store = Arc::new(SharedEvalCache::new());
        via_store.load(&loaded).unwrap();
        let run = explore(&spec, seed, pipeline(&via_store));
        prop_assert_eq!(run.objective_matrix(), baseline.objective_matrix());
        prop_assert_eq!(run.distinct_evaluations, 0, "store-warmed run must be estimator-free");
        let _ = std::fs::remove_dir_all(&dir);

        // Arm 2: the donor's entries over the anti-entropy planner, as
        // a rejoining peer would receive them.
        let via_sync = Arc::new(SharedEvalCache::new());
        let plan = sega_wire::sync::plan_delta(
            &donor.snapshot(),
            &sega_wire::sync::CacheDigest::of(&via_sync.snapshot()),
        );
        via_sync.load(&plan.delta).unwrap();
        let run = explore(&spec, seed, pipeline(&via_sync));
        prop_assert_eq!(run.objective_matrix(), baseline.objective_matrix());
        prop_assert_eq!(run.distinct_evaluations, 0, "sync-warmed run must be estimator-free");
    }

    /// The mixed-precision fan-out is bit-identical between its serial
    /// and concurrent forms, and its counters aggregate exactly.
    #[test]
    fn mixed_fanout_is_deterministic(seed in 0u64..1000) {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let precisions = [Precision::Int4, Precision::Int8, Precision::Bf16];
        let serial = explore_mixed_with(
            16384, &precisions, &tech, &cond, &cfg(seed),
            PipelineOptions { threads: 1, cache: true, ..PipelineOptions::default() },
        ).unwrap();
        let parallel = explore_mixed_with(
            16384, &precisions, &tech, &cond, &cfg(seed),
            PipelineOptions { threads: 4, cache: true, min_batch_per_worker: 1, ..Default::default() },
        ).unwrap();
        let objs = |m: &sega_dcim::MixedExploration| -> Vec<Vec<f64>> {
            m.front.iter().map(|s| s.objectives().to_vec()).collect()
        };
        prop_assert_eq!(objs(&serial), objs(&parallel));
        prop_assert_eq!(serial.evaluations, parallel.evaluations);
        prop_assert_eq!(serial.distinct_evaluations, parallel.distinct_evaluations);
        prop_assert_eq!(serial.evaluations, 3 * (16 + 16 * 8));
        prop_assert_eq!(
            serial.distinct_evaluations + serial.cache_hits,
            serial.evaluations
        );
    }
}

/// The acceptance benchmark of the refactor, pinned as a test: at the
/// default `Nsga2Config` budget the cache performs at least 5× fewer
/// `estimate()` calls than the number of genome evaluations the GA
/// requests (the seed's serial loop performed one call per request).
#[test]
fn cached_exploration_reaches_5x_fewer_estimates_at_default_budget() {
    let spec = UserSpec::new(65536, Precision::Int8).unwrap();
    let run = explore_pareto_with(
        &spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &Nsga2Config::default(),
        PipelineOptions::default(),
    );
    assert_eq!(run.evaluations, 100 + 100 * 120);
    assert!(
        run.distinct_evaluations * 5 <= run.evaluations,
        "only {}x fewer estimator calls ({} of {})",
        run.evaluations / run.distinct_evaluations.max(1),
        run.distinct_evaluations,
        run.evaluations
    );
    // The accounting partitions exactly, and at a converged default
    // budget the GA-level interning layer serves a real share of the
    // duplicates before they ever reach the cache.
    assert_eq!(
        run.distinct_evaluations + run.cache_hits,
        run.evaluations,
        "hits + misses must partition the bill"
    );
    assert!(
        run.interned > 0,
        "a converged default-budget run must breed duplicate genomes"
    );
    assert!(run.interned <= run.cache_hits);
    assert!(
        run.dominance.comparisons + run.dominance.word_ops > 0,
        "kernel counters must be live"
    );
    // The estimator kernel's accounting covers exactly the cohort
    // traffic that reached the backend.
    assert_eq!(
        run.estimator.designs as usize, run.distinct_evaluations,
        "every distinct geometry runs through the cohort kernel once"
    );
    assert_eq!(
        run.estimator.batched + run.estimator.scalar_fallbacks,
        run.estimator.designs
    );
}

// ---------------------------------------------------------------------------
// The speculative loop: breeding generation g+1 while generation g's
// cohort is still in flight must be invisible in every committed number
// — fronts AND accounting bit-identical to the synchronous loop, on
// every backend, even with workers dying or hanging mid-run — and the
// speculation ledger must partition exactly.
// ---------------------------------------------------------------------------

fn program() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sega-dcim"))
}

/// A budget that actually converges: the low mutation rate lets late
/// cohorts consist entirely of already-cached genomes, which is the
/// only way a speculation can confirm (a predicted `+∞` miss row never
/// matches a real estimate).
fn small_cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 10,
        generations: 12,
        mutation_rate: 0.05,
        seed,
        ..Default::default()
    }
}

fn run_small(
    spec: &UserSpec,
    seed: u64,
    speculate: bool,
    backend: Option<Arc<dyn EvalBackend>>,
) -> ExplorationResult {
    let pipeline = PipelineOptions {
        threads: 1,
        cache: true,
        min_batch_per_worker: 1,
        speculate,
        backend,
        ..Default::default()
    };
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &small_cfg(seed),
        pipeline,
    )
}

/// Everything the synchronous loop commits, compared field by field:
/// the front and the full evaluation accounting.
fn assert_committed_identical(run: &ExplorationResult, baseline: &ExplorationResult, label: &str) {
    assert_eq!(
        run.objective_matrix(),
        baseline.objective_matrix(),
        "{label}: front diverged from the synchronous loop"
    );
    assert_eq!(run.evaluations, baseline.evaluations, "{label}");
    assert_eq!(
        run.distinct_evaluations, baseline.distinct_evaluations,
        "{label}"
    );
    assert_eq!(run.cache_hits, baseline.cache_hits, "{label}");
    assert_eq!(run.interned, baseline.interned, "{label}");
}

/// The speculation ledger law: every speculated cohort either stood or
/// was re-bred, nothing else.
fn assert_speculation_ledger(run: &ExplorationResult, label: &str) {
    assert_eq!(
        run.speculation.speculated,
        run.speculation.confirmed + run.speculation.rebred,
        "{label}: ledger must partition ({:?})",
        run.speculation
    );
}

#[test]
fn speculative_loop_is_bit_identical_across_backends_and_faults() {
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let seed = 41;
    let baseline = run_small(&spec, seed, false, None);
    assert_eq!(
        baseline.speculation.speculated, 0,
        "sync loop never speculates"
    );

    // The macro backend first: one speculation per non-final cohort.
    let run = run_small(&spec, seed, true, None);
    assert_committed_identical(&run, &baseline, "speculative macro");
    assert_speculation_ledger(&run, "speculative macro");
    assert_eq!(
        run.speculation.speculated,
        small_cfg(seed).generations as u64,
        "every cohort but the final one is bred ahead"
    );
    assert!(
        run.speculation.confirmed > 0,
        "a converged fault-free run must confirm fully-cached cohorts: {:?}",
        run.speculation
    );

    // Remote fleets: every size, healthy and sabotaged. Respawning is
    // off and the deadline short, as in the remote acceptance suite.
    for fleet_size in [1usize, 2, 3] {
        for fault in [None, Some(("fail-after", 1u64)), Some(("hang-after", 1))] {
            let mut options = RemoteOptions::fleet(program(), fleet_size)
                .with_restart_budget(0)
                .with_deadline(Duration::from_millis(500));
            if let Some((flag, n)) = fault {
                options.workers[0] = options.workers[0]
                    .clone()
                    .with_args([format!("--{flag}"), n.to_string()]);
            }
            let backend = Arc::new(RemoteBackend::spawn(options).expect("spawn fleet"))
                as Arc<dyn EvalBackend>;
            let label = format!("speculative remote x{fleet_size} fault {fault:?}");
            let run = run_small(&spec, seed, true, Some(backend));
            assert_committed_identical(&run, &baseline, &label);
            assert_speculation_ledger(&run, &label);
            if fault.is_none() {
                assert!(
                    run.speculation.confirmed > 0,
                    "{label}: fault-free remote arm must confirm: {:?}",
                    run.speculation
                );
            }
        }
    }
}

/// Stopping an exploration at a journaled generation boundary and
/// resuming from the exported driver state reproduces the uninterrupted
/// run's front and accounting — with and without speculation. The
/// shared cache plays the role of the batch journal's snapshot delta.
#[test]
fn mid_exploration_checkpoint_resume_matches_the_uninterrupted_run() {
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let tech = Technology::tsmc28();
    let conditions = OperatingConditions::paper_default();
    let config = small_cfg(43);
    for speculate in [false, true] {
        let pipeline = |cache: &Arc<SharedEvalCache>| {
            PipelineOptions {
                threads: 1,
                cache: true,
                min_batch_per_worker: 1,
                speculate,
                ..Default::default()
            }
            .with_shared_cache(Arc::clone(cache))
        };

        let reference_cache = Arc::new(SharedEvalCache::new());
        let reference = explore_pareto_resumable(
            &spec,
            &tech,
            &conditions,
            &config,
            pipeline(&reference_cache),
            None,
            2,
            &mut |_| true,
        )
        .expect("uninterrupted run");

        // The "killed" run: capture the second checkpoint, then refuse
        // to continue — exactly what `--stop-after-progress 2` does.
        let cache = Arc::new(SharedEvalCache::new());
        let mut captured: Option<ExploreResume> = None;
        let mut checkpoints = 0usize;
        let interrupted = explore_pareto_resumable(
            &spec,
            &tech,
            &conditions,
            &config,
            pipeline(&cache),
            None,
            2,
            &mut |state| {
                checkpoints += 1;
                if checkpoints == 2 {
                    captured = Some(state.clone());
                    false
                } else {
                    true
                }
            },
        );
        assert!(interrupted.is_none(), "the run must report the abandon");
        let resume = captured.expect("two generation boundaries must pass");

        let resumed = explore_pareto_resumable(
            &spec,
            &tech,
            &conditions,
            &config,
            pipeline(&cache),
            Some(resume),
            2,
            &mut |_| true,
        )
        .expect("resumed run");
        let label = format!("resume (speculate: {speculate})");
        assert_committed_identical(&resumed, &reference, &label);
        // Scratch-allocation counters (dominance and estimator) depend
        // on process-local buffer warmth and are exempt from the resume
        // contract; the work counters and the speculation ledger are not.
        assert_eq!(
            resumed.dominance.comparisons, reference.dominance.comparisons,
            "{label}"
        );
        assert_eq!(
            resumed.dominance.word_ops, reference.dominance.word_ops,
            "{label}"
        );
        assert_eq!(
            resumed.estimator.designs, reference.estimator.designs,
            "{label}"
        );
        assert_eq!(
            resumed.estimator.batched, reference.estimator.batched,
            "{label}"
        );
        assert_eq!(
            resumed.estimator.scalar_fallbacks, reference.estimator.scalar_fallbacks,
            "{label}"
        );
        assert_eq!(resumed.speculation, reference.speculation, "{label}");
    }
}
