//! Property tests of the batched evaluation pipeline: every pipeline
//! configuration — serial, pooled, cached, uncached, shared-cache, and
//! their combinations — must return a **bit-identical** Pareto front for
//! the same seed, and the evaluation accounting must be exact.

use std::sync::Arc;

use proptest::prelude::*;
use sega_cells::Technology;
use sega_dcim::explore::DcimProblem;
use sega_dcim::{
    explore_mixed_with, explore_pareto_with, ExplorationResult, InstrumentedBackend,
    MacroModelBackend, PipelineOptions, SharedEvalCache, UserSpec,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::{Nsga2Config, Problem};
use sega_parallel::Pool;

const ALL_PRECISIONS: [Precision; 8] = [
    Precision::Int2,
    Precision::Int4,
    Precision::Int8,
    Precision::Int16,
    Precision::Fp8,
    Precision::Fp16,
    Precision::Bf16,
    Precision::Fp32,
];

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 16,
        generations: 8,
        seed,
        ..Default::default()
    }
}

fn explore(spec: &UserSpec, seed: u64, pipeline: PipelineOptions) -> ExplorationResult {
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(seed),
        pipeline,
    )
}

/// Every pipeline configuration worth distinguishing. The threaded ones
/// set `min_batch_per_worker: 1` so the multi-participant merge path
/// really runs even at the tests' small batch sizes; the forced widths
/// (4 and 7) resolve to genuine persistent pools of that width via
/// `Pool::for_threads`, regardless of the host's core count. Later
/// configurations run on an explicitly injected pool, a fresh shared
/// cache, and explicit estimator backends (the macro model named
/// directly, and the counting wrapper) — the backend choice, like every
/// other knob, must never change a front.
fn pipelines() -> Vec<PipelineOptions> {
    vec![
        PipelineOptions::serial_uncached(),
        PipelineOptions {
            threads: 1,
            cache: true,
            ..Default::default()
        },
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        },
        PipelineOptions {
            threads: 4,
            cache: false,
            min_batch_per_worker: 1,
            ..Default::default()
        },
        PipelineOptions {
            threads: 7,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        },
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .on_pool(Pool::for_threads(4)),
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_shared_cache(Arc::new(SharedEvalCache::with_shards(4))),
        PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_backend(Arc::new(MacroModelBackend)),
        PipelineOptions {
            threads: 4,
            cache: false,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_backend(Arc::new(InstrumentedBackend::macro_model())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline determinism property: cached + pooled exploration
    /// returns a bit-identical front to the serial uncached baseline, for
    /// every precision and seed.
    #[test]
    fn every_pipeline_reproduces_the_serial_front(
        precision_idx in 0usize..8,
        log_wstore in 13u32..=16,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(1u64 << log_wstore, precision).unwrap();
        let baseline = explore(&spec, seed, PipelineOptions::serial_uncached());
        for pipeline in pipelines() {
            let run = explore(&spec, seed, pipeline.clone());
            prop_assert_eq!(
                run.objective_matrix(),
                baseline.objective_matrix(),
                "pipeline {:?} diverged for {} seed {}",
                pipeline,
                precision,
                seed
            );
            prop_assert_eq!(run.evaluations, baseline.evaluations);
        }
    }

    /// Exact accounting: the GA's evaluation count is population ×
    /// (generations + 1) and always splits into estimator calls + served
    /// evaluations; caching and intra-batch dedup never change *what* is
    /// counted, only where it is served from.
    #[test]
    fn evaluation_accounting_is_exact(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        for pipeline in pipelines() {
            let cached = pipeline.cache;
            let run = explore(&spec, seed, pipeline.clone());
            prop_assert_eq!(run.evaluations, 16 + 16 * 8);
            prop_assert_eq!(
                run.distinct_evaluations + run.cache_hits,
                run.evaluations,
                "accounting must partition exactly under {:?}",
                pipeline
            );
            prop_assert!(run.distinct_evaluations <= run.evaluations);
            if !cached {
                // Without memoization the only savings are intra-batch
                // duplicates, so every *distinct* genome of every batch
                // still reaches the estimator — across the whole run that
                // is at least the number of distinct geometries visited.
                let memoized = explore(&spec, seed, PipelineOptions::with_threads(1));
                prop_assert!(
                    run.distinct_evaluations >= memoized.distinct_evaluations,
                    "uncached runs must re-estimate across batches"
                );
            }
        }
    }

    /// The memoized problem evaluates each distinct geometry exactly once:
    /// replaying the same batch costs zero further estimator calls, and
    /// the batch API agrees element-wise with single evaluation.
    #[test]
    fn cache_memoizes_each_geometry_exactly_once(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let problem = DcimProblem::new(
            spec,
            Technology::tsmc28(),
            OperatingConditions::paper_default(),
        )
        .with_pipeline(PipelineOptions {
            threads: 4,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        });
        // A cohort with deliberate duplicates: the same genome block twice.
        let genomes: Vec<_> = {
            use rand::SeedableRng;
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let mut g: Vec<_> = (0..40).map(|_| {
                let mut g = problem.random_genome(&mut r);
                problem.repair(&mut g);
                g
            }).collect();
            let copy = g.clone();
            g.extend(copy);
            g
        };
        let first = problem.evaluate_batch(&genomes);
        let distinct_after_first = problem.stats().distinct_evaluations();
        let replay = problem.evaluate_batch(&genomes);
        prop_assert_eq!(&first, &replay, "replay must be identical");
        prop_assert_eq!(
            problem.stats().distinct_evaluations(),
            distinct_after_first,
            "replaying a batch must not re-estimate anything"
        );
        prop_assert_eq!(distinct_after_first, problem.cache().len());
        // Batch and single evaluation agree element-wise.
        for (genome, batch_objs) in genomes.iter().zip(&first) {
            prop_assert_eq!(&problem.evaluate(genome), batch_objs);
        }
    }

    /// Intra-batch dedup holds even with memoization disabled: a cohort
    /// whose second half repeats its first half reaches the estimator
    /// once per distinct genome, and repeats are answered identically.
    #[test]
    fn uncached_batches_dedup_within_the_cohort(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let problem = DcimProblem::new(
            spec,
            Technology::tsmc28(),
            OperatingConditions::paper_default(),
        )
        .with_pipeline(PipelineOptions {
            threads: 4,
            cache: false,
            min_batch_per_worker: 1,
            ..Default::default()
        });
        let genomes: Vec<_> = {
            use rand::SeedableRng;
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let mut g: Vec<_> = (0..30).map(|_| {
                let mut g = problem.random_genome(&mut r);
                problem.repair(&mut g);
                g
            }).collect();
            let copy = g.clone();
            g.extend(copy);
            g
        };
        let distinct_in_batch = {
            let mut seen = std::collections::HashSet::new();
            genomes.iter().filter(|g| seen.insert(**g)).count()
        };
        let out = problem.evaluate_batch(&genomes);
        prop_assert_eq!(
            problem.stats().distinct_evaluations(),
            distinct_in_batch,
            "duplicates must reach the estimator once even with caching off"
        );
        prop_assert_eq!(
            problem.stats().hits(),
            genomes.len() - distinct_in_batch
        );
        for (a, b) in out.iter().zip(out[genomes.len() / 2..].iter()) {
            prop_assert_eq!(a, b, "repeated genomes must answer identically");
        }
        // A second batch re-estimates everything: nothing was memoized.
        let _ = problem.evaluate_batch(&genomes);
        prop_assert_eq!(
            problem.stats().distinct_evaluations(),
            2 * distinct_in_batch
        );
    }

    /// Genome interning is result-neutral: with the GA-level dedup layer
    /// disabled the fronts, the requested-evaluation count, the distinct
    /// estimator bill and the total served-from-memory count are all
    /// unchanged — only *which layer* serves the duplicates moves (the
    /// interning layer's share is reported in `interned`). The tiered
    /// dominance kernel's counters are live in both configurations.
    #[test]
    fn interning_is_result_neutral_and_accounted(
        precision_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let precision = ALL_PRECISIONS[precision_idx];
        let spec = UserSpec::new(16384, precision).unwrap();
        let interned_run = explore(&spec, seed, PipelineOptions::with_threads(1));
        let mut config_off = cfg(seed);
        config_off.intern = false;
        let plain = explore_pareto_with(
            &spec,
            &Technology::tsmc28(),
            &OperatingConditions::paper_default(),
            &config_off,
            PipelineOptions::with_threads(1),
        );
        prop_assert_eq!(interned_run.objective_matrix(), plain.objective_matrix());
        prop_assert_eq!(interned_run.evaluations, plain.evaluations);
        prop_assert_eq!(interned_run.distinct_evaluations, plain.distinct_evaluations);
        prop_assert_eq!(interned_run.cache_hits, plain.cache_hits);
        prop_assert!(interned_run.interned <= interned_run.cache_hits);
        prop_assert_eq!(plain.interned, 0);
        // M=4 production sorts run the blocked branchless tier, so the
        // live counter is `word_ops` (comparisons only bill NaN rows
        // and forced-scalar runs).
        prop_assert!(interned_run.dominance.comparisons + interned_run.dominance.word_ops > 0);
        prop_assert!(plain.dominance.comparisons + plain.dominance.word_ops > 0);
    }

    /// The mixed-precision fan-out is bit-identical between its serial
    /// and concurrent forms, and its counters aggregate exactly.
    #[test]
    fn mixed_fanout_is_deterministic(seed in 0u64..1000) {
        let tech = Technology::tsmc28();
        let cond = OperatingConditions::paper_default();
        let precisions = [Precision::Int4, Precision::Int8, Precision::Bf16];
        let serial = explore_mixed_with(
            16384, &precisions, &tech, &cond, &cfg(seed),
            PipelineOptions { threads: 1, cache: true, ..PipelineOptions::default() },
        ).unwrap();
        let parallel = explore_mixed_with(
            16384, &precisions, &tech, &cond, &cfg(seed),
            PipelineOptions { threads: 4, cache: true, min_batch_per_worker: 1, ..Default::default() },
        ).unwrap();
        let objs = |m: &sega_dcim::MixedExploration| -> Vec<Vec<f64>> {
            m.front.iter().map(|s| s.objectives().to_vec()).collect()
        };
        prop_assert_eq!(objs(&serial), objs(&parallel));
        prop_assert_eq!(serial.evaluations, parallel.evaluations);
        prop_assert_eq!(serial.distinct_evaluations, parallel.distinct_evaluations);
        prop_assert_eq!(serial.evaluations, 3 * (16 + 16 * 8));
        prop_assert_eq!(
            serial.distinct_evaluations + serial.cache_hits,
            serial.evaluations
        );
    }
}

/// The acceptance benchmark of the refactor, pinned as a test: at the
/// default `Nsga2Config` budget the cache performs at least 5× fewer
/// `estimate()` calls than the number of genome evaluations the GA
/// requests (the seed's serial loop performed one call per request).
#[test]
fn cached_exploration_reaches_5x_fewer_estimates_at_default_budget() {
    let spec = UserSpec::new(65536, Precision::Int8).unwrap();
    let run = explore_pareto_with(
        &spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &Nsga2Config::default(),
        PipelineOptions::default(),
    );
    assert_eq!(run.evaluations, 100 + 100 * 120);
    assert!(
        run.distinct_evaluations * 5 <= run.evaluations,
        "only {}x fewer estimator calls ({} of {})",
        run.evaluations / run.distinct_evaluations.max(1),
        run.distinct_evaluations,
        run.evaluations
    );
    // The accounting partitions exactly, and at a converged default
    // budget the GA-level interning layer serves a real share of the
    // duplicates before they ever reach the cache.
    assert_eq!(
        run.distinct_evaluations + run.cache_hits,
        run.evaluations,
        "hits + misses must partition the bill"
    );
    assert!(
        run.interned > 0,
        "a converged default-budget run must breed duplicate genomes"
    );
    assert!(run.interned <= run.cache_hits);
    assert!(
        run.dominance.comparisons + run.dominance.word_ops > 0,
        "kernel counters must be live"
    );
    // The estimator kernel's accounting covers exactly the cohort
    // traffic that reached the backend.
    assert_eq!(
        run.estimator.designs as usize, run.distinct_evaluations,
        "every distinct geometry runs through the cohort kernel once"
    );
    assert_eq!(
        run.estimator.batched + run.estimator.scalar_fallbacks,
        run.estimator.designs
    );
}
