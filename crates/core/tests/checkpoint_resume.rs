//! Checkpointed batch resume, end to end at the library level: a run
//! that is stopped after one job and resumed from its journal must
//! finish with a report **byte-identical** to the uninterrupted run's —
//! including cross-job cache accounting, which only reproduces if the
//! journal's snapshot deltas really rebuild the original cache state.

use std::path::PathBuf;

use sega_cells::Technology;
use sega_dcim::{
    run_batch, run_batch_with, BatchControl, BatchJob, CheckpointConfig, PipelineOptions, UserSpec,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;

fn jobs() -> Vec<BatchJob> {
    let job = |wstore: u64, precision, seed| BatchJob {
        spec: UserSpec::new(wstore, precision).unwrap(),
        config: Nsga2Config {
            population: 10,
            generations: 4,
            seed,
            ..Default::default()
        },
    };
    vec![
        job(8192, Precision::Int8, 1),
        // Same key space as job 0: job 1's accounting only reproduces on
        // resume if the journal's deltas rebuilt job 0's cache entries.
        job(8192, Precision::Int8, 2),
        job(16384, Precision::Bf16, 3),
    ]
}

fn pipeline() -> PipelineOptions {
    PipelineOptions {
        threads: 1,
        cache: true,
        min_batch_per_worker: 1,
        ..Default::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sega-ckpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn tech() -> Technology {
    Technology::tsmc28()
}

fn conditions() -> OperatingConditions {
    OperatingConditions::paper_default()
}

#[test]
fn resume_reproduces_the_uninterrupted_report_byte_for_byte() {
    let jobs = jobs();
    let reference = run_batch(&jobs, &tech(), &conditions(), pipeline());
    let path = scratch("resume");

    // The "killed" run: journal to the checkpoint, stop after one job.
    let stopped = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::fresh(&path)),
            stop_after_jobs: Some(1),
            ..Default::default()
        },
    )
    .expect("checkpointed run");
    assert!(!stopped.complete);
    assert_eq!(stopped.outcomes.len(), 1);
    assert_eq!(stopped.resumed_jobs, 0);

    // The resumed run: job 0 reconstructed from the journal, jobs 1–2
    // executed against the delta-rebuilt cache.
    let resumed = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            stop_after_jobs: None,
            ..Default::default()
        },
    )
    .expect("resumed run");
    assert!(resumed.complete);
    assert_eq!(resumed.resumed_jobs, 1);
    assert_eq!(
        resumed.to_json().to_string(),
        reference.to_json().to_string(),
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_journal_tail_re_executes_only_the_lost_job() {
    let jobs = jobs();
    let reference = run_batch(&jobs, &tech(), &conditions(), pipeline());
    let path = scratch("torn");

    // A complete journaled run, then a crash that tears the last record.
    let full = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::fresh(&path)),
            stop_after_jobs: None,
            ..Default::default()
        },
    )
    .expect("journaled run");
    assert!(full.complete);
    let bytes = std::fs::read(&path).expect("journal exists");
    std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear the tail");

    let resumed = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            stop_after_jobs: None,
            ..Default::default()
        },
    )
    .expect("resume over a torn journal");
    assert!(resumed.complete);
    assert_eq!(
        resumed.resumed_jobs, 2,
        "the torn record must be dropped, the intact prefix kept"
    );
    assert_eq!(
        resumed.to_json().to_string(),
        reference.to_json().to_string()
    );
    let _ = std::fs::remove_file(&path);
}

/// A run abandoned *inside* a job — right after its Nth mid-job
/// progress record — must resume at that generation boundary and still
/// finish with a report byte-identical to an uninterrupted run with the
/// same journaling cadence. Exercised both synchronously and with the
/// speculative loop (whose ledger lands in the report and must survive
/// the driver-state round trip through the journal).
#[test]
fn mid_job_progress_resume_reproduces_the_uninterrupted_report() {
    for speculate in [false, true] {
        let jobs = jobs();
        let make_pipeline = || {
            let mut p = pipeline();
            p.speculate = speculate;
            p
        };
        let name = format!("progress-{speculate}");
        let reference_path = scratch(&format!("{name}-ref"));
        // The reference also journals every 2 generations: checkpoint
        // boundaries stay synchronous (the driver must pass through the
        // exportable Breed state), so the speculation ledger depends on
        // the journaling cadence and must match between the runs.
        let reference = run_batch_with(
            &jobs,
            &tech(),
            &conditions(),
            make_pipeline(),
            &BatchControl {
                checkpoint: Some(CheckpointConfig::fresh(&reference_path)),
                checkpoint_generations: 2,
                ..Default::default()
            },
        )
        .expect("reference run");
        assert!(reference.complete);

        let path = scratch(&name);
        let stopped = run_batch_with(
            &jobs,
            &tech(),
            &conditions(),
            make_pipeline(),
            &BatchControl {
                checkpoint: Some(CheckpointConfig::fresh(&path)),
                checkpoint_generations: 2,
                stop_after_progress: Some(2),
                ..Default::default()
            },
        )
        .expect("stopped run");
        assert!(!stopped.complete, "the run must abandon mid-job");
        assert_eq!(
            stopped.outcomes.len(),
            0,
            "the interrupted job must not report an outcome"
        );

        let resumed = run_batch_with(
            &jobs,
            &tech(),
            &conditions(),
            make_pipeline(),
            &BatchControl {
                checkpoint: Some(CheckpointConfig::resume(&path)),
                checkpoint_generations: 2,
                ..Default::default()
            },
        )
        .expect("resumed run");
        assert!(resumed.complete);
        assert_eq!(
            resumed.resumed_jobs, 0,
            "no job had finished; the interrupted one resumes mid-flight"
        );
        if speculate {
            assert!(
                resumed.speculation.speculated > 0,
                "the speculative loop must have run: {:?}",
                resumed.speculation
            );
        }
        assert_eq!(
            resumed.to_json().to_string(),
            reference.to_json().to_string(),
            "mid-job resume must reproduce the uninterrupted report \
             (speculate: {speculate})"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&reference_path);
    }
}

#[test]
fn resume_rejects_a_journal_for_a_different_job_list() {
    let jobs = jobs();
    let path = scratch("mismatch");
    run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::fresh(&path)),
            stop_after_jobs: Some(1),
            ..Default::default()
        },
    )
    .expect("checkpointed run");

    let mut edited = jobs.clone();
    edited[2].config.seed = 999;
    let err = run_batch_with(
        &edited,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            stop_after_jobs: None,
            ..Default::default()
        },
    )
    .expect_err("fingerprint mismatch must fail");
    assert!(err.contains("different job list"), "{err}");
    let _ = std::fs::remove_file(&path);
}
