//! Checkpointed batch resume, end to end at the library level: a run
//! that is stopped after one job and resumed from its journal must
//! finish with a report **byte-identical** to the uninterrupted run's —
//! including cross-job cache accounting, which only reproduces if the
//! journal's snapshot deltas really rebuild the original cache state.

use std::path::PathBuf;

use sega_cells::Technology;
use sega_dcim::{
    run_batch, run_batch_with, BatchControl, BatchJob, CheckpointConfig, PipelineOptions, UserSpec,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;

fn jobs() -> Vec<BatchJob> {
    let job = |wstore: u64, precision, seed| BatchJob {
        spec: UserSpec::new(wstore, precision).unwrap(),
        config: Nsga2Config {
            population: 10,
            generations: 4,
            seed,
            ..Default::default()
        },
    };
    vec![
        job(8192, Precision::Int8, 1),
        // Same key space as job 0: job 1's accounting only reproduces on
        // resume if the journal's deltas rebuilt job 0's cache entries.
        job(8192, Precision::Int8, 2),
        job(16384, Precision::Bf16, 3),
    ]
}

fn pipeline() -> PipelineOptions {
    PipelineOptions {
        threads: 1,
        cache: true,
        min_batch_per_worker: 1,
        ..Default::default()
    }
}

fn scratch(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("sega-ckpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn tech() -> Technology {
    Technology::tsmc28()
}

fn conditions() -> OperatingConditions {
    OperatingConditions::paper_default()
}

#[test]
fn resume_reproduces_the_uninterrupted_report_byte_for_byte() {
    let jobs = jobs();
    let reference = run_batch(&jobs, &tech(), &conditions(), pipeline());
    let path = scratch("resume");

    // The "killed" run: journal to the checkpoint, stop after one job.
    let stopped = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::fresh(&path)),
            stop_after_jobs: Some(1),
        },
    )
    .expect("checkpointed run");
    assert!(!stopped.complete);
    assert_eq!(stopped.outcomes.len(), 1);
    assert_eq!(stopped.resumed_jobs, 0);

    // The resumed run: job 0 reconstructed from the journal, jobs 1–2
    // executed against the delta-rebuilt cache.
    let resumed = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            stop_after_jobs: None,
        },
    )
    .expect("resumed run");
    assert!(resumed.complete);
    assert_eq!(resumed.resumed_jobs, 1);
    assert_eq!(
        resumed.to_json().to_string(),
        reference.to_json().to_string(),
        "resumed report must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_journal_tail_re_executes_only_the_lost_job() {
    let jobs = jobs();
    let reference = run_batch(&jobs, &tech(), &conditions(), pipeline());
    let path = scratch("torn");

    // A complete journaled run, then a crash that tears the last record.
    let full = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::fresh(&path)),
            stop_after_jobs: None,
        },
    )
    .expect("journaled run");
    assert!(full.complete);
    let bytes = std::fs::read(&path).expect("journal exists");
    std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("tear the tail");

    let resumed = run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            stop_after_jobs: None,
        },
    )
    .expect("resume over a torn journal");
    assert!(resumed.complete);
    assert_eq!(
        resumed.resumed_jobs, 2,
        "the torn record must be dropped, the intact prefix kept"
    );
    assert_eq!(
        resumed.to_json().to_string(),
        reference.to_json().to_string()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_journal_for_a_different_job_list() {
    let jobs = jobs();
    let path = scratch("mismatch");
    run_batch_with(
        &jobs,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::fresh(&path)),
            stop_after_jobs: Some(1),
        },
    )
    .expect("checkpointed run");

    let mut edited = jobs.clone();
    edited[2].config.seed = 999;
    let err = run_batch_with(
        &edited,
        &tech(),
        &conditions(),
        pipeline(),
        &BatchControl {
            checkpoint: Some(CheckpointConfig::resume(&path)),
            stop_after_jobs: None,
        },
    )
    .expect_err("fingerprint mismatch must fail");
    assert!(err.contains("different job list"), "{err}");
    let _ = std::fs::remove_file(&path);
}
