//! Integration tests of the PR's runtime: the persistent worker pool,
//! the sharded cross-exploration [`SharedEvalCache`], and their
//! interaction with the exploration pipeline.
//!
//! Three properties anchor everything:
//!
//! 1. **Pool determinism** — forced pool widths (4 and 7, regardless of
//!    host cores) reproduce the serial front bit-identically.
//! 2. **Shard invariance** — the shard count changes lock granularity
//!    only: fronts *and counters* are identical for 1, 4 and 64 shards.
//! 3. **Cross-exploration reuse** — a second run of the same spec
//!    through the same cache reports **zero** distinct evaluations.

use std::sync::Arc;

use sega_cells::Technology;
use sega_dcim::{
    explore_mixed_with, explore_pareto_with, Compiler, ExplorationResult, PipelineOptions,
    SharedEvalCache, UserSpec,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;
use sega_parallel::Pool;

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 20,
        generations: 10,
        seed,
        ..Default::default()
    }
}

fn explore(spec: &UserSpec, seed: u64, pipeline: PipelineOptions) -> ExplorationResult {
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(seed),
        pipeline,
    )
}

#[test]
fn forced_pool_widths_reproduce_the_serial_front() {
    let spec = UserSpec::new(16384, Precision::Bf16).unwrap();
    let baseline = explore(&spec, 11, PipelineOptions::serial_uncached());
    for width in [4usize, 7] {
        // Explicitly injected pool of the forced width (a real
        // `width`-participant pool even on a single-core host), plus the
        // registry-resolved path via `threads`.
        for pipeline in [
            PipelineOptions {
                threads: width,
                cache: true,
                min_batch_per_worker: 1,
                ..Default::default()
            },
            PipelineOptions {
                threads: width,
                cache: true,
                min_batch_per_worker: 1,
                ..Default::default()
            }
            .on_pool(Arc::new(Pool::new(width))),
        ] {
            let run = explore(&spec, 11, pipeline);
            assert_eq!(
                run.objective_matrix(),
                baseline.objective_matrix(),
                "pool width {width} diverged"
            );
        }
    }
}

#[test]
fn shard_count_changes_nothing_observable() {
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let mut reference: Option<(sega_moga::ObjectiveMatrix, usize, usize)> = None;
    for shards in [1usize, 4, 64] {
        let cache = Arc::new(SharedEvalCache::with_shards(shards));
        let run = explore(
            &spec,
            3,
            PipelineOptions {
                threads: 4,
                cache: true,
                min_batch_per_worker: 1,
                ..Default::default()
            }
            .with_shared_cache(Arc::clone(&cache)),
        );
        // The cache saw exactly this run: its lifetime counters must
        // match the run's, shard count notwithstanding. (Genomes the GA
        // interned never reached the cache, so they are excluded from
        // its lifetime hits.)
        assert_eq!(cache.distinct_evaluations(), run.distinct_evaluations);
        assert_eq!(cache.hits() + run.interned, run.cache_hits);
        assert_eq!(cache.len(), run.distinct_evaluations);
        match &reference {
            None => {
                reference = Some((
                    run.objective_matrix(),
                    run.distinct_evaluations,
                    run.cache_hits,
                ))
            }
            Some((front, distinct, hits)) => {
                assert_eq!(
                    &run.objective_matrix(),
                    front,
                    "front differs at {shards} shards"
                );
                assert_eq!(
                    run.distinct_evaluations, *distinct,
                    "counters differ at {shards} shards"
                );
                assert_eq!(run.cache_hits, *hits);
            }
        }
    }
}

#[test]
fn second_run_of_the_same_spec_estimates_nothing() {
    let spec = UserSpec::new(16384, Precision::Fp16).unwrap();
    let cache = Arc::new(SharedEvalCache::new());
    let pipeline = PipelineOptions::default().with_shared_cache(Arc::clone(&cache));
    let first = explore(&spec, 42, pipeline.clone());
    assert!(first.distinct_evaluations > 0);
    let second = explore(&spec, 42, pipeline);
    assert_eq!(
        second.distinct_evaluations, 0,
        "warm cache must serve the whole identical run"
    );
    assert_eq!(second.cache_hits, second.evaluations);
    assert_eq!(second.objective_matrix(), first.objective_matrix());
    // A different seed still reuses most of the discrete space.
    let third = explore(
        &spec,
        43,
        PipelineOptions::default().with_shared_cache(cache),
    );
    assert!(
        third.distinct_evaluations < first.distinct_evaluations,
        "cross-seed reuse must shrink the estimator bill ({} vs {})",
        third.distinct_evaluations,
        first.distinct_evaluations
    );
}

#[test]
fn cache_isolates_differing_specs_and_conditions() {
    // Same cache object, different key: nothing may leak between key
    // spaces — the second exploration pays its own full estimate bill.
    let cache = Arc::new(SharedEvalCache::new());
    let int8 = UserSpec::new(16384, Precision::Int8).unwrap();
    let int4 = UserSpec::new(16384, Precision::Int4).unwrap();
    let a = explore(
        &int8,
        1,
        PipelineOptions::default().with_shared_cache(Arc::clone(&cache)),
    );
    let b = explore(
        &int4,
        1,
        PipelineOptions::default().with_shared_cache(Arc::clone(&cache)),
    );
    assert!(a.distinct_evaluations > 0 && b.distinct_evaluations > 0);
    assert_eq!(cache.spaces_len(), 2);
    // And a private-cache run of the second spec sees identical counters:
    // the shared cache gave it nothing.
    let private = explore(&int4, 1, PipelineOptions::default());
    assert_eq!(b.distinct_evaluations, private.distinct_evaluations);
    assert_eq!(b.objective_matrix(), private.objective_matrix());
}

#[test]
fn compiler_reuses_estimates_across_runs() {
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let compiler = Compiler::new().with_exploration_budget(20, 10);
    let first = compiler.explore(&spec);
    assert!(first.distinct_evaluations > 0);
    let second = compiler.explore(&spec);
    assert_eq!(
        second.distinct_evaluations, 0,
        "a compiler's second identical exploration must be estimator-free"
    );
    assert_eq!(second.objective_matrix(), first.objective_matrix());
    // Clones share the cache (the paper flow compiles several strategies
    // from one exploration budget).
    let clone_run = compiler.clone().explore(&spec);
    assert_eq!(clone_run.distinct_evaluations, 0);
}

#[test]
fn mixed_exploration_with_shared_cache_beats_per_problem_caching() {
    // The ISSUE's acceptance criterion: a mixed-precision run through a
    // warm SharedEvalCache reports strictly fewer distinct evaluations
    // than per-problem caching at the same budget.
    let tech = Technology::tsmc28();
    let cond = OperatingConditions::paper_default();
    let precisions = [Precision::Int4, Precision::Int8, Precision::Bf16];
    let per_problem = explore_mixed_with(
        16384,
        &precisions,
        &tech,
        &cond,
        &cfg(5),
        PipelineOptions::default(),
    )
    .unwrap();
    let cache = Arc::new(SharedEvalCache::new());
    let shared_opts = PipelineOptions::default().with_shared_cache(Arc::clone(&cache));
    let warm = explore_mixed_with(
        16384,
        &precisions,
        &tech,
        &cond,
        &cfg(4),
        shared_opts.clone(),
    )
    .unwrap();
    assert!(warm.distinct_evaluations > 0);
    let second =
        explore_mixed_with(16384, &precisions, &tech, &cond, &cfg(5), shared_opts).unwrap();
    assert!(
        second.distinct_evaluations < per_problem.distinct_evaluations,
        "shared cache must strictly reduce the estimator bill ({} vs {})",
        second.distinct_evaluations,
        per_problem.distinct_evaluations
    );
    // Fronts are unaffected by where estimates came from.
    let objs = |m: &sega_dcim::MixedExploration| -> Vec<Vec<f64>> {
        m.front.iter().map(|s| s.objectives().to_vec()).collect()
    };
    assert_eq!(objs(&second), objs(&per_problem));
}

#[test]
fn global_cache_accumulates_across_pipelines() {
    // `.shared()` attaches the process-global cache: two pipelines built
    // independently still see each other's estimates.
    let spec = UserSpec::new(32768, Precision::Int16).unwrap();
    let first = explore(&spec, 77, PipelineOptions::default().shared());
    let second = explore(&spec, 77, PipelineOptions::default().shared());
    // (Another test may have warmed this key space first — the second
    // run is the one with a guaranteed-warm cache.)
    assert_eq!(second.distinct_evaluations, 0);
    assert_eq!(second.objective_matrix(), first.objective_matrix());
}
