//! The distributed acceptance suite: fronts and evaluation accounting
//! must be **bit-identical** across backend ∈ {macro, remote × {1,2,3}
//! workers} — including when workers are killed mid-batch or answer
//! corrupted frames — because the remote backend only moves *where* a
//! deterministic function is computed, never *what* it computes.
//!
//! Every test here spawns real `sega-dcim worker --serve` processes
//! (the binary under test, via `CARGO_BIN_EXE_sega-dcim`) and talks to
//! them over the real framed stdio transport; the fault-injection knobs
//! (`--fail-after`, `--corrupt-after`) are the worker's own CLI flags,
//! so the recovery paths exercised here are exactly the ones a dying
//! fleet member triggers in production.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;
use sega_cells::Technology;
use sega_dcim::{
    explore_pareto_with, EvalBackend, ExplorationResult, PipelineOptions, RemoteBackend,
    RemoteOptions, SharedEvalCache, UserSpec, WorkerCommand,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;

const PRECISIONS: [Precision; 4] = [
    Precision::Int4,
    Precision::Int8,
    Precision::Bf16,
    Precision::Fp32,
];

fn program() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sega-dcim"))
}

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 10,
        generations: 5,
        seed,
        ..Default::default()
    }
}

fn explore(spec: &UserSpec, seed: u64, backend: Option<Arc<dyn EvalBackend>>) -> ExplorationResult {
    let pipeline = PipelineOptions {
        threads: 1,
        cache: true,
        min_batch_per_worker: 1,
        backend,
        ..Default::default()
    };
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(seed),
        pipeline,
    )
}

/// A faulty fleet: `fleet_size` workers, with worker 0 carrying the
/// given extra fault-injection flags.
fn faulty_fleet(fleet_size: usize, fault_flags: &[(&str, u64)]) -> RemoteBackend {
    let mut options = RemoteOptions::fleet(program(), fleet_size);
    options.workers[0] = options.workers[0].clone().with_args(
        fault_flags
            .iter()
            .flat_map(|(flag, n)| [format!("--{flag}"), n.to_string()]),
    );
    RemoteBackend::spawn(options).expect("spawn faulty fleet")
}

fn assert_matches_baseline(run: &ExplorationResult, baseline: &ExplorationResult, label: &str) {
    assert_eq!(
        run.objective_matrix(),
        baseline.objective_matrix(),
        "{label}: front diverged from the in-process baseline"
    );
    assert_eq!(run.evaluations, baseline.evaluations, "{label}");
    assert_eq!(
        run.distinct_evaluations, baseline.distinct_evaluations,
        "{label}"
    );
    assert_eq!(run.cache_hits, baseline.cache_hits, "{label}");
    assert_eq!(
        run.distinct_evaluations + run.cache_hits,
        run.evaluations,
        "{label}: accounting must partition exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property: for every sampled (precision, seed), the
    /// front and the evaluation accounting are bit-identical across
    /// backend ∈ {macro, remote×{1,2,3}} — and still identical when one
    /// of two workers is killed after its first answered request.
    #[test]
    fn fronts_are_bit_identical_across_macro_and_remote_fleets(
        precision_idx in 0usize..4,
        log_wstore in 13u32..=15,
        seed in 0u64..1000,
    ) {
        let spec = UserSpec::new(1u64 << log_wstore, PRECISIONS[precision_idx]).unwrap();
        let baseline = explore(&spec, seed, None);
        for fleet_size in [1usize, 2, 3] {
            let backend = Arc::new(
                RemoteBackend::spawn(RemoteOptions::fleet(program(), fleet_size))
                    .expect("spawn fleet"),
            );
            let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
            assert_matches_baseline(&run, &baseline, &format!("remote x{fleet_size}"));
            let stats = backend.stats();
            prop_assert_eq!(stats.worker_deaths, 0);
            prop_assert_eq!(stats.fallback_geometries, 0);
            prop_assert!(stats.round_trips > 0, "fleet must have been exercised");
            prop_assert_eq!(stats.geometries as usize, run.distinct_evaluations);
            prop_assert_eq!(stats.workers_alive, fleet_size);
        }
        // Injected worker death: worker 0 of 2 dies on its second request.
        let backend = Arc::new(faulty_fleet(2, &[("fail-after", 1)]));
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(&run, &baseline, "remote x2 with mid-batch death");
        let stats = backend.stats();
        prop_assert_eq!(stats.worker_deaths, 1);
        prop_assert_eq!(stats.workers_alive, 1);
        prop_assert_eq!(stats.geometries as usize, run.distinct_evaluations);
    }
}

#[test]
fn killed_worker_requeues_to_the_survivor() {
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let baseline = explore(&spec, 7, None);
    let backend = Arc::new(faulty_fleet(2, &[("fail-after", 1)]));
    let run = explore(&spec, 7, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "mid-batch kill");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 1, "{stats:?}");
    assert_eq!(
        stats.fallback_geometries, 0,
        "survivor must absorb the load"
    );
}

#[test]
fn corrupt_frames_are_detected_and_requeued() {
    let spec = UserSpec::new(16384, Precision::Bf16).unwrap();
    let baseline = explore(&spec, 11, None);
    // Worker 0 answers its first request, then replies to the second
    // with a well-framed garbage payload and exits.
    let backend = Arc::new(faulty_fleet(2, &[("corrupt-after", 1)]));
    let run = explore(&spec, 11, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "corrupt frame");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.fallback_geometries, 0, "{stats:?}");
}

#[test]
fn whole_fleet_death_falls_back_in_process() {
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let baseline = explore(&spec, 3, None);
    // A single worker that dies on the very first request: every cohort
    // must be evaluated through the in-process fallback.
    let backend = Arc::new(faulty_fleet(1, &[("fail-after", 0)]));
    let run = explore(&spec, 3, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "fleet exhausted");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 0, "{stats:?}");
    assert_eq!(
        stats.fallback_geometries as usize, run.distinct_evaluations,
        "everything must have been evaluated in-process: {stats:?}"
    );
    assert_eq!(stats.round_trips, 0, "{stats:?}");
}

#[test]
fn worker_snapshot_deltas_alone_warm_start_a_local_run() {
    let spec = UserSpec::new(16384, Precision::Int4).unwrap();
    let sink = Arc::new(SharedEvalCache::new());
    let backend = Arc::new(
        RemoteBackend::spawn(RemoteOptions::fleet(program(), 2))
            .expect("spawn fleet")
            .with_sink(Arc::clone(&sink)),
    );
    let remote_run = explore(&spec, 21, Some(Arc::clone(&backend) as _));
    // Every distinct estimate the run needed arrived as a delta entry.
    assert_eq!(sink.len(), remote_run.distinct_evaluations);
    assert_eq!(
        backend.stats().merged_entries as usize,
        remote_run.distinct_evaluations
    );
    // The deltas alone (no local estimator call ever wrote this cache)
    // fully warm-start an in-process rerun: 0 distinct evaluations and a
    // bit-identical front — the cache-merge law doing real work across
    // the process boundary.
    let warm = explore_pareto_with(
        &spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(21),
        PipelineOptions {
            threads: 1,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_shared_cache(sink),
    );
    assert_eq!(warm.distinct_evaluations, 0);
    assert_eq!(warm.objective_matrix(), remote_run.objective_matrix());
}

#[test]
fn one_fleet_serves_many_bindings() {
    // A batch-shaped workload: two specs with different precisions and
    // capacities through one fleet — the workers bind each key space on
    // first use and keep both memoized.
    let backend =
        Arc::new(RemoteBackend::spawn(RemoteOptions::fleet(program(), 2)).expect("spawn fleet"));
    for (wstore, precision, seed) in [
        (8192u64, Precision::Int8, 5u64),
        (16384, Precision::Bf16, 6),
    ] {
        let spec = UserSpec::new(wstore, precision).unwrap();
        let baseline = explore(&spec, seed, None);
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(&run, &baseline, &format!("{precision} via shared fleet"));
    }
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 0, "{stats:?}");
    assert_eq!(stats.workers_alive, 2, "{stats:?}");
}

#[test]
fn spawn_fails_loudly_for_a_missing_worker_binary() {
    let err = RemoteBackend::spawn(RemoteOptions::fleet("/nonexistent/sega-dcim", 1))
        .expect_err("spawn must fail");
    assert!(err.contains("cannot spawn worker"), "{err}");
}

#[test]
fn spawn_rejects_an_empty_fleet() {
    // An empty worker list must fail at spawn, not divide-by-zero later
    // in the shard partition — and `fleet(_, 0)` must not silently
    // clamp to one worker.
    for options in [
        RemoteOptions {
            workers: vec![],
            log_dir: None,
        },
        RemoteOptions::fleet(program(), 0),
    ] {
        let err = RemoteBackend::spawn(options).expect_err("empty fleet must fail");
        assert!(err.contains("at least one worker"), "{err}");
    }
}

#[test]
fn partial_spawn_failure_reaps_the_spawned_workers() {
    // Worker 0 spawns fine; worker 1's program does not exist. The
    // spawn must fail AND reap worker 0 (no zombie left behind).
    let dir = std::env::temp_dir().join(format!("sega-partial-spawn-{}", std::process::id()));
    let options = RemoteOptions {
        workers: vec![
            WorkerCommand::serve(program()),
            WorkerCommand::serve("/nonexistent/sega-dcim"),
        ],
        log_dir: Some(dir.clone()),
    };
    let err = RemoteBackend::spawn(options).expect_err("partial spawn must fail");
    assert!(err.contains("cannot spawn worker"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spawn_rejects_a_peer_that_never_says_hello() {
    // `worker` without --serve prints an error and exits: no hello
    // frame. Its stderr goes to a scratch log dir to keep test output
    // clean.
    let dir = std::env::temp_dir().join(format!("sega-no-hello-{}", std::process::id()));
    let command = WorkerCommand {
        program: program(),
        args: vec!["worker".to_owned()],
    };
    let err = RemoteBackend::spawn(RemoteOptions {
        workers: vec![command],
        log_dir: Some(dir.clone()),
    })
    .expect_err("handshake must fail");
    assert!(err.contains("handshake failed"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_logs_land_in_the_log_dir() {
    let dir = std::env::temp_dir().join(format!("sega-worker-logs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = RemoteBackend::spawn(RemoteOptions::fleet(program(), 2).with_log_dir(&dir))
        .expect("spawn fleet");
    drop(backend);
    for index in 0..2 {
        assert!(
            dir.join(format!("worker-{index}.log")).is_file(),
            "missing worker-{index}.log"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
