//! The distributed acceptance suite: fronts and evaluation accounting
//! must be **bit-identical** across backend ∈ {macro, remote × {1,2,3}
//! workers} — including when workers are killed mid-batch, answer
//! corrupted or truncated frames, hang, or stall past the deadline —
//! because the remote backend only moves *where* a deterministic
//! function is computed, never *what* it computes.
//!
//! Every test here spawns real `sega-dcim worker --serve` processes
//! (the binary under test, via `CARGO_BIN_EXE_sega-dcim`) and talks to
//! them over the real framed stdio transport; the fault-injection knobs
//! (`--fail-after`, `--corrupt-after`, `--hang-after`, `--stall-ms`,
//! `--truncate-after`) are the worker's own CLI flags, so the recovery
//! paths exercised here are exactly the ones a dying fleet member
//! triggers in production. Supervision tests additionally assert the
//! stats ledger (`alive == spawned − deaths + respawns + rejoins`,
//! `timeouts ≤ deaths`) and that no run leaks zombie processes.
//!
//! The transport matrix runs the same acceptance property over all
//! three fleet links — stdio pipes, a Unix domain socket and TCP on
//! localhost — including the connection-scoped faults
//! (`--drop-conn-after`, `--reconnect-after`) that only exist once the
//! link can die separately from the process.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use sega_cells::Technology;
use sega_dcim::{
    explore_pareto_with, EvalBackend, ExplorationResult, PipelineOptions, RemoteBackend,
    RemoteOptions, SharedEvalCache, TransportKind, UserSpec, WorkerCommand,
};
use sega_estimator::{OperatingConditions, Precision};
use sega_moga::Nsga2Config;

const PRECISIONS: [Precision; 4] = [
    Precision::Int4,
    Precision::Int8,
    Precision::Bf16,
    Precision::Fp32,
];

fn program() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_sega-dcim"))
}

fn cfg(seed: u64) -> Nsga2Config {
    Nsga2Config {
        population: 10,
        generations: 5,
        seed,
        ..Default::default()
    }
}

fn explore(spec: &UserSpec, seed: u64, backend: Option<Arc<dyn EvalBackend>>) -> ExplorationResult {
    let pipeline = PipelineOptions {
        threads: 1,
        cache: true,
        min_batch_per_worker: 1,
        backend,
        ..Default::default()
    };
    explore_pareto_with(
        spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(seed),
        pipeline,
    )
}

/// A faulty fleet: `fleet_size` workers, with worker 0 carrying the
/// given extra fault-injection flags. Respawning is disabled so the
/// exact-count assertions (one fault ⇒ one death, fleet shrinks) keep
/// holding; the supervision tests below opt back in explicitly. The
/// short deadline keeps hang/stall faults from slowing the suite.
fn faulty_fleet(fleet_size: usize, fault_flags: &[(&str, u64)]) -> RemoteBackend {
    let mut options = RemoteOptions::fleet(program(), fleet_size)
        .with_restart_budget(0)
        .with_deadline(Duration::from_millis(500));
    options.workers[0] = options.workers[0].clone().with_args(
        fault_flags
            .iter()
            .flat_map(|(flag, n)| [format!("--{flag}"), n.to_string()]),
    );
    RemoteBackend::spawn(options).expect("spawn faulty fleet")
}

/// The supervision ledger law: every quiescent fleet satisfies
/// `workers_alive == workers_spawned − worker_deaths + respawns +
/// rejoins` and `timeouts ≤ worker_deaths` (every timeout buries its
/// worker; every rejoin revives a buried one without a fresh process).
fn assert_ledger(stats: &sega_dcim::RemoteStats) {
    assert_eq!(
        stats.workers_alive as i64,
        stats.workers_spawned as i64 - stats.worker_deaths as i64
            + stats.respawns as i64
            + stats.rejoins as i64,
        "ledger violated: {stats:?}"
    );
    assert!(stats.timeouts <= stats.worker_deaths, "{stats:?}");
}

/// No worker pid may survive as a zombie once the backend is gone: a
/// reaped child's `/proc/<pid>` entry either vanishes or (pid reuse)
/// belongs to a non-zombie process.
fn assert_no_zombies(pids: &[u32]) {
    for &pid in pids {
        let stat = match std::fs::read_to_string(format!("/proc/{pid}/stat")) {
            Ok(stat) => stat,
            Err(_) => continue, // fully reaped
        };
        // Field 3 of /proc/pid/stat, after the parenthesized comm.
        let state = stat
            .rsplit(')')
            .next()
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or("?");
        assert_ne!(state, "Z", "worker {pid} left a zombie");
    }
}

fn assert_matches_baseline(run: &ExplorationResult, baseline: &ExplorationResult, label: &str) {
    assert_eq!(
        run.objective_matrix(),
        baseline.objective_matrix(),
        "{label}: front diverged from the in-process baseline"
    );
    assert_eq!(run.evaluations, baseline.evaluations, "{label}");
    assert_eq!(
        run.distinct_evaluations, baseline.distinct_evaluations,
        "{label}"
    );
    assert_eq!(run.cache_hits, baseline.cache_hits, "{label}");
    assert_eq!(
        run.distinct_evaluations + run.cache_hits,
        run.evaluations,
        "{label}: accounting must partition exactly"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance property: for every sampled (precision, seed), the
    /// front and the evaluation accounting are bit-identical across
    /// backend ∈ {macro, remote×{1,2,3}} — and still identical when one
    /// of two workers is killed after its first answered request.
    #[test]
    fn fronts_are_bit_identical_across_macro_and_remote_fleets(
        precision_idx in 0usize..4,
        log_wstore in 13u32..=15,
        seed in 0u64..1000,
    ) {
        let spec = UserSpec::new(1u64 << log_wstore, PRECISIONS[precision_idx]).unwrap();
        let baseline = explore(&spec, seed, None);
        for fleet_size in [1usize, 2, 3] {
            let backend = Arc::new(
                RemoteBackend::spawn(RemoteOptions::fleet(program(), fleet_size))
                    .expect("spawn fleet"),
            );
            let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
            assert_matches_baseline(&run, &baseline, &format!("remote x{fleet_size}"));
            let stats = backend.stats();
            prop_assert_eq!(stats.worker_deaths, 0);
            prop_assert_eq!(stats.fallback_geometries, 0);
            prop_assert!(stats.round_trips > 0, "fleet must have been exercised");
            prop_assert_eq!(stats.geometries as usize, run.distinct_evaluations);
            prop_assert_eq!(stats.workers_alive, fleet_size);
        }
        // Injected worker death: worker 0 of 2 dies on its second request.
        let backend = Arc::new(faulty_fleet(2, &[("fail-after", 1)]));
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(&run, &baseline, "remote x2 with mid-batch death");
        let stats = backend.stats();
        prop_assert_eq!(stats.worker_deaths, 1);
        prop_assert_eq!(stats.workers_alive, 1);
        prop_assert_eq!(stats.geometries as usize, run.distinct_evaluations);
    }
}

#[test]
fn killed_worker_requeues_to_the_survivor() {
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let baseline = explore(&spec, 7, None);
    let backend = Arc::new(faulty_fleet(2, &[("fail-after", 1)]));
    let run = explore(&spec, 7, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "mid-batch kill");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 1, "{stats:?}");
    assert_eq!(
        stats.fallback_geometries, 0,
        "survivor must absorb the load"
    );
}

#[test]
fn corrupt_frames_are_detected_and_requeued() {
    let spec = UserSpec::new(16384, Precision::Bf16).unwrap();
    let baseline = explore(&spec, 11, None);
    // Worker 0 answers its first request, then replies to the second
    // with a well-framed garbage payload and exits.
    let backend = Arc::new(faulty_fleet(2, &[("corrupt-after", 1)]));
    let run = explore(&spec, 11, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "corrupt frame");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.fallback_geometries, 0, "{stats:?}");
}

#[test]
fn hung_worker_trips_the_deadline_and_requeues() {
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let baseline = explore(&spec, 13, None);
    // Worker 0 stops reading after its first answer but never exits:
    // only the deadline can detect it. The stall must count as a
    // timeout AND a death, and the survivor absorbs the requeued shard.
    let backend = Arc::new(faulty_fleet(2, &[("hang-after", 1)]));
    let pids = backend.worker_pids();
    let run = explore(&spec, 13, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "hung worker");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 1, "{stats:?}");
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 1, "{stats:?}");
    assert_eq!(stats.fallback_geometries, 0, "{stats:?}");
    assert_ledger(&stats);
    drop(backend);
    // The hung child was killed, not abandoned: no zombie survives.
    assert_no_zombies(&pids);
}

#[test]
fn stalled_worker_is_buried_by_the_deadline() {
    let spec = UserSpec::new(16384, Precision::Bf16).unwrap();
    let baseline = explore(&spec, 17, None);
    // Worker 0 answers every request 1.5s late — three deadlines past
    // the fleet's 500ms budget — so its very first response times out.
    let backend = Arc::new(faulty_fleet(2, &[("stall-ms", 1500)]));
    let run = explore(&spec, 17, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "stalled worker");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert_eq!(stats.timeouts, 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 1, "{stats:?}");
    assert_eq!(stats.fallback_geometries, 0, "{stats:?}");
    assert_ledger(&stats);
}

#[test]
fn truncated_frames_bury_the_worker() {
    let spec = UserSpec::new(16384, Precision::Int4).unwrap();
    let baseline = explore(&spec, 19, None);
    // Worker 0 answers its first request, then writes half a frame and
    // exits — the torn tail must read as a death, never as a reply.
    let backend = Arc::new(faulty_fleet(2, &[("truncate-after", 1)]));
    let run = explore(&spec, 19, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "truncated frame");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert!(stats.requeues >= 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 1, "{stats:?}");
    assert_eq!(stats.fallback_geometries, 0, "{stats:?}");
    assert_ledger(&stats);
}

#[test]
fn buried_workers_respawn_and_rejoin_the_rotation() {
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let baseline = explore(&spec, 23, None);
    // A single worker that dies on every first request, with a restart
    // budget of 1 and zero backoff: the supervisor must respawn it once
    // (deterministically, immediately), route traffic to the respawn —
    // proven by the SECOND death, which only the respawned process can
    // die — then exhaust the budget and fall back in-process.
    let mut options = RemoteOptions::fleet(program(), 1)
        .with_restart_budget(1)
        .with_backoff(Duration::ZERO, 42)
        .with_deadline(Duration::from_millis(500));
    options.workers[0] = options.workers[0]
        .clone()
        .with_args(["--fail-after".to_owned(), "0".to_owned()]);
    let backend = Arc::new(RemoteBackend::spawn(options).expect("spawn fleet"));
    let run = explore(&spec, 23, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "respawn then budget exhaustion");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 2, "{stats:?}");
    assert_eq!(stats.respawns, 1, "{stats:?}");
    assert_eq!(stats.workers_spawned, 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 0, "{stats:?}");
    assert_eq!(
        stats.fallback_geometries as usize, run.distinct_evaluations,
        "{stats:?}"
    );
    assert_ledger(&stats);
}

#[test]
fn teardown_leaves_no_zombies_behind() {
    // A healthy fleet: Drop's graceful shutdown must reap every child.
    let backend = RemoteBackend::spawn(RemoteOptions::fleet(program(), 3)).expect("spawn fleet");
    let pids = backend.worker_pids();
    assert_eq!(pids.len(), 3);
    drop(backend);
    assert_no_zombies(&pids);

    // A fleet whose worker never answers: Drop's bounded grace period
    // must escalate to kill and still reap it.
    let backend = Arc::new(faulty_fleet(1, &[("hang-after", 0)]));
    let pids = backend.worker_pids();
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let _ = explore(&spec, 29, Some(Arc::clone(&backend) as _));
    drop(backend);
    assert_no_zombies(&pids);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The fault-schedule determinism matrix: for every sampled
    /// fault ∈ {kill, corrupt, hang, stall, truncate}, fleet size
    /// ∈ {1,2,3} and injection point, the front and the evaluation
    /// accounting stay bit-identical to the macro backend, and the
    /// supervision ledger adds up exactly.
    #[test]
    fn fault_matrix_preserves_fronts_and_the_ledger(
        fault_idx in 0usize..5,
        fleet_size in 1usize..=3,
        inject in 0u64..2,
        seed in 0u64..1000,
    ) {
        let spec = UserSpec::new(16384, Precision::Int8).unwrap();
        let baseline = explore(&spec, seed, None);
        let fault: (&str, u64) = match fault_idx {
            0 => ("fail-after", inject),
            1 => ("corrupt-after", inject),
            2 => ("hang-after", inject),
            3 => ("truncate-after", inject),
            // A stall hits every response, so the injection point is
            // the stall length: always past the 500ms fleet deadline.
            _ => ("stall-ms", 1200),
        };
        let backend = Arc::new(faulty_fleet(fleet_size, &[fault]));
        let pids = backend.worker_pids();
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(
            &run,
            &baseline,
            &format!("fault {fault:?} x{fleet_size}"),
        );
        let stats = backend.stats();
        assert_ledger(&stats);
        prop_assert_eq!(stats.respawns, 0, "restart budget is 0 here");
        prop_assert_eq!(stats.workers_spawned, fleet_size);
        prop_assert_eq!(stats.workers_alive, fleet_size - stats.worker_deaths as usize);
        // Work is conserved: every distinct geometry went through the
        // fleet exactly once (remotely or via in-process fallback).
        prop_assert_eq!(stats.geometries, run.distinct_evaluations as u64);
        prop_assert!(stats.fallback_geometries <= stats.geometries);
        drop(backend);
        assert_no_zombies(&pids);
    }
}

#[test]
fn whole_fleet_death_falls_back_in_process() {
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let baseline = explore(&spec, 3, None);
    // A single worker that dies on the very first request: every cohort
    // must be evaluated through the in-process fallback.
    let backend = Arc::new(faulty_fleet(1, &[("fail-after", 0)]));
    let run = explore(&spec, 3, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "fleet exhausted");
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 0, "{stats:?}");
    assert_eq!(
        stats.fallback_geometries as usize, run.distinct_evaluations,
        "everything must have been evaluated in-process: {stats:?}"
    );
    assert_eq!(stats.round_trips, 0, "{stats:?}");
}

#[test]
fn worker_snapshot_deltas_alone_warm_start_a_local_run() {
    let spec = UserSpec::new(16384, Precision::Int4).unwrap();
    let sink = Arc::new(SharedEvalCache::new());
    let backend = Arc::new(
        RemoteBackend::spawn(RemoteOptions::fleet(program(), 2))
            .expect("spawn fleet")
            .with_sink(Arc::clone(&sink)),
    );
    let remote_run = explore(&spec, 21, Some(Arc::clone(&backend) as _));
    // Every distinct estimate the run needed arrived as a delta entry.
    assert_eq!(sink.len(), remote_run.distinct_evaluations);
    assert_eq!(
        backend.stats().merged_entries as usize,
        remote_run.distinct_evaluations
    );
    // The deltas alone (no local estimator call ever wrote this cache)
    // fully warm-start an in-process rerun: 0 distinct evaluations and a
    // bit-identical front — the cache-merge law doing real work across
    // the process boundary.
    let warm = explore_pareto_with(
        &spec,
        &Technology::tsmc28(),
        &OperatingConditions::paper_default(),
        &cfg(21),
        PipelineOptions {
            threads: 1,
            cache: true,
            min_batch_per_worker: 1,
            ..Default::default()
        }
        .with_shared_cache(sink),
    );
    assert_eq!(warm.distinct_evaluations, 0);
    assert_eq!(warm.objective_matrix(), remote_run.objective_matrix());
}

#[test]
fn one_fleet_serves_many_bindings() {
    // A batch-shaped workload: two specs with different precisions and
    // capacities through one fleet — the workers bind each key space on
    // first use and keep both memoized.
    let backend =
        Arc::new(RemoteBackend::spawn(RemoteOptions::fleet(program(), 2)).expect("spawn fleet"));
    for (wstore, precision, seed) in [
        (8192u64, Precision::Int8, 5u64),
        (16384, Precision::Bf16, 6),
    ] {
        let spec = UserSpec::new(wstore, precision).unwrap();
        let baseline = explore(&spec, seed, None);
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(&run, &baseline, &format!("{precision} via shared fleet"));
    }
    let stats = backend.stats();
    assert_eq!(stats.worker_deaths, 0, "{stats:?}");
    assert_eq!(stats.workers_alive, 2, "{stats:?}");
}

#[test]
fn spawn_fails_loudly_for_a_missing_worker_binary() {
    let err = RemoteBackend::spawn(RemoteOptions::fleet("/nonexistent/sega-dcim", 1))
        .expect_err("spawn must fail");
    assert!(err.contains("cannot spawn worker"), "{err}");
}

#[test]
fn spawn_rejects_an_empty_fleet() {
    // An empty worker list must fail at spawn, not divide-by-zero later
    // in the shard partition — and `fleet(_, 0)` must not silently
    // clamp to one worker.
    for options in [
        RemoteOptions {
            workers: vec![],
            ..RemoteOptions::default()
        },
        RemoteOptions::fleet(program(), 0),
    ] {
        let err = RemoteBackend::spawn(options).expect_err("empty fleet must fail");
        assert!(err.contains("at least one worker"), "{err}");
    }
}

#[test]
fn partial_spawn_failure_reaps_the_spawned_workers() {
    // Worker 0 spawns fine; worker 1's program does not exist. The
    // spawn must fail AND reap worker 0 (no zombie left behind).
    let dir = std::env::temp_dir().join(format!("sega-partial-spawn-{}", std::process::id()));
    let options = RemoteOptions {
        workers: vec![
            WorkerCommand::serve(program()),
            WorkerCommand::serve("/nonexistent/sega-dcim"),
        ],
        log_dir: Some(dir.clone()),
        ..RemoteOptions::default()
    };
    let err = RemoteBackend::spawn(options).expect_err("partial spawn must fail");
    assert!(err.contains("cannot spawn worker"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spawn_rejects_a_peer_that_never_says_hello() {
    // `worker` without --serve prints an error and exits: no hello
    // frame. Its stderr goes to a scratch log dir to keep test output
    // clean.
    let dir = std::env::temp_dir().join(format!("sega-no-hello-{}", std::process::id()));
    let command = WorkerCommand {
        program: program(),
        args: vec!["worker".to_owned()],
    };
    let err = RemoteBackend::spawn(RemoteOptions {
        workers: vec![command],
        log_dir: Some(dir.clone()),
        ..RemoteOptions::default()
    })
    .expect_err("handshake must fail");
    assert!(err.contains("handshake failed"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

const TRANSPORTS: [TransportKind; 3] = [
    TransportKind::Stdio,
    TransportKind::Unix,
    TransportKind::Tcp,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The transport acceptance property (ISSUE 9): fronts and
    /// accounting are bit-identical across transport ∈ {stdio,
    /// unix-socket, tcp} × workers ∈ {1,2,3} × fault ∈ {none, kill-one,
    /// drop-conn-one, reconnect-one}, with the extended rejoin ledger
    /// law holding and no process leaked. The long backoff keeps the
    /// deterministic paths (bury → requeue → maybe rejoin) from racing
    /// a timed respawn on a slow runner.
    #[test]
    fn fronts_are_bit_identical_across_transports_and_connection_faults(
        transport_idx in 0usize..3,
        fleet_size in 1usize..=3,
        fault_idx in 0usize..4,
        seed in 0u64..1000,
    ) {
        let transport = TRANSPORTS[transport_idx];
        let spec = UserSpec::new(16384, Precision::Int8).unwrap();
        let baseline = explore(&spec, seed, None);
        let mut options = RemoteOptions::fleet(program(), fleet_size)
            .with_transport(transport)
            .with_restart_budget(1)
            .with_backoff(Duration::from_secs(60), 0)
            .with_deadline(Duration::from_millis(500));
        let fault: Option<(&str, u64)> = match fault_idx {
            0 => None,
            1 => Some(("fail-after", 1)),
            2 => Some(("drop-conn-after", 1)),
            _ => Some(("reconnect-after", 1)),
        };
        if let Some((flag, n)) = fault {
            options.workers[0] = options.workers[0]
                .clone()
                .with_args([format!("--{flag}"), n.to_string()]);
        }
        let backend = Arc::new(RemoteBackend::spawn(options).expect("spawn fleet"));
        let pids = backend.worker_pids();
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(
            &run,
            &baseline,
            &format!("{} x{fleet_size} fault {fault:?}", transport.name()),
        );
        let stats = backend.stats();
        assert_ledger(&stats);
        prop_assert_eq!(stats.transport, transport);
        prop_assert_eq!(stats.workers_spawned, fleet_size);
        prop_assert_eq!(stats.capacities.len(), fleet_size);
        if fault.is_none() {
            prop_assert_eq!(stats.worker_deaths, 0, "{:?}", stats);
            prop_assert_eq!(stats.workers_alive, fleet_size, "{:?}", stats);
        }
        // Rejoining is a socket-transport concept: a stdio worker's link
        // and process die together, so nothing can ever come back.
        if transport == TransportKind::Stdio {
            prop_assert_eq!(stats.rejoins, 0, "{:?}", stats);
        }
        // Work is conserved under every fault: each distinct geometry
        // was evaluated exactly once, remotely or via fallback.
        prop_assert_eq!(stats.geometries, run.distinct_evaluations as u64);
        drop(backend);
        assert_no_zombies(&pids);
    }
}

#[test]
fn a_worker_that_never_says_hello_cannot_stall_fleet_construction() {
    // Worker 0 sleeps 60s before its hello — far past the 300ms
    // deadline. Spawning the fleet must return promptly with the silent
    // peer entombed (a timeout AND a death, retry scheduled under the
    // budget), and the survivor must carry the run to the bit-identical
    // front.
    let spec = UserSpec::new(8192, Precision::Int8).unwrap();
    let baseline = explore(&spec, 31, None);
    let mut options = RemoteOptions::fleet(program(), 2)
        .with_restart_budget(1)
        .with_backoff(Duration::from_secs(120), 0)
        .with_deadline(Duration::from_millis(300));
    options.workers[0] = options.workers[0]
        .clone()
        .with_args(["--late-hello-ms".to_owned(), "60000".to_owned()]);
    let started = std::time::Instant::now();
    let backend = Arc::new(RemoteBackend::spawn(options).expect("spawn proceeds past the mute"));
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "construction must not wait out the 60s mute"
    );
    let pids = backend.worker_pids();
    let run = explore(&spec, 31, Some(Arc::clone(&backend) as _));
    assert_matches_baseline(&run, &baseline, "late hello at spawn");
    let stats = backend.stats();
    assert_eq!(stats.timeouts, 1, "{stats:?}");
    assert_eq!(stats.worker_deaths, 1, "{stats:?}");
    assert_eq!(stats.workers_alive, 1, "{stats:?}");
    assert_eq!(stats.respawns, 0, "backoff holds the retry: {stats:?}");
    assert_ledger(&stats);
    drop(backend);
    assert_no_zombies(&pids);
}

#[test]
fn a_dropped_socket_worker_reconnects_and_rejoins() {
    // Socket fleet of 2; worker 0 drops its connection after one served
    // request but keeps running and redials. The coordinator buries +
    // requeues it (front stays bit-identical), then readopts the parked
    // link under the budget — `rejoins` must tick without any fresh
    // process. The 60s backoff guarantees a respawn can never race the
    // rejoin; repeat explorations give the supervisor maintenance
    // passes until the adoption lands.
    let spec = UserSpec::new(16384, Precision::Int8).unwrap();
    let mut options = RemoteOptions::fleet(program(), 2)
        .with_transport(TransportKind::Unix)
        .with_restart_budget(1)
        .with_backoff(Duration::from_secs(60), 0)
        .with_deadline(Duration::from_secs(5));
    options.workers[0] = options.workers[0]
        .clone()
        .with_args(["--reconnect-after".to_owned(), "1".to_owned()]);
    let backend = Arc::new(RemoteBackend::spawn(options).expect("spawn fleet"));
    let pids = backend.worker_pids();
    for seed in 0..10u64 {
        let baseline = explore(&spec, seed, None);
        let run = explore(&spec, seed, Some(Arc::clone(&backend) as _));
        assert_matches_baseline(&run, &baseline, "reconnect fault");
        if backend.stats().rejoins >= 1 {
            break;
        }
    }
    let stats = backend.stats();
    assert!(stats.rejoins >= 1, "worker never rejoined: {stats:?}");
    assert_eq!(stats.respawns, 0, "rejoin must beat the respawn: {stats:?}");
    assert_eq!(stats.workers_alive, 2, "{stats:?}");
    assert_ledger(&stats);
    drop(backend);
    assert_no_zombies(&pids);
}

#[test]
fn worker_logs_land_in_the_log_dir() {
    let dir = std::env::temp_dir().join(format!("sega-worker-logs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = RemoteBackend::spawn(RemoteOptions::fleet(program(), 2).with_log_dir(&dir))
        .expect("spawn fleet");
    drop(backend);
    for index in 0..2 {
        assert!(
            dir.join(format!("worker-{index}.log")).is_file(),
            "missing worker-{index}.log"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
