//! Property tests of the persistent cache tier: the segment store and
//! the fingerprint-keyed anti-entropy sync.
//!
//! Three laws anchor the tier:
//!
//! 1. **Compaction changes bytes, never facts** — however a history of
//!    saves split the entries across segments, in whatever order and
//!    with whatever duplication, `load(compact(segments))` equals
//!    `load(segments)`.
//! 2. **Torn tails recover** — truncating the trailing segment at *any*
//!    byte offset downgrades it to one warning; every earlier segment's
//!    facts survive.
//! 3. **Sync converges** — `theirs ∪ plan_delta(mine, digest(theirs))
//!    == theirs ∪ mine`, under reordered insertion histories and
//!    repeated exchanges (a redialing peer), and a prefix-sharing peer
//!    receives strictly fewer entries than a full snapshot.

use std::collections::HashSet;
use std::path::PathBuf;

use proptest::prelude::*;
use sega_dcim::{CacheStore, SharedEvalCache};
use sega_wire::snapshot::{EntryRecord, GeometryRecord, KeyRecord, SpaceRecord};
use sega_wire::sync::{plan_delta, CacheDigest};
use sega_wire::Snapshot;

const WSTORES: [u64; 3] = [8192, 16384, 32768];

fn key(wstore: u64) -> KeyRecord {
    KeyRecord {
        tech_name: "tsmc28-calibrated".to_owned(),
        node_bits: 28.0f64.to_bits(),
        gate_area_bits: 0.18f64.to_bits(),
        gate_delay_bits: 0.008f64.to_bits(),
        gate_energy_bits: 0.4f64.to_bits(),
        nominal_voltage_bits: 0.9f64.to_bits(),
        voltage_bits: 0.9f64.to_bits(),
        sparsity_bits: 0.1f64.to_bits(),
        activity_bits: 0.1f64.to_bits(),
        precision: "INT8".to_owned(),
        wstore,
    }
}

/// A canonical snapshot from `(space index, geometry id)` pairs —
/// duplicates collapse under canonicalization exactly as they do in the
/// live cache.
fn snapshot_of(entries: &[(usize, u32)]) -> Snapshot {
    let mut snapshot = Snapshot::default();
    for &wstore in &WSTORES {
        let geoms: HashSet<u32> = entries
            .iter()
            .filter(|(space, _)| WSTORES[*space % WSTORES.len()] == wstore)
            .map(|&(_, geom)| geom)
            .collect();
        if geoms.is_empty() {
            continue;
        }
        snapshot.spaces.push(SpaceRecord {
            key: key(wstore),
            entries: geoms
                .into_iter()
                .map(|geom| EntryRecord {
                    geometry: GeometryRecord {
                        log_h: geom,
                        log_l: 0,
                        k: 1,
                    },
                    objectives: [f64::from(geom), 1.0, 2.0, -3.0],
                })
                .collect(),
        });
    }
    snapshot.canonicalize();
    snapshot
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sega-segstore-{tag}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Replays a history of save points (each a batch run's final cache
/// image) through a store at `dir`, returning the cumulative snapshot
/// after each save that actually appended.
fn replay(
    dir: &PathBuf,
    budget: usize,
    history: &[Vec<(usize, u32)>],
) -> (Vec<Snapshot>, CacheStore) {
    let mut store = CacheStore::dir(dir, budget).unwrap();
    store.load().unwrap();
    let mut cumulative = Snapshot::default();
    let mut checkpoints = Vec::new();
    for point in history {
        let before = store.stats().segments_appended;
        cumulative.merge(&snapshot_of(point));
        store.save(&cumulative).unwrap();
        if store.stats().segments_appended > before {
            checkpoints.push(cumulative.clone());
        }
    }
    (checkpoints, store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Law 1: whatever the split across save points, the duplication
    /// between them, and the compaction budget, every store layout
    /// loads the same facts — and force-compacting to one segment
    /// afterwards changes nothing.
    #[test]
    fn compaction_preserves_every_fact(
        history in prop::collection::vec(
            prop::collection::vec((0usize..3, 0u32..24), 1..10),
            1..6,
        ),
        budget in 1usize..4,
    ) {
        let expected: Snapshot = {
            let flat: Vec<(usize, u32)> =
                history.iter().flatten().copied().collect();
            snapshot_of(&flat)
        };

        // Uncompacted reference: a budget no history here can exceed.
        let loose_dir = tempdir("loose");
        let (_, loose) = replay(&loose_dir, 64, &history);
        prop_assert_eq!(loose.stats().compactions, 0);
        let loose_loaded = CacheStore::dir(&loose_dir, 64)
            .unwrap()
            .load()
            .unwrap();
        prop_assert!(loose_loaded.warnings.is_empty());
        prop_assert_eq!(&loose_loaded.snapshot, &expected);

        // Tight budget: same history, compactions allowed to fire.
        let tight_dir = tempdir("tight");
        let (_, tight) = replay(&tight_dir, budget, &history);
        prop_assert!(tight.stats().segments <= budget.max(1));
        prop_assert_eq!(
            &CacheStore::dir(&tight_dir, budget).unwrap().load().unwrap().snapshot,
            &expected
        );

        // Force-compact the loose layout down to one segment: a fresh
        // store re-saving what it just loaded must fold, not lose.
        let mut squeeze = CacheStore::dir(&loose_dir, 1).unwrap();
        let loaded = squeeze.load().unwrap().snapshot;
        squeeze.save(&loaded).unwrap();
        if loose.stats().segments_appended > 1 {
            prop_assert_eq!(squeeze.stats().compactions, 1);
            prop_assert_eq!(squeeze.stats().segments, 1);
        }
        prop_assert_eq!(
            &CacheStore::dir(&loose_dir, 1).unwrap().load().unwrap().snapshot,
            &expected
        );

        std::fs::remove_dir_all(&loose_dir).unwrap();
        std::fs::remove_dir_all(&tight_dir).unwrap();
    }

    /// Law 2: a trailing segment torn at any byte offset is one
    /// warning naming the file and offset, and every fact from the
    /// earlier segments survives.
    #[test]
    fn torn_tail_recovers_at_every_truncation_offset(
        history in prop::collection::vec(
            prop::collection::vec((0usize..3, 0u32..24), 1..8),
            2..5,
        ),
        cut in 0usize..100_000,
    ) {
        // Give every save point a unique forced entry so every point
        // appends a segment (an empty delta appends nothing, which
        // would make "the last segment" ambiguous below).
        let history: Vec<Vec<(usize, u32)>> = history
            .iter()
            .enumerate()
            .map(|(i, point)| {
                let mut point = point.clone();
                point.push((i % 3, 1000 + i as u32));
                point
            })
            .collect();
        let dir = tempdir("torn");
        let (checkpoints, store) = replay(&dir, 64, &history);
        prop_assert_eq!(checkpoints.len(), history.len());
        let appended = store.stats().segments_appended;
        let tail = dir.join(format!("seg-{:08}.seg", appended - 1));

        let bytes = std::fs::read(&tail).unwrap();
        std::fs::write(&tail, &bytes[..cut % bytes.len()]).unwrap();

        let outcome = CacheStore::dir(&dir, 64).unwrap().load().unwrap();
        prop_assert_eq!(outcome.warnings.len(), 1);
        let warning = &outcome.warnings[0];
        prop_assert!(warning.contains("offset"), "{}", warning);
        prop_assert!(
            warning.contains(&format!("seg-{:08}.seg", appended - 1)),
            "{}",
            warning
        );
        // Everything up to the second-to-last save point survives.
        prop_assert_eq!(&outcome.snapshot, &checkpoints[checkpoints.len() - 2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Law 3: the sync law `theirs ∪ delta == theirs ∪ mine` holds for
    /// arbitrary divergence (reordered histories collapse to the same
    /// canonical snapshot, mid-order insertions merely shrink the
    /// matched prefix), and a redial after convergence moves nothing.
    #[test]
    fn sync_converges_under_divergence_and_redial(
        mine_entries in prop::collection::vec((0usize..3, 0u32..48), 0..40),
        their_entries in prop::collection::vec((0usize..3, 0u32..48), 0..40),
    ) {
        let mine = snapshot_of(&mine_entries);
        let mut theirs = snapshot_of(&their_entries);

        let plan = plan_delta(&mine, &CacheDigest::of(&theirs));
        prop_assert_eq!(plan.full_entries, mine.len() as u64);
        prop_assert!(plan.matched_entries + plan.delta.len() as u64 >= mine.len() as u64);

        let mut union = theirs.clone();
        union.merge(&mine);
        theirs.merge(&plan.delta);
        prop_assert_eq!(&theirs, &union, "sync must reach the union");

        // Redial: the requester now holds a superset of the responder,
        // so a second exchange is a no-op however the digests land.
        let again = plan_delta(&mine, &CacheDigest::of(&theirs));
        let before = theirs.clone();
        theirs.merge(&again.delta);
        prop_assert_eq!(&theirs, &before, "a converged pair must stay converged");
    }

    /// The saving the tier exists for: a requester holding a canonical
    /// prefix of the responder receives exactly the missing suffix —
    /// entries synced shrink as the shared prefix grows, and an
    /// identical pair exchanges nothing.
    #[test]
    fn prefix_sharing_peers_sync_only_the_suffix(
        entries in prop::collection::vec((0usize..3, 0u32..48), 1..40),
        keep_permille in 0u32..=1000,
    ) {
        let mine = snapshot_of(&entries);
        let mut theirs = Snapshot::default();
        for space in &mine.spaces {
            let keep = (space.entries.len() as u64 * u64::from(keep_permille) / 1000) as usize;
            if keep == 0 {
                continue;
            }
            theirs.spaces.push(SpaceRecord {
                key: space.key.clone(),
                entries: space.entries[..keep].to_vec(),
            });
        }
        theirs.canonicalize();

        let plan = plan_delta(&mine, &CacheDigest::of(&theirs));
        prop_assert_eq!(plan.matched_entries, theirs.len() as u64);
        prop_assert_eq!(
            plan.delta.len() as u64 + plan.matched_entries,
            mine.len() as u64,
            "a canonical-prefix peer gets exactly the suffix"
        );
        if theirs == mine {
            prop_assert!(plan.delta.is_empty());
        }
    }
}

/// End to end through the live cache type: a cache warmed via a segment
/// store round-trip (with a forced compaction) and a cache warmed via
/// digest sync both reproduce the donor cache's snapshot byte for byte.
#[test]
fn store_and_sync_warm_starts_are_byte_identical() {
    let donor = SharedEvalCache::new();
    donor
        .load(&snapshot_of(&[(0, 1), (0, 2), (1, 7), (2, 3), (2, 9)]))
        .unwrap();
    let image = donor.snapshot();

    // Store round-trip, split across two saves, compacted to one segment.
    let dir = tempdir("warm");
    let mut store = CacheStore::dir(&dir, 1).unwrap();
    store.load().unwrap();
    store
        .save(&{
            let mut half = image.clone();
            half.spaces.truncate(1);
            half
        })
        .unwrap();
    store.save(&image).unwrap();
    assert!(store.stats().compactions >= 1, "{:?}", store.stats());
    let via_store = SharedEvalCache::new();
    via_store
        .load(&CacheStore::dir(&dir, 1).unwrap().load().unwrap().snapshot)
        .unwrap();
    assert_eq!(via_store.snapshot().encode_binary(), image.encode_binary());

    // Digest sync from empty: the delta is the whole image, and the
    // synced cache is byte-identical to the donor.
    let via_sync = SharedEvalCache::new();
    let plan = plan_delta(&image, &CacheDigest::of(&via_sync.snapshot()));
    assert_eq!(plan.matched_entries, 0);
    via_sync.load(&plan.delta).unwrap();
    assert_eq!(via_sync.snapshot().encode_binary(), image.encode_binary());
    std::fs::remove_dir_all(&dir).unwrap();
}
